"""FramePipeline: the batched frame-pipeline server.

Drives a frame source through the full serving loop — compile (through
the :class:`~repro.runtime.cache.CompileCache`), upload, launch, download
— with double-buffering across frames: frame *n+1*'s H2D streams on the
copy engine while frame *n*'s kernels occupy the SMs, the overlap the
paper's async transfer calls set up but its measurements serialise.  A
frame is a *batch* of program runs (the three RGB channel runs of the SaC
route; one three-channel run for the Gaspard2 route), and the report
carries per-stage throughput/latency metrics: modelled frames/s, p50/p95
frame latency, per-engine busy time and occupancy, serial-vs-overlapped
totals and the compile-cache counters.

A :class:`PipelineJob` adapts a workload to the pipeline; the downscaler
jobs live in :mod:`repro.apps.downscaler.serving`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.gpu.calibration import GTX480_CALIBRATED
from repro.gpu.cost import CostModel, CostParams
from repro.gpu.executor import GPUExecutor
from repro.ir.program import AllocDevice, DeviceProgram, DeviceToHost, HostToDevice
from repro.obs.span import Tracer, current_tracer, use_tracer
from repro.runtime.cache import CacheStats, CompileCache
from repro.runtime.fleet import DeviceTopology, FrameTicket, make_placement
from repro.runtime.schedule import PipelineSchedule, build_schedule

__all__ = ["PipelineJob", "PipelineReport", "FramePipeline"]


class PipelineJob:
    """What a workload must provide to be served by the pipeline.

    Subclasses implement:

    * :attr:`name` — job label for reports;
    * :attr:`instances_per_frame` — program runs per frame (the channel
      batch size);
    * :meth:`compile` — produce the :class:`DeviceProgram` *through the
      given cache* (called once per frame, so the cache's hit counters
      reflect the per-frame compile stage);
    * :meth:`env` — the host environment of one (frame, instance) run;
    * :meth:`golden` — the expected outputs of one run (or ``None`` to
      skip validation of that run).
    """

    name: str = "job"
    instances_per_frame: int = 1

    def compile(self, cache: CompileCache) -> DeviceProgram:
        raise NotImplementedError

    def env(self, frame: int, instance: int) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def golden(
        self, frame: int, instance: int, program: DeviceProgram
    ) -> dict[str, np.ndarray] | None:
        return None


@dataclass(frozen=True)
class PipelineReport:
    """Everything one pipeline run measured."""

    job: str
    program: str
    frames: int
    instances: int
    depth: int
    serialize: bool
    serial_us: float
    overlapped_us: float
    frames_per_second: float
    latency_p50_us: float
    latency_p95_us: float
    engine_busy_us: dict[str, float]
    engine_occupancy: dict[str, float]
    #: serial share of transfer time (the paper's ~50 % claim)
    transfer_share_serial: float
    cache: CacheStats
    validated_instances: int
    schedule: PipelineSchedule = field(compare=False, default=None)
    #: fleet shape (defaults describe the single-device pipeline)
    devices: int = 1
    placement: str = ""
    per_device: dict = field(default_factory=dict)
    migrations: int = 0
    migration_us: float = 0.0

    @property
    def speedup(self) -> float:
        return self.serial_us / self.overlapped_us if self.overlapped_us else 1.0

    def as_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {
            "job": self.job,
            "program": self.program,
            "frames": self.frames,
            "instances": self.instances,
            "depth": self.depth,
            "serialize": self.serialize,
            "serial_us": round(self.serial_us, 3),
            "overlapped_us": round(self.overlapped_us, 3),
            "speedup": round(self.speedup, 4),
            "frames_per_second": round(self.frames_per_second, 3),
            "latency_p50_us": round(self.latency_p50_us, 3),
            "latency_p95_us": round(self.latency_p95_us, 3),
            "engine_busy_us": {k: round(v, 3) for k, v in self.engine_busy_us.items()},
            "engine_occupancy": {
                k: round(v, 4) for k, v in self.engine_occupancy.items()
            },
            "transfer_share_serial": round(self.transfer_share_serial, 4),
            "cache": self.cache.as_dict(),
            "validated_instances": self.validated_instances,
        } | (
            {
                "devices": self.devices,
                "placement": self.placement,
                "per_device": self.per_device,
                "migrations": self.migrations,
                "migration_us": round(self.migration_us, 3),
            }
            if self.devices > 1
            else {}
        )


class FramePipeline:
    """Serves a frame job over the stream-overlapped execution engine."""

    def __init__(
        self,
        params: CostParams = GTX480_CALIBRATED,
        depth: int | None = 2,
        serialize: bool = False,
        cache: CompileCache | None = None,
        validate: str = "first",
        tracer: Tracer | None = None,
        devices: int = 1,
        placement: str = "round-robin",
        topology: DeviceTopology | None = None,
    ):
        if validate not in ("first", "all", "none"):
            raise ValueError(f"validate must be first/all/none, not {validate!r}")
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if topology is not None:
            self.topology = topology
        elif devices > 1:
            self.topology = DeviceTopology.build(devices, params)
        else:
            self.topology = None
        if self.topology is not None:
            if cache is not None:
                raise ValueError(
                    "a fleet pipeline compiles through per-device caches; "
                    "an external cache cannot be shared across devices"
                )
            # device 0 fronts the fleet for single-executor consumers
            self.executor = self.topology.device(0).executor
            self.cache = self.topology.device(0).cache
            self.placement_policy = make_placement(
                placement, len(self.topology)
            )
        else:
            self.executor = GPUExecutor(CostModel(params))
            self.cache = cache if cache is not None else CompileCache()
            self.placement_policy = None
        self.depth = depth
        self.serialize = serialize
        self.validate = validate
        #: spans of every stage land here; ``None`` defers to the ambient
        #: tracer installed around :meth:`run` (disabled by default)
        self.tracer = tracer

    @property
    def devices(self) -> int:
        return 1 if self.topology is None else len(self.topology)

    def _validate(self, job: PipelineJob, program: DeviceProgram, frame: int,
                  instance: int, executor: GPUExecutor | None = None) -> bool:
        expected = job.golden(frame, instance, program)
        if expected is None:
            return False
        runner = executor if executor is not None else self.executor
        result = runner.run(program, job.env(frame, instance))
        for name, want in expected.items():
            got = result.outputs.get(name)
            if got is None or not np.array_equal(got, want):
                raise ReproError(
                    f"pipeline {job.name}: output {name!r} of frame {frame} "
                    f"instance {instance} is not bit-exact against the golden "
                    f"reference"
                )
        return True

    def run(self, job: PipelineJob, frames: int) -> PipelineReport:
        """Serve ``frames`` frames of ``job``; returns the metrics report.

        When a :class:`~repro.obs.span.Tracer` was passed to the
        constructor it is installed as the ambient tracer for the whole
        run, so the compile/opt/schedule/execute spans of every stage —
        including those recorded deep inside the backends — land in one
        tree.  Tracing never perturbs the report: all durations are
        modelled, not measured.
        """
        tracer = self.tracer if self.tracer is not None else current_tracer()
        with use_tracer(tracer):
            return self._run(job, frames, tracer)

    def _run(self, job: PipelineJob, frames: int, tracer: Tracer) -> PipelineReport:
        if frames < 0:
            raise ValueError("frames must be >= 0")
        if frames == 0:
            # a zero-frame job (an empty broker flush, a drained queue) is
            # not an error: report cleanly with nothing compiled or served
            return PipelineReport(
                job=job.name, program="", frames=0, instances=0,
                depth=self.depth if self.depth is not None else 0,
                serialize=self.serialize, serial_us=0.0, overlapped_us=0.0,
                frames_per_second=0.0, latency_p50_us=0.0, latency_p95_us=0.0,
                engine_busy_us={}, engine_occupancy={},
                transfer_share_serial=0.0, cache=CacheStats(),
                validated_instances=0, devices=self.devices,
            )
        if self.topology is not None:
            return self._run_fleet(job, frames, tracer)
        before = self.cache.stats.snapshot()

        with tracer.span(
            f"pipeline:{job.name}", category="pipeline", frames=frames
        ) as pipe_span:
            # compile stage: once per frame through the cache (a real server
            # compiles on frame arrival; the cache makes every frame after
            # the first a hit)
            with tracer.span("compile-stage", category="pipeline-stage") as sp:
                program = None
                for f in range(frames):
                    program = job.compile(self.cache)
                cache_delta = self.cache.stats.since(before)
                sp.set(hits=cache_delta.hits, misses=cache_delta.misses)

            # functional stage: bit-exact validation against the job's golden
            with tracer.span("validate-stage", category="pipeline-stage") as sp:
                validated = 0
                if self.validate == "first":
                    validated += int(self._validate(job, program, 0, 0))
                elif self.validate == "all":
                    for f in range(frames):
                        for i in range(job.instances_per_frame):
                            validated += int(self._validate(job, program, f, i))
                sp.set(validated=validated)

            # temporal stage: schedule every run across the three engines
            with tracer.span("schedule-stage", category="pipeline-stage"):
                runs = frames * job.instances_per_frame
                schedule = build_schedule(
                    program, self.executor, runs=runs, depth=self.depth,
                    serialize=self.serialize,
                )
            pipe_span.set(program=program.name, runs=runs)
        latencies = schedule.latencies_us(batch=job.instances_per_frame)
        makespan = schedule.makespan_us
        busy = {e: schedule.engine_busy_us(e) for e in schedule.engines}
        transfer_serial = self._transfer_serial_us(program, runs)

        return PipelineReport(
            job=job.name,
            program=program.name,
            frames=frames,
            instances=runs,
            depth=schedule.depth,
            serialize=self.serialize,
            serial_us=schedule.serial_us,
            overlapped_us=makespan,
            frames_per_second=frames / (makespan / 1e6) if makespan else 0.0,
            latency_p50_us=float(np.percentile(latencies, 50)) if latencies else 0.0,
            latency_p95_us=float(np.percentile(latencies, 95)) if latencies else 0.0,
            engine_busy_us=busy,
            engine_occupancy=schedule.engine_occupancy(),
            transfer_share_serial=(
                transfer_serial / schedule.serial_us if schedule.serial_us else 0.0
            ),
            cache=cache_delta,
            validated_instances=validated,
            schedule=schedule,
        )

    @staticmethod
    def _ticket_key(job: PipelineJob):
        """Compile-cache identity of a job's frames for placement."""
        size = getattr(getattr(job, "size", None), "name", "")
        return (job.name, size)

    def _run_fleet(
        self, job: PipelineJob, frames: int, tracer: Tracer
    ) -> PipelineReport:
        """Shard the frame stream over the device topology.

        Stage order matters: frames are *placed* before they are
        compiled, because the placed device's compile cache is what the
        frame compiles through — the per-device miss pattern is exactly
        what the cache-affinity policy optimises.
        """
        topo = self.topology
        policy = self.placement_policy
        policy.new_batch()
        # a batch boundary also re-bases every device's memory counters,
        # so fleet peak-bytes/occupancy numbers never bleed across runs
        topo.reset_stats()
        before = [d.cache.stats.snapshot() for d in topo]
        ipf = job.instances_per_frame

        with tracer.span(
            f"pipeline:{job.name}", category="pipeline", frames=frames,
            devices=len(topo),
        ) as pipe_span:
            with tracer.span("placement-stage", category="pipeline-stage") as sp:
                ticket_key = self._ticket_key(job)
                decisions = [
                    policy.place(FrameTicket(frame=f, cache_key=ticket_key))
                    for f in range(frames)
                ]
                sp.set(policy=policy.name, devices=len(topo))

            # compile stage: once per frame through its placed device's
            # cache (device code is per-context: a fleet of K cold
            # devices pays up to K misses where one device pays one)
            with tracer.span("compile-stage", category="pipeline-stage") as sp:
                program = None
                for dec in decisions:
                    program = job.compile(topo.device(dec.device).cache)
                deltas = [
                    d.cache.stats.since(b) for d, b in zip(topo, before)
                ]
                cache_delta = CacheStats(
                    hits=sum(d.hits for d in deltas),
                    misses=sum(d.misses for d in deltas),
                    invalidations=sum(d.invalidations for d in deltas),
                )
                sp.set(hits=cache_delta.hits, misses=cache_delta.misses)

            # functional stage: validate on the executor of the device
            # the frame was placed on — bit-exactness must hold wherever
            # the placement sent the frame
            with tracer.span("validate-stage", category="pipeline-stage") as sp:
                validated = 0
                if self.validate == "first":
                    validated += int(self._validate(
                        job, program, 0, 0,
                        executor=topo.device(decisions[0].device).executor,
                    ))
                elif self.validate == "all":
                    for f, dec in enumerate(decisions):
                        executor = topo.device(dec.device).executor
                        for i in range(ipf):
                            validated += int(self._validate(
                                job, program, f, i, executor=executor,
                            ))
                sp.set(validated=validated)

            with tracer.span("schedule-stage", category="pipeline-stage"):
                runs = frames * ipf
                schedule = build_schedule(
                    program, self.executor, runs=runs, depth=self.depth,
                    serialize=self.serialize, topology=topo,
                    placements=decisions, frame_batch=ipf,
                )
            pipe_span.set(program=program.name, runs=runs)

        # feedback: refine the policy's service-time estimate so later
        # batches balance on observed per-frame cost, not the prior
        serial_per_frame = schedule.serial_us / frames
        for dec in decisions:
            policy.observe(dec.device, serial_per_frame)

        latencies = schedule.latencies_us(batch=ipf)
        makespan = schedule.makespan_us
        engines = topo.engines()
        occupancy = schedule.engine_occupancy(engines=engines)
        per_device: dict[str, dict] = {}
        for k, d in enumerate(topo):
            kinds = {
                kind: schedule.engine_busy_us(d.engine(kind))
                for kind in ("h2d", "compute", "d2h")
            }
            per_device[d.name] = {
                "frames": sum(1 for dec in decisions if dec.device == k),
                "busy_us": {k2: round(v, 3) for k2, v in kinds.items()},
                "occupancy": {
                    kind: round(occupancy[d.engine(kind)], 4)
                    for kind in ("h2d", "compute", "d2h")
                },
                "peak_bytes": d.memory.peak_bytes,
                "cache": deltas[k].as_dict(),
            }

        transfer_serial = self._transfer_serial_us(program, runs)
        return PipelineReport(
            job=job.name,
            program=program.name,
            frames=frames,
            instances=runs,
            depth=schedule.depth,
            serialize=self.serialize,
            serial_us=schedule.serial_us,
            overlapped_us=makespan,
            frames_per_second=frames / (makespan / 1e6) if makespan else 0.0,
            latency_p50_us=float(np.percentile(latencies, 50)) if latencies else 0.0,
            latency_p95_us=float(np.percentile(latencies, 95)) if latencies else 0.0,
            engine_busy_us={e: schedule.engine_busy_us(e) for e in engines},
            engine_occupancy=occupancy,
            transfer_share_serial=(
                transfer_serial / schedule.serial_us if schedule.serial_us else 0.0
            ),
            cache=cache_delta,
            validated_instances=validated,
            schedule=schedule,
            devices=len(topo),
            placement=policy.name,
            per_device=per_device,
            migrations=schedule.migrations,
            migration_us=schedule.migration_us,
        )

    def _transfer_serial_us(self, program: DeviceProgram, runs: int) -> float:
        """Serial transfer time of ``runs`` executions of ``program``.

        Dispatches on explicit op types: only :class:`AllocDevice` defines
        a buffer's size.  (An earlier duck-typed ``hasattr(op, "nbytes")``
        check silently miscounted any op that happened to carry those
        attributes — e.g. future fused/annotated ops — and let transfers
        on unknown buffers KeyError without context.)
        """
        cost = self.executor.cost
        sizes: dict[str, int] = {}
        total = 0.0
        for op in program.ops:
            if isinstance(op, AllocDevice):
                sizes[op.buffer] = op.nbytes
            elif isinstance(op, (HostToDevice, DeviceToHost)):
                nbytes = sizes.get(op.device)
                if nbytes is None:
                    kind = "H2D into" if isinstance(op, HostToDevice) else "D2H from"
                    raise ReproError(
                        f"pipeline transfer accounting of {program.name!r}: "
                        f"{kind} buffer {op.device!r} with no preceding "
                        f"AllocDevice (known buffers: {sorted(sizes) or 'none'})"
                    )
                if isinstance(op, HostToDevice):
                    total += cost.h2d_time_us(nbytes)
                else:
                    total += cost.d2h_time_us(nbytes)
        return total * runs
