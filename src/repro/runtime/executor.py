"""StreamExecutor: functional execution charged at overlapped time.

The paper's measurements serialise the ``memcpy*async`` calls they issue
(Tables I/II) — :class:`~repro.gpu.executor.GPUExecutor` reproduces that.
:class:`StreamExecutor` executes the *same* program with the *same*
functional semantics (bit-exact outputs, same memory manager, same cost
model) but charges the **overlapped** makespan of the three-engine
dependence schedule instead of the serial sum — what the hardware's dual
copy engines would actually deliver.  ``serialize=True`` degrades it back
to the serial total for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.cost import CostModel
from repro.gpu.device import GTX480, DeviceSpec
from repro.gpu.executor import GPUExecutor, RunResult
from repro.gpu.profiler import Profiler
from repro.ir.program import DeviceProgram
from repro.obs.span import current_tracer
from repro.runtime.schedule import PipelineSchedule, build_schedule

__all__ = ["StreamRunResult", "StreamExecutor"]


@dataclass(frozen=True)
class StreamRunResult:
    """Outcome of one (possibly multi-run) stream execution."""

    program: str
    #: what the serialised executor would charge (sum of op durations)
    serial_us: float
    #: the makespan of the dependence schedule — the charged time
    overlapped_us: float
    runs: int
    outputs: dict[str, np.ndarray] = field(compare=False)
    schedule: PipelineSchedule = field(compare=False, default=None)
    #: the underlying serial run result of the functional execution
    serial_result: RunResult = field(compare=False, default=None)

    @property
    def total_us(self) -> float:
        """The time this executor charges: the overlapped makespan."""
        return self.overlapped_us

    @property
    def speedup(self) -> float:
        return self.serial_us / self.overlapped_us if self.overlapped_us else 1.0


class StreamExecutor:
    """Runs device programs bit-exactly while charging overlapped time.

    Functional effects are delegated to a
    :class:`~repro.gpu.executor.GPUExecutor` (so outputs are identical to
    the serial executor by construction); the temporal result comes from
    :func:`repro.runtime.schedule.build_schedule` over ``runs``
    back-to-back executions with ``depth``-deep buffer slots.
    """

    def __init__(
        self,
        cost_model: CostModel,
        device: DeviceSpec = GTX480,
        profiler: Profiler | None = None,
        depth: int | None = 2,
        serialize: bool = False,
    ):
        self.gpu = GPUExecutor(cost_model, device, profiler)
        self.cost = self.gpu.cost
        self.depth = depth
        self.serialize = serialize

    @property
    def profiler(self) -> Profiler:
        return self.gpu.profiler

    def kernel_breakdown(self, kernel):
        return self.gpu.kernel_breakdown(kernel)

    def run(
        self,
        program: DeviceProgram,
        host_env: dict[str, np.ndarray] | None = None,
        functional: bool = True,
        runs: int = 1,
    ) -> StreamRunResult:
        """Execute ``program`` ``runs`` times back to back.

        The functional execution happens once (every run computes the same
        values for the same ``host_env``); the schedule pipelines all
        ``runs`` across the three engines.  Outputs are exactly those of
        :meth:`GPUExecutor.run`.
        """
        with current_tracer().span(
            f"stream-execute:{program.name}", category="execute", runs=runs
        ) as span:
            serial_result = self.gpu.run(program, host_env, functional=functional)
            schedule = build_schedule(
                program, self.gpu, runs=runs, depth=self.depth,
                serialize=self.serialize,
            )
            span.set(overlapped_us=schedule.makespan_us)
        return StreamRunResult(
            program=program.name,
            serial_us=schedule.serial_us,
            overlapped_us=schedule.makespan_us,
            runs=runs,
            outputs=serial_result.outputs,
            schedule=schedule,
            serial_result=serial_result,
        )
