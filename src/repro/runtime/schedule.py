"""The three-engine pipeline scheduler: the runtime's timing core.

Generalises :func:`repro.gpu.stream.overlapped_makespan` — the what-if
analysis of the paper's serialised ``memcpy*async`` calls — into the
scheduling engine the runtime actually executes on:

* **three device engines** (H2D copy, compute, D2H copy — Fermi's dual
  copy engines plus the SMs) each process their operations in FIFO order;
* **true data dependences**: a kernel waits for the writers of every
  buffer it reads, a download waits for the writer of its buffer, a host
  step waits for the downloads it consumes and blocks subsequent issue;
* **bounded double-buffering**: device buffers are backed by ``depth``
  physical slots recycled round-robin across program runs, so a write
  into a recycled slot additionally waits for every reader of the slot's
  previous occupant (the WAR dependence the static happens-before model
  of :mod:`repro.analysis.hazards` cannot see — see
  :mod:`repro.runtime.unroll`);
* a **serialise knob**: with ``serialize=True`` every operation waits for
  the previous one, reproducing the paper's measured behaviour (the
  ablation baseline the overlapped numbers are reported against).

With ``depth >= runs`` no slot is ever recycled and a schedule's makespan
coincides with :func:`~repro.gpu.stream.overlapped_makespan` on the same
program (asserted by the tier-1 tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceError
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
    region_count,
)
from repro.obs.span import current_tracer

__all__ = [
    "ScheduledNode",
    "PipelineSchedule",
    "build_schedule",
    "schedule_violations",
]

#: resource kinds used in scheduled-node access records
DEV = "dev"
HOST = "host"

_EPS = 1e-9


@dataclass(frozen=True)
class ScheduledNode:
    """One operation placed on the pipeline timeline."""

    id: int
    run: int  # which back-to-back program run issued the op
    op_index: int  # index into ``program.ops``; -1 for synthetic fleet
    # migration transfers (no backing program op)
    name: str
    engine: str  # "h2d" | "compute" | "d2h" | "host", "d{k}:"-prefixed
    # (host lanes "hl{l}:host") when built against a DeviceTopology
    start_us: float
    end_us: float
    #: device stream the op belongs to (0 on single-device schedules)
    device: int = 0
    #: node ids this operation waited on (data, WAR/WAW and host deps;
    #: engine-FIFO predecessors are implicit in the per-engine order)
    deps: tuple[int, ...] = ()
    #: resources read: (kind, name) — device resources carry their slot
    reads: tuple[tuple[str, str], ...] = ()
    #: resources written
    writes: tuple[tuple[str, str], ...] = ()
    #: per entry of ``reads``: the access boxes of
    #: :mod:`repro.analysis.regions` (``None`` = whole resource); empty
    #: when the schedule was built with ``regions=False``
    read_boxes: tuple = field(default=(), compare=False, repr=False)
    #: per entry of ``writes``, same convention
    write_boxes: tuple = field(default=(), compare=False, repr=False)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class PipelineSchedule:
    """A complete schedule of ``runs`` back-to-back program executions."""

    program: str
    runs: int
    depth: int
    serialize: bool
    serial_us: float
    nodes: tuple[ScheduledNode, ...] = field(compare=False)
    #: fleet shape: device count, per-frame placements (device index per
    #: frame, empty on single-device schedules) and host-staged migration
    #: accounting — migration time is *extra* work the placement chose to
    #: pay, so it is kept out of ``serial_us`` (the what-if baseline)
    devices: int = 1
    placements: tuple[int, ...] = field(default=(), compare=False)
    migrations: int = 0
    migration_us: float = 0.0

    @property
    def makespan_us(self) -> float:
        return max((n.end_us for n in self.nodes), default=0.0)

    @property
    def speedup(self) -> float:
        m = self.makespan_us
        return self.serial_us / m if m else 1.0

    @property
    def engines(self) -> tuple[str, ...]:
        seen: list[str] = []
        for n in self.nodes:
            if n.engine not in seen:
                seen.append(n.engine)
        return tuple(seen)

    def engine_busy_us(self, engine: str) -> float:
        return sum(n.duration_us for n in self.nodes if n.engine == engine)

    def engine_occupancy(
        self, engines: tuple[str, ...] | None = None
    ) -> dict[str, float]:
        """Fraction of the makespan each engine spends busy.

        ``engines`` widens the report to engines with no scheduled node
        (a fleet device idle for the whole run); both the zero-span and
        the zero-busy case are guarded per engine so an idle device
        reports exactly ``0.0`` rather than dividing noise by the
        fleet-wide makespan.
        """
        names = self.engines if engines is None else tuple(engines)
        span = self.makespan_us
        out: dict[str, float] = {}
        for e in names:
            busy = self.engine_busy_us(e)
            out[e] = busy / span if busy > 0.0 and span > 0.0 else 0.0
        return out

    def device_nodes(self, device: int) -> tuple[ScheduledNode, ...]:
        return tuple(n for n in self.nodes if n.device == device)

    def run_nodes(self, run: int) -> tuple[ScheduledNode, ...]:
        return tuple(n for n in self.nodes if n.run == run)

    def latencies_us(self, batch: int = 1) -> list[float]:
        """Per-frame modelled latency, grouping ``batch`` consecutive runs
        into one frame (e.g. the three RGB channel runs of one video
        frame): time from the frame's first issued op starting to its last
        op finishing."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        spans: dict[int, tuple[float, float]] = {}
        for n in self.nodes:
            g = n.run // batch
            lo, hi = spans.get(g, (n.start_us, n.end_us))
            spans[g] = (min(lo, n.start_us), max(hi, n.end_us))
        return [hi - lo for _, (lo, hi) in sorted(spans.items())]


def build_schedule(
    program: DeviceProgram,
    executor,
    runs: int = 1,
    depth: int | None = 2,
    serialize: bool = False,
    regions: bool = True,
    topology=None,
    placements=None,
    placement="round-robin",
    frame_batch: int = 1,
) -> PipelineSchedule:
    """Schedule ``runs`` back-to-back executions of ``program``.

    ``executor`` supplies per-op durations (a
    :class:`~repro.gpu.executor.GPUExecutor`; nothing is executed
    functionally).  ``depth`` is the number of physical slots backing each
    device buffer (``None`` — one per run, i.e. unbounded buffering);
    ``serialize=True`` chains every operation after the previous one.
    With ``regions=True`` (the default) data dependences are tracked at
    the granularity of the access-region oracle: an operation does not
    wait for a predecessor touching a provably disjoint box of the same
    resource, so e.g. a partial upload of one tile overlaps a kernel
    writing another.  ``regions=False`` restores whole-resource edges.

    With a :class:`~repro.runtime.fleet.DeviceTopology` the runs shard
    across the fleet: every device owns a namespaced engine triple
    (``d{k}:h2d`` / ``d{k}:compute`` / ``d{k}:d2h``) with its own buffer
    slots and its own host-step barrier stream; host steps run on at most
    ``host.cores`` shared lanes and every PCIe transfer additionally
    queues on the topology's shared host staging channels (the saturation
    model).  ``frame_batch`` consecutive runs form one frame — the unit
    of placement.  ``placements`` gives one
    :class:`~repro.runtime.fleet.PlacementDecision` per frame (e.g. from
    :class:`~repro.runtime.pipeline.FramePipeline`'s placement stage);
    without it, frames are placed by the named ``placement`` policy.  A
    decision carrying ``migrate_from`` materialises the host-staged move
    as real D2H + H2D nodes priced by the PCIe model, which the frame's
    runs then wait on.

    The work is recorded as one ``schedule`` span on the ambient tracer.
    """
    with current_tracer().span(
        f"build_schedule:{program.name}", category="schedule",
        runs=runs, depth=depth if depth is not None else runs,
        serialize=serialize,
        devices=1 if topology is None else len(topology),
    ) as span:
        schedule = _build_schedule(
            program, executor, runs, depth, serialize, regions,
            topology=topology, placements=placements, placement=placement,
            frame_batch=frame_batch,
        )
        span.set(nodes=len(schedule.nodes), makespan_us=schedule.makespan_us)
        return schedule


def _build_schedule(
    program: DeviceProgram,
    executor,
    runs: int,
    depth: int | None,
    serialize: bool,
    regions: bool = True,
    topology=None,
    placements=None,
    placement="round-robin",
    frame_batch: int = 1,
) -> PipelineSchedule:
    if runs <= 0:
        raise ValueError("runs must be positive")
    depth = runs if depth is None else depth
    if depth <= 0:
        raise ValueError("depth must be positive")
    if frame_batch <= 0:
        raise ValueError("frame_batch must be positive")
    cost = executor.cost

    frames = (runs + frame_batch - 1) // frame_batch
    decisions = None
    if topology is not None:
        from repro.runtime.fleet import FrameTicket, make_placement

        if placements is None:
            policy = make_placement(placement, len(topology))
            decisions = [
                policy.place(FrameTicket(frame=f, cache_key=program.name))
                for f in range(frames)
            ]
        else:
            decisions = list(placements)
            if len(decisions) != frames:
                raise ValueError(
                    f"{len(decisions)} placement(s) for {frames} frame(s) "
                    f"({runs} runs in batches of {frame_batch})"
                )
        for d in decisions:
            if not 0 <= d.device < len(topology):
                raise DeviceError(
                    f"frame {d.frame} placed on device {d.device} of a "
                    f"{len(topology)}-device topology"
                )
            if d.migrate_from is not None and not (
                0 <= d.migrate_from < len(topology)
            ):
                raise DeviceError(
                    f"frame {d.frame} migrates from unknown device "
                    f"{d.migrate_from}"
                )
    elif placements is not None:
        raise ValueError("placements require a device topology")

    overlap = None
    op_access = None
    if regions:
        from repro.analysis.regions import RegionOracle, boxes_overlap

        overlap = boxes_overlap
        oracle = RegionOracle(program)
        op_access = [oracle.accesses(i) for i in range(len(program.ops))]

    def boxes_for(i: int, kind: str, name: str, write: bool):
        """Access boxes of ``program.ops[i]`` on a resource (None = whole)."""
        if op_access is None:
            return None
        return op_access[i][1 if write else 0].get((kind, name))

    def disjoint(a, b) -> bool:
        if overlap is None or a is None or b is None:
            return False
        return not any(overlap(x, y) for x in a for y in b)

    nbytes: dict[str, int] = {}
    itemsize: dict[str, int] = {}
    if topology is None:
        engine_ready: dict[str, float] = {"h2d": 0.0, "compute": 0.0, "d2h": 0.0}
        chan_ready = None
    else:
        # every namespaced engine (host lanes included) runs FIFO; PCIe
        # transfers additionally queue on the shared staging channels
        engine_ready = {e: 0.0 for e in topology.engines()}
        chan_ready = [0.0] * topology.host_channels
    #: per resource, the writers/readers still relevant for dependences:
    #: (node id, end, access boxes, engine).  A whole-resource write
    #: supersedes everything before it (it waited on all of it); a
    #: boxed write supersedes equal-boxed writers, a read supersedes
    #: equal-boxed reads on the same engine (FIFO orders them).
    writers: dict[tuple[str, str], list] = {}
    readers: dict[tuple[str, str], list] = {}
    #: host-step barriers are per device stream: a host step of one
    #: device's frame must not stall another device's issue
    host_sync: dict[int, float] = {}
    host_barrier: dict[int, int] = {}
    prev_node: tuple[int, float] | None = None  # for serialize
    nodes: list[ScheduledNode] = []
    serial = 0.0
    migration_total = 0.0
    migration_count = 0
    mig_nbytes: int | None = None
    dev_run_count: dict[int, int] = {}
    frame_floors: dict[int, tuple[float, int]] = {}
    cur_dev = 0   # device stream of the run being scheduled
    cur_slot = 0  # its per-device buffer slot (round-robin over depth)
    floor_end = 0.0  # earliest start of the current run (migration fence)
    floor_dep: int | None = None

    def eng(kind: str) -> str:
        return kind if topology is None else f"d{cur_dev}:{kind}"

    def lane() -> str:
        return "host" if topology is None else topology.host_lane(cur_dev)

    def dev(buffer: str, run: int) -> tuple[str, str]:
        if topology is None:
            return (DEV, f"{buffer}@s{run % depth}")
        return (DEV, f"d{cur_dev}/{buffer}@s{cur_slot}")

    def host_res(name: str, run: int) -> tuple[str, str]:
        return (HOST, f"{name}@r{run}")

    def xfer_nbytes(op) -> int:
        if op.region is None:
            return nbytes[op.device]
        return region_count(op.region) * itemsize[op.device]

    def wait_read(
        res: tuple[str, str], after: float, deps: set[int], boxes=None
    ) -> float:
        for wid, wend, wb, _ in writers.get(res, ()):
            if disjoint(boxes, wb):
                continue
            deps.add(wid)
            after = max(after, wend)
        return after

    def wait_write(
        res: tuple[str, str], after: float, deps: set[int], boxes=None
    ) -> float:
        after = wait_read(res, after, deps, boxes)  # WAW
        for rid, rend, rb, _ in readers.get(res, ()):  # WAR (slot recycling)
            if disjoint(boxes, rb):
                continue
            deps.add(rid)
            after = max(after, rend)
        return after

    def place(
        run: int,
        op_index: int,
        name: str,
        engine: str,
        dur: float,
        after: float,
        deps: set[int],
        read_res: tuple[tuple[str, str], ...],
        write_res: tuple[tuple[str, str], ...],
        read_boxes: tuple = (),
        write_boxes: tuple = (),
        device: int | None = None,
        channel: bool = False,
    ) -> ScheduledNode:
        nonlocal prev_node, floor_dep
        stream = cur_dev if device is None else device
        barrier = host_barrier.get(stream)
        if barrier is not None:
            deps.add(barrier)
        after = max(after, host_sync.get(stream, 0.0))
        if op_index >= 0 and floor_end > 0.0:
            # the frame migrated here: nothing runs before its working
            # set landed (the dep edge goes on the run's first node)
            after = max(after, floor_end)
            if floor_dep is not None:
                deps.add(floor_dep)
                floor_dep = None
        if serialize and prev_node is not None:
            deps.add(prev_node[0])
            after = max(after, prev_node[1])
        start = max(engine_ready.get(engine, 0.0), after)
        if channel and chan_ready is not None:
            # the PCIe wire: this transfer occupies one of the shared
            # host staging channels for exactly its duration.  Best fit:
            # take the latest-freed channel already free when the
            # transfer is otherwise ready (keeping earlier-freed wires
            # open); only when every wire is still busy does the
            # transfer wait — the fleet's saturation point.
            free = [
                i for i in range(len(chan_ready))
                if chan_ready[i] <= start + _EPS
            ]
            if free:
                ci = max(free, key=chan_ready.__getitem__)
            else:
                ci = min(range(len(chan_ready)), key=chan_ready.__getitem__)
                start = chan_ready[ci]
            chan_ready[ci] = start + dur
        end = start + dur
        if engine in engine_ready:
            engine_ready[engine] = end
        if not read_boxes:
            read_boxes = (None,) * len(read_res)
        if not write_boxes:
            write_boxes = (None,) * len(write_res)
        node = ScheduledNode(
            id=len(nodes),
            run=run,
            op_index=op_index,
            name=name,
            engine=engine,
            start_us=start,
            end_us=end,
            device=stream,
            deps=tuple(sorted(deps)),
            reads=read_res,
            writes=write_res,
            read_boxes=read_boxes,
            write_boxes=write_boxes,
        )
        nodes.append(node)
        for res, wb in zip(write_res, write_boxes):
            if wb is None:
                # a whole-resource write waited on every recorded
                # predecessor, so it supersedes the lot
                writers[res] = [(node.id, end, None, engine)]
                readers[res] = []
            else:
                kept = [w for w in writers.get(res, ()) if w[2] != wb]
                kept.append((node.id, end, wb, engine))
                writers[res] = kept
        for res, rb in zip(read_res, read_boxes):
            kept = [
                r for r in readers.get(res, ())
                if not (r[2] == rb and r[3] == engine)
            ]
            kept.append((node.id, end, rb, engine))
            readers[res] = kept
        prev_node = (node.id, end)
        return node

    for run in range(runs):
        if topology is not None:
            frame = run // frame_batch
            dcsn = decisions[frame]
            cur_dev = dcsn.device
            count = dev_run_count.get(cur_dev, 0)
            cur_slot = count % depth
            dev_run_count[cur_dev] = count + 1
            floor_end, floor_dep = 0.0, None
            if (
                run % frame_batch == 0
                and dcsn.migrate_from is not None
                and dcsn.migrate_from != cur_dev
            ):
                # host-staged migration: D2H the frame's working set on
                # the source, H2D it on the target, both through the
                # shared staging channels — the frame's runs wait on it
                if mig_nbytes is None:
                    from repro.runtime.fleet import upload_nbytes

                    mig_nbytes = upload_nbytes(program)
                d2h_us, h2d_us = topology.migration_us(mig_nbytes)
                src, dst = dcsn.migrate_from, cur_dev
                nsrc = place(
                    run, -1, f"migrate-d2h:{src}->{dst}", f"d{src}:d2h",
                    d2h_us, 0.0, set(), read_res=(), write_res=(),
                    device=src, channel=True,
                )
                ndst = place(
                    run, -1, f"migrate-h2d:{src}->{dst}", f"d{dst}:h2d",
                    h2d_us, nsrc.end_us, {nsrc.id}, read_res=(), write_res=(),
                    device=dst, channel=True,
                )
                frame_floors[frame] = (ndst.end_us, ndst.id)
                migration_total += d2h_us + h2d_us
                migration_count += 1
            if frame in frame_floors:
                floor_end, floor_dep = frame_floors[frame]
        for i, op in enumerate(program.ops):
            if isinstance(op, AllocDevice):
                nbytes[op.buffer] = op.nbytes
                itemsize[op.buffer] = np.dtype(op.dtype).itemsize
            elif isinstance(op, FreeDevice):
                pass
            elif isinstance(op, HostToDevice):
                if op.device not in nbytes:
                    raise DeviceError(f"H2D into unallocated buffer {op.device!r}")
                dur = cost.h2d_time_us(xfer_nbytes(op))
                serial += dur
                deps: set[int] = set()
                res = dev(op.device, run)
                wb = boxes_for(i, "device buffer", op.device, True)
                rb = boxes_for(i, "host array", op.host, False)
                after = wait_write(res, 0.0, deps, wb)
                place(
                    run, i, f"h2d:{op.device}", eng("h2d"), dur, after, deps,
                    read_res=(host_res(op.host, run),), write_res=(res,),
                    read_boxes=(rb,), write_boxes=(wb,), channel=True,
                )
            elif isinstance(op, LaunchKernel):
                dur = executor.kernel_breakdown(op.kernel).total_us
                serial += dur
                deps = set()
                after = 0.0
                read_res: list[tuple[str, str]] = []
                write_res: list[tuple[str, str]] = []
                read_boxes: list = []
                write_boxes: list = []
                for param, buf in op.array_args:
                    res = dev(buf, run)
                    intent = op.kernel.array(param).intent
                    if intent in ("in", "inout"):
                        rb = boxes_for(i, "device buffer", buf, False)
                        read_res.append(res)
                        read_boxes.append(rb)
                        after = wait_read(res, after, deps, rb)
                    if intent in ("out", "inout"):
                        wb = boxes_for(i, "device buffer", buf, True)
                        write_res.append(res)
                        write_boxes.append(wb)
                        after = wait_write(res, after, deps, wb)
                place(
                    run, i, op.kernel.name, eng("compute"), dur, after, deps,
                    read_res=tuple(read_res), write_res=tuple(write_res),
                    read_boxes=tuple(read_boxes), write_boxes=tuple(write_boxes),
                )
            elif isinstance(op, DeviceToHost):
                if op.device not in nbytes:
                    raise DeviceError(f"D2H from unallocated buffer {op.device!r}")
                dur = cost.d2h_time_us(xfer_nbytes(op))
                serial += dur
                deps = set()
                res = dev(op.device, run)
                out_res = host_res(op.host, run)
                rb = boxes_for(i, "device buffer", op.device, False)
                wb = boxes_for(i, "host array", op.host, True)
                after = wait_read(res, 0.0, deps, rb)
                after = wait_write(out_res, after, deps, wb)
                place(
                    run, i, f"d2h:{op.device}", eng("d2h"), dur, after, deps,
                    read_res=(res,), write_res=(out_res,),
                    read_boxes=(rb,), write_boxes=(wb,), channel=True,
                )
            elif isinstance(op, HostCompute):
                dur = cost.host_work_time_us(op.work)
                serial += dur
                deps = set()
                after = 0.0
                read_res = []
                write_res = []
                read_boxes = []
                write_boxes = []
                for name in op.reads:
                    res = host_res(name, run)
                    rb = boxes_for(i, "host array", name, False)
                    read_res.append(res)
                    read_boxes.append(rb)
                    after = wait_read(res, after, deps, rb)
                for name in op.writes:
                    res = host_res(name, run)
                    wb = boxes_for(i, "host array", name, True)
                    write_res.append(res)
                    write_boxes.append(wb)
                    after = wait_write(res, after, deps, wb)
                node = place(
                    run, i, op.name, lane(), dur, after, deps,
                    read_res=tuple(read_res), write_res=tuple(write_res),
                    read_boxes=tuple(read_boxes), write_boxes=tuple(write_boxes),
                )
                host_sync[cur_dev] = node.end_us
                host_barrier[cur_dev] = node.id
            else:
                raise DeviceError(f"scheduler cannot handle {op!r}")

    return PipelineSchedule(
        program=program.name,
        runs=runs,
        depth=depth,
        serialize=serialize,
        serial_us=serial,
        nodes=tuple(nodes),
        devices=1 if topology is None else len(topology),
        placements=(
            tuple(d.device for d in decisions) if decisions is not None else ()
        ),
        migrations=migration_count,
        migration_us=migration_total,
    )


def schedule_violations(schedule: PipelineSchedule) -> list[str]:
    """Check a schedule against every constraint it claims to respect.

    Returns human-readable violation descriptions (empty means the
    schedule is valid): RAW (a read starting before its writer finishes),
    WAW/WAR (a write starting before the previous writer or any of its
    readers finish — slot recycling safety), and per-engine FIFO order.
    Used by the property tests and the pipeline hazard check.

    The check mirrors the builder's region awareness symmetrically: a
    pair of accesses whose recorded boxes are provably disjoint needs no
    ordering, so skipping its dependence is not a violation.  Nodes
    without boxes (``regions=False`` builds) are checked whole-resource.
    """
    from repro.analysis.regions import boxes_overlap

    def disjoint(a, b) -> bool:
        if a is None or b is None:
            return False
        return not any(boxes_overlap(x, y) for x in a for y in b)

    def aligned(boxes, resources):
        return boxes if boxes else (None,) * len(resources)

    out: list[str] = []

    # per-engine FIFO: issue order == time order, no overlap
    by_engine: dict[str, list[ScheduledNode]] = {}
    for n in schedule.nodes:
        by_engine.setdefault(n.engine, []).append(n)
    for engine, ns in by_engine.items():
        # host engines/lanes are FIFO too: the builder's host_sync (one
        # stream) or lane FIFO (fleet) serialises steps on one lane, so
        # the same no-overlap check applies to every engine
        for a, b in zip(ns, ns[1:]):
            if b.start_us < a.end_us - _EPS:
                out.append(
                    f"engine {engine}: node {b.id} ({b.name}) starts at "
                    f"{b.start_us:.3f} before node {a.id} ({a.name}) ends at "
                    f"{a.end_us:.3f}"
                )

    # data dependences, replayed in issue order per resource; histories
    # carry (node, boxes) and are pruned exactly like the builder's
    # tables — a whole-resource write supersedes everything it waited on,
    # an equal-boxed write/same-engine read supersedes its predecessor
    writer_hist: dict[tuple[str, str], list] = {}
    reader_hist: dict[tuple[str, str], list] = {}
    for n in schedule.nodes:
        for res, rb in zip(n.reads, aligned(n.read_boxes, n.reads)):
            for w, wb in writer_hist.get(res, ()):
                if disjoint(rb, wb):
                    continue
                if n.start_us < w.end_us - _EPS:
                    out.append(
                        f"RAW on {res}: node {n.id} ({n.name}) reads at "
                        f"{n.start_us:.3f} before writer {w.id} ({w.name}) "
                        f"ends at {w.end_us:.3f}"
                    )
        for res, wb in zip(n.writes, aligned(n.write_boxes, n.writes)):
            for w, owb in writer_hist.get(res, ()):
                if disjoint(wb, owb):
                    continue
                if n.start_us < w.end_us - _EPS:
                    out.append(
                        f"WAW on {res}: node {n.id} ({n.name}) writes at "
                        f"{n.start_us:.3f} before writer {w.id} ({w.name}) "
                        f"ends at {w.end_us:.3f}"
                    )
            for r, rb in reader_hist.get(res, ()):
                if disjoint(wb, rb):
                    continue
                if n.start_us < r.end_us - _EPS:
                    out.append(
                        f"WAR on {res}: node {n.id} ({n.name}) writes at "
                        f"{n.start_us:.3f} before reader {r.id} ({r.name}) "
                        f"ends at {r.end_us:.3f}"
                    )
        for res, wb in zip(n.writes, aligned(n.write_boxes, n.writes)):
            if wb is None:
                writer_hist[res] = [(n, None)]
                reader_hist[res] = []
            else:
                kept = [w for w in writer_hist.get(res, ()) if w[1] != wb]
                kept.append((n, wb))
                writer_hist[res] = kept
        for res, rb in zip(n.reads, aligned(n.read_boxes, n.reads)):
            kept = [
                r for r in reader_hist.get(res, ())
                if not (r[1] == rb and r[0].engine == n.engine)
            ]
            kept.append((n, rb))
            reader_hist[res] = kept

    # host steps serialise against each other and block all later issue
    # *of their own device stream* (a fleet device's host step must not
    # stall another device's issue; single-device schedules have exactly
    # one stream, so this is the old global check).  One ordered pass per
    # stream tracking the latest-ending host step issued so far — a node
    # violates the barrier iff it starts before that maximum, so the
    # check is O(nodes) instead of the old O(hosts x nodes) sweep (which
    # went quadratic on 300-frame schedules with per-frame host steps).
    last_host: dict[int, ScheduledNode] = {}
    for n in sorted(schedule.nodes, key=lambda n: n.id):
        prior = last_host.get(n.device)
        is_host = n.engine == "host" or n.engine.endswith(":host")
        if prior is not None and n.start_us < prior.end_us - _EPS:
            if is_host:
                out.append(
                    f"host: node {n.id} ({n.name}) starts before node "
                    f"{prior.id} ({prior.name}) ends"
                )
            else:
                out.append(
                    f"host barrier: node {n.id} ({n.name}) issued after host "
                    f"step {prior.id} ({prior.name}) but starts "
                    f"before it ends"
                )
        if is_host and (prior is None or n.end_us > prior.end_us):
            last_host[n.device] = n
    return out
