"""Unrolled pipeline programs and their hazard certification.

The pipeline executes ``runs`` back-to-back program instances with device
buffers backed by ``depth`` recycled slots.  :func:`unroll_pipeline`
materialises that execution as an ordinary straight-line
:class:`~repro.ir.program.DeviceProgram` — device buffers renamed per
slot, host arrays renamed per run — so the static analyses of
:mod:`repro.analysis` can inspect exactly what the runtime overlaps.

:func:`check_pipeline_hazards` then runs the happens-before race detector
over the unrolled program and *certifies* the schedule against it:

* with ``depth >= runs`` every run has private slots and the detector
  finds nothing — the regime :func:`repro.gpu.stream.overlapped_makespan`
  models;
* with bounded depth the detector reports RACE001/RACE002 on recycled
  slots: an older run's kernel/download against a newer run's upload two
  ``depth`` strides later.  These are **WAR/WAW-on-recycling** hazards the
  static model cannot discharge (its happens-before relation has no
  reader-to-writer edges), but the scheduler orders them explicitly — the
  check verifies, pair by pair, that the schedule separates the two
  operations in time, and only then files the finding as *resolved*.
  Anything else (same-run races, host-array races, or a recycled pair the
  schedule fails to order) is returned as unexpected and fails CI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic
from repro.errors import DeviceError
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
    Op,
)
from repro.runtime.schedule import build_schedule, schedule_violations

__all__ = [
    "UnrolledPipeline",
    "unroll_pipeline",
    "ResolvedHazard",
    "PipelineHazardReport",
    "check_pipeline_hazards",
]


@dataclass(frozen=True)
class UnrolledPipeline:
    """A multi-run pipeline flattened into one device program."""

    program: DeviceProgram
    runs: int
    depth: int
    #: per op of ``program.ops``: (run, index into the base program's ops);
    #: slot allocations/frees carry run -1
    origins: tuple[tuple[int, int], ...]


def _wrap_host_fn(fn, mapping: dict[str, str]):
    """Adapt a HostCompute fn to per-run renamed host arrays."""

    def wrapped(env, _fn=fn, _map=mapping):
        local = {orig: env[ren] for orig, ren in _map.items() if ren in env}
        _fn(local)
        for orig, ren in _map.items():
            if orig in local:
                env[ren] = local[orig]

    return wrapped


def unroll_pipeline(
    program: DeviceProgram, runs: int, depth: int | None = 2
) -> UnrolledPipeline:
    """Unroll ``runs`` executions of ``program`` with ``depth`` buffer slots.

    Device buffer ``b`` used by run ``r`` becomes ``b@s{r % depth}``
    (allocated once per slot, freed at the end); host array ``h`` becomes
    ``h@r{r}`` (each run has its own frame environment).  Kernel objects
    are shared, so per-kernel cost probes stay cached.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    depth = runs if depth is None else depth
    if depth <= 0:
        raise ValueError("depth must be positive")

    ops: list[Op] = []
    origins: list[tuple[int, int]] = []
    allocated: list[str] = []

    def slot(buffer: str, run: int) -> str:
        return f"{buffer}@s{run % depth}"

    def harr(name: str, run: int) -> str:
        return f"{name}@r{run}"

    for run in range(runs):
        for i, op in enumerate(program.ops):
            if isinstance(op, AllocDevice):
                name = slot(op.buffer, run)
                if name not in allocated:
                    ops.append(AllocDevice(name, op.shape, op.dtype))
                    origins.append((run, i))
                    allocated.append(name)
            elif isinstance(op, FreeDevice):
                pass  # slots are recycled; freed once at the end
            elif isinstance(op, HostToDevice):
                ops.append(
                    HostToDevice(
                        harr(op.host, run), slot(op.device, run), op.is_async,
                        region=op.region,
                    )
                )
                origins.append((run, i))
            elif isinstance(op, DeviceToHost):
                ops.append(
                    DeviceToHost(
                        slot(op.device, run), harr(op.host, run), op.is_async,
                        region=op.region,
                    )
                )
                origins.append((run, i))
            elif isinstance(op, LaunchKernel):
                ops.append(
                    LaunchKernel(
                        op.kernel,
                        tuple((p, slot(b, run)) for p, b in op.array_args),
                        op.scalar_args,
                    )
                )
                origins.append((run, i))
            elif isinstance(op, HostCompute):
                touched = sorted(set(op.reads) | set(op.writes))
                mapping = {n: harr(n, run) for n in touched}
                ops.append(
                    HostCompute(
                        name=f"{op.name}@r{run}",
                        fn=_wrap_host_fn(op.fn, mapping),
                        reads=tuple(harr(n, run) for n in op.reads),
                        writes=tuple(harr(n, run) for n in op.writes),
                        work=op.work,
                    )
                )
                origins.append((run, i))
            else:
                raise DeviceError(f"cannot unroll op {op!r}")

    for name in allocated:
        ops.append(FreeDevice(name))
        origins.append((-1, -1))

    unrolled = DeviceProgram(
        name=f"{program.name}_x{runs}d{depth}",
        ops=tuple(ops),
        host_inputs=tuple(
            harr(n, r) for r in range(runs) for n in program.host_inputs
        ),
        host_outputs=tuple(
            harr(n, r) for r in range(runs) for n in program.host_outputs
        ),
    )
    return UnrolledPipeline(
        program=unrolled, runs=runs, depth=depth, origins=tuple(origins)
    )


@dataclass(frozen=True)
class ResolvedHazard:
    """A recycled-slot hazard the schedule provably orders."""

    diagnostic: Diagnostic
    #: (run, base op index) of the two conflicting operations
    first: tuple[int, int]
    second: tuple[int, int]
    #: gap the schedule leaves between them, us (>= 0 when ordered)
    separation_us: float


@dataclass(frozen=True)
class PipelineHazardReport:
    """Outcome of certifying a pipeline against the race detector."""

    program: str
    runs: int
    depth: int
    #: findings that are NOT explained by slot recycling or that the
    #: schedule fails to order — these gate CI
    unexpected: tuple[Diagnostic, ...]
    #: recycled-slot WAR/WAW findings, each verified ordered in time
    resolved: tuple[ResolvedHazard, ...] = field(default=())
    #: violations reported by the scheduler's own dependence checker
    schedule_violations: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.unexpected and not self.schedule_violations


_OPS_RE = re.compile(r"ops\[(\d+)\]")


def check_pipeline_hazards(
    program: DeviceProgram,
    executor,
    runs: int,
    depth: int | None = 2,
    serialize: bool = False,
) -> PipelineHazardReport:
    """Race-check the unrolled pipeline and certify the schedule over it."""
    from repro.analysis.hazards import find_hazards

    unrolled = unroll_pipeline(program, runs, depth)
    findings = find_hazards(unrolled.program)
    schedule = build_schedule(
        program, executor, runs=runs, depth=depth, serialize=serialize
    )
    by_origin = {(n.run, n.op_index): n for n in schedule.nodes}

    unexpected: list[Diagnostic] = []
    resolved: list[ResolvedHazard] = []
    for d in findings:
        indices = [int(m) for m in _OPS_RE.findall(d.message)]
        ok = False
        if len(indices) == 2 and "device buffer" in d.message:
            (r1, i1), (r2, i2) = (unrolled.origins[i] for i in indices)
            n1 = by_origin.get((r1, i1))
            n2 = by_origin.get((r2, i2))
            if r1 != r2 and n1 is not None and n2 is not None:
                # recycled-slot hazard: certified iff the schedule leaves
                # the two operations disjoint in time
                a, b = sorted((n1, n2), key=lambda n: n.start_us)
                separation = b.start_us - a.end_us
                if separation >= -1e-9:
                    resolved.append(
                        ResolvedHazard(
                            diagnostic=d,
                            first=(r1, i1),
                            second=(r2, i2),
                            separation_us=max(0.0, separation),
                        )
                    )
                    ok = True
        if not ok:
            unexpected.append(d)

    return PipelineHazardReport(
        program=program.name,
        runs=runs,
        depth=schedule.depth,
        unexpected=tuple(unexpected),
        resolved=tuple(resolved),
        schedule_violations=tuple(schedule_violations(schedule)),
    )
