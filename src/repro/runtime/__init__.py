"""The execution runtime: what turns the reproduction into a server.

The paper's central empirical finding is that the async transfers both
routes issue eat roughly half the total time because the measurements
serialise them (Tables I/II).  This package executes compiled
:class:`~repro.ir.program.DeviceProgram` artefacts the way the hardware's
three engines (H2D copy, compute, D2H copy) actually could:

* :mod:`repro.runtime.schedule` — the dependence scheduler (engine FIFO,
  RAW/WAR/WAW over ``depth``-deep recycled buffer slots, serialise knob);
* :mod:`repro.runtime.executor` — :class:`StreamExecutor`, bit-exact
  functional execution charged at the overlapped makespan;
* :mod:`repro.runtime.cache` — :class:`CompileCache`, memoised
  compilation for both routes with hit/miss/invalidation statistics;
* :mod:`repro.runtime.pipeline` — :class:`FramePipeline`, the batched
  frame server (compile -> upload -> launch -> download with
  double-buffering and throughput/latency metrics);
* :mod:`repro.runtime.unroll` — pipeline unrolling for the static
  analyses plus the hazard certification of the overlapped schedule;
* :mod:`repro.runtime.fleet` — the device-fleet topology (K devices,
  shared host lanes and PCIe staging channels) and the frame-placement
  policies (round-robin / least-loaded / cache-affinity) behind
  ``repro pipeline --devices K``.

``repro pipeline`` drives it from the CLI.
"""

from repro.runtime.cache import (
    CacheStats,
    CompileCache,
    canonical,
    gaspard_key,
    sac_key,
)
from repro.runtime.executor import StreamExecutor, StreamRunResult
from repro.runtime.fleet import (
    CacheAffinityPlacement,
    DeviceTopology,
    FleetDevice,
    FrameTicket,
    LeastLoadedPlacement,
    PlacementDecision,
    PlacementPolicy,
    RoundRobinPlacement,
    make_placement,
)
from repro.runtime.pipeline import FramePipeline, PipelineJob, PipelineReport
from repro.runtime.schedule import (
    PipelineSchedule,
    ScheduledNode,
    build_schedule,
    schedule_violations,
)
from repro.runtime.unroll import (
    PipelineHazardReport,
    ResolvedHazard,
    UnrolledPipeline,
    check_pipeline_hazards,
    unroll_pipeline,
)

__all__ = [
    "build_schedule", "schedule_violations", "PipelineSchedule", "ScheduledNode",
    "StreamExecutor", "StreamRunResult",
    "CompileCache", "CacheStats", "sac_key", "gaspard_key", "canonical",
    "FramePipeline", "PipelineJob", "PipelineReport",
    "DeviceTopology", "FleetDevice", "FrameTicket", "PlacementDecision",
    "PlacementPolicy", "RoundRobinPlacement", "LeastLoadedPlacement",
    "CacheAffinityPlacement", "make_placement",
    "unroll_pipeline", "UnrolledPipeline",
    "check_pipeline_hazards", "PipelineHazardReport", "ResolvedHazard",
]
