"""Device-fleet topology and frame-placement policies.

The paper's cost model prices one GTX480; the ROADMAP's "millions of
users" target needs many.  This module generalises the runtime to a
*fleet* of K modelled devices without abandoning the cost model:

* :class:`DeviceTopology` — K devices, each with its own three engines
  (H2D / compute / D2H), its own :class:`~repro.gpu.memory.MemoryManager`
  and its own :class:`~repro.runtime.cache.CompileCache` (device code is
  per-context, as in CUDA module loading).  The devices share the host:
  host driver work runs on at most ``host.cores`` lanes, and every PCIe
  transfer crosses a bounded pool of host staging channels — the
  saturation point the fleet benchmark sweeps for.
* **placement policies** — who serves the next frame.  Round-robin is
  the baseline; least-loaded balances an EWMA-smoothed estimate of each
  device's queued modelled microseconds; cache-affinity keeps a frame on
  a device that has already compiled its configuration (warm compile
  cache, resident working set), spreading to cold devices only under
  load imbalance and never paying more compile misses than round-robin
  would (the *miss budget* invariant, property-tested).
* **host-staged migration pricing** — moving a frame's working set
  between devices has no peer-to-peer path in the paper's PCIe model, so
  it is priced as a D2H on the source plus an H2D on the target through
  :class:`~repro.gpu.cost.CostModel`, and materialised as real transfer
  nodes in the schedule.

Everything here is pure placement state; the timing consequences are
computed by :func:`repro.runtime.schedule.build_schedule` when given a
topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

import numpy as np

from repro.errors import ReproError
from repro.gpu.calibration import GTX480_CALIBRATED
from repro.gpu.cost import CostModel, CostParams
from repro.gpu.device import GTX480, I7_930, DeviceSpec, HostSpec
from repro.gpu.executor import GPUExecutor
from repro.ir.program import AllocDevice, DeviceProgram, HostToDevice, region_count
from repro.runtime.cache import CompileCache

__all__ = [
    "ENGINE_KINDS",
    "FleetDevice",
    "DeviceTopology",
    "FrameTicket",
    "PlacementDecision",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "CacheAffinityPlacement",
    "make_placement",
    "split_engine",
    "upload_nbytes",
]

#: engine kinds every device owns (host is a shared-lane kind)
ENGINE_KINDS = ("h2d", "compute", "d2h", "host")

#: host staging channels shared by every device's PCIe transfers: the
#: i7-930's triple-channel DDR3 sustains ~25.6 GB/s against ~4-5 GB/s of
#: effective PCIe x16 Gen2 per direction, so about six concurrent wire
#: transfers saturate the host side — the knee the K-sweep looks for
HOST_CHANNELS = 6

#: default per-policy EWMA smoothing for modelled service times
EWMA_ALPHA = 0.3


def split_engine(engine: str) -> tuple[int | None, str]:
    """``"d2:h2d"`` -> ``(2, "h2d")``; un-namespaced ``"h2d"`` -> ``(None, "h2d")``."""
    if ":" in engine:
        dev, kind = engine.split(":", 1)
        return int(dev[1:]), kind
    return None, engine


def upload_nbytes(program: DeviceProgram) -> int:
    """Bytes one run of ``program`` uploads host-to-device.

    This is the working set a migration must re-stage on a new device
    (the inputs; device-resident intermediates are recomputed there), so
    it is what the host-staged D2H+H2D migration path prices.
    """
    sizes: dict[str, int] = {}
    items: dict[str, int] = {}
    total = 0
    for op in program.ops:
        if isinstance(op, AllocDevice):
            sizes[op.buffer] = op.nbytes
            items[op.buffer] = np.dtype(op.dtype).itemsize
        elif isinstance(op, HostToDevice):
            if op.device not in sizes:
                raise ReproError(
                    f"fleet upload accounting of {program.name!r}: H2D into "
                    f"unallocated buffer {op.device!r}"
                )
            if op.region is None:
                total += sizes[op.device]
            else:
                total += region_count(op.region) * items[op.device]
    return total


@dataclass
class FleetDevice:
    """One device of the fleet: engines + memory + compile cache."""

    index: int
    executor: GPUExecutor
    cache: CompileCache

    @property
    def name(self) -> str:
        return f"d{self.index}"

    @property
    def memory(self):
        return self.executor.memory

    def engine(self, kind: str) -> str:
        if kind not in ENGINE_KINDS:
            raise ReproError(f"unknown engine kind {kind!r}")
        return f"{self.name}:{kind}"


class DeviceTopology:
    """K modelled devices behind one host, sharing the PCIe staging path."""

    def __init__(
        self,
        devices: list[FleetDevice],
        host: HostSpec = I7_930,
        host_channels: int = HOST_CHANNELS,
    ):
        if not devices:
            raise ReproError("a topology needs at least one device")
        if host_channels < 1:
            raise ReproError("host_channels must be >= 1")
        self.devices = list(devices)
        self.host = host
        self.host_channels = host_channels

    @classmethod
    def build(
        cls,
        count: int,
        params: CostParams = GTX480_CALIBRATED,
        device: DeviceSpec = GTX480,
        host: HostSpec = I7_930,
        host_channels: int = HOST_CHANNELS,
    ) -> "DeviceTopology":
        """A homogeneous fleet of ``count`` copies of the paper's device."""
        if count < 1:
            raise ReproError("device count must be >= 1")
        devices = [
            FleetDevice(
                index=k,
                executor=GPUExecutor(CostModel(params), device=device),
                cache=CompileCache(),
            )
            for k in range(count)
        ]
        return cls(devices, host=host, host_channels=host_channels)

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[FleetDevice]:
        return iter(self.devices)

    def device(self, k: int) -> FleetDevice:
        return self.devices[k]

    @property
    def host_lanes(self) -> int:
        """Host driver lanes: one per device, bounded by the host's cores."""
        return min(len(self.devices), self.host.cores)

    def host_lane(self, k: int) -> str:
        """The host engine serving device ``k``'s stream (lanes wrap when
        K exceeds the host's core count)."""
        return f"hl{k % self.host_lanes}:host"

    def engines(self) -> tuple[str, ...]:
        """Every engine of the fleet in track order (device-major)."""
        names = []
        for d in self.devices:
            names.extend(d.engine(kind) for kind in ("h2d", "compute", "d2h"))
        names.extend(f"hl{lane}:host" for lane in range(self.host_lanes))
        return tuple(names)

    def migration_us(self, nbytes: int) -> tuple[float, float]:
        """Host-staged cross-device move: (D2H on source, H2D on target)."""
        cost = self.devices[0].executor.cost
        return cost.d2h_time_us(nbytes), cost.h2d_time_us(nbytes)

    def reset_stats(self) -> None:
        """Zero every device's memory counters (between pipeline batches)."""
        for d in self.devices:
            d.memory.reset_stats()


@dataclass(frozen=True)
class FrameTicket:
    """What a placement policy knows about a frame before placing it."""

    frame: int
    #: compile-cache identity of the frame's configuration (same key =
    #: same compiled program; the affinity policy's warmth signal)
    cache_key: Hashable
    #: modelled service estimate in µs (``None`` until the policy has
    #: observed real batches; policies then fall back to their EWMA)
    cost_us: float | None = None
    #: bytes of device-resident working set a migration would re-stage
    staged_nbytes: int = 0


@dataclass(frozen=True)
class PlacementDecision:
    """Where one frame runs, and whether it migrated to get there."""

    frame: int
    device: int
    #: source device of a host-staged migration (``None`` = no move)
    migrate_from: int | None = None


class PlacementPolicy:
    """Base: assigns each :class:`FrameTicket` to a device index."""

    name = "policy"

    def __init__(self, devices: int):
        if devices < 1:
            raise ReproError("placement needs at least one device")
        self.devices = devices

    def place(self, ticket: FrameTicket) -> PlacementDecision:
        raise NotImplementedError

    def observe(self, device: int, actual_us: float) -> None:
        """Feedback: a placed frame's modelled service time."""

    def new_batch(self) -> None:
        """A batch boundary: queued work has drained; learned state
        (EWMA estimates, cache warmth) persists."""


class RoundRobinPlacement(PlacementPolicy):
    """Frames cycle d0, d1, ..., dK-1, d0, ... — the oblivious baseline."""

    name = "round-robin"

    def __init__(self, devices: int):
        super().__init__(devices)
        self._next = 0

    def place(self, ticket: FrameTicket) -> PlacementDecision:
        device = self._next
        self._next = (self._next + 1) % self.devices
        return PlacementDecision(frame=ticket.frame, device=device)


class LeastLoadedPlacement(PlacementPolicy):
    """Greedy argmin over queued modelled µs, EWMA-smoothed estimates.

    Each placement charges the chosen device the ticket's cost estimate
    (its ``cost_us`` when known, else the EWMA of observed service
    times); :meth:`observe` refines the EWMA as real batches finish.
    Ties break on the lowest device index, so a uniform stream with a
    uniform estimate degenerates to round-robin — the right baseline.
    """

    name = "least-loaded"

    def __init__(self, devices: int, alpha: float = EWMA_ALPHA):
        super().__init__(devices)
        if not 0.0 < alpha <= 1.0:
            raise ReproError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.queued_us = [0.0] * devices
        self._ewma_us: float | None = None

    def estimate_us(self, ticket: FrameTicket) -> float:
        if ticket.cost_us is not None:
            return ticket.cost_us
        return self._ewma_us if self._ewma_us is not None else 1.0

    def argmin(self) -> int:
        return min(range(self.devices), key=lambda k: (self.queued_us[k], k))

    def place(self, ticket: FrameTicket) -> PlacementDecision:
        device = self.argmin()
        self.queued_us[device] += self.estimate_us(ticket)
        return PlacementDecision(frame=ticket.frame, device=device)

    def observe(self, device: int, actual_us: float) -> None:
        if self._ewma_us is None:
            self._ewma_us = actual_us
        else:
            self._ewma_us += self.alpha * (actual_us - self._ewma_us)

    def new_batch(self) -> None:
        self.queued_us = [0.0] * self.devices


class CacheAffinityPlacement(PlacementPolicy):
    """Stick frames to devices that are warm for their compile-cache key.

    A device is *warm* for a key once a frame with that key ran there
    (compiled program in the device cache, working set recently
    resident).  Placement picks the least-loaded warm device; a frame
    expands to a cold device only when the warm side is overloaded —
    warm load exceeding the coldest device by ``spread_factor`` service
    estimates — **and** the key's miss budget allows it.

    The miss budget is what makes the policy's cache behaviour provable:
    a key may be warmed on at most as many devices as round-robin would
    have hit with the same stream prefix (the set of ``position mod K``
    slots its occurrences landed on).  Cold placements are the only
    source of compile misses, so for *any* stream the policy's miss
    count is bounded by round-robin's, key by key — the property the
    hypothesis suite checks.

    With ``migrate=True`` an expansion also re-stages the key's working
    set from the busiest warm device through host memory (D2H + H2D,
    priced by the PCIe model and materialised as schedule nodes); the
    compile itself still happens on the new device, as device code is
    per-context.
    """

    name = "cache-affinity"

    def __init__(
        self,
        devices: int,
        alpha: float = EWMA_ALPHA,
        spread_factor: float = 1.0,
        migrate: bool = False,
    ):
        super().__init__(devices)
        if spread_factor < 0:
            raise ReproError("spread_factor must be >= 0")
        self.spread_factor = spread_factor
        self.migrate = migrate
        self._load = LeastLoadedPlacement(devices, alpha=alpha)
        #: key -> device indices warm for it
        self._warm: dict[Hashable, set[int]] = {}
        #: key -> round-robin slots its occurrences have hit (miss budget)
        self._rr_slots: dict[Hashable, set[int]] = {}
        self._position = 0
        self.expansions = 0
        self.migrations = 0

    def _argmin(self, candidates) -> int:
        return min(candidates, key=lambda k: (self._load.queued_us[k], k))

    def place(self, ticket: FrameTicket) -> PlacementDecision:
        key = ticket.cache_key
        slots = self._rr_slots.setdefault(key, set())
        slots.add(self._position % self.devices)
        self._position += 1

        warm = self._warm.setdefault(key, set())
        est = self._load.estimate_us(ticket)
        migrate_from: int | None = None
        if not warm:
            # first sighting: the one unavoidable cold start
            device = self._load.argmin()
            warm.add(device)
        else:
            device = self._argmin(warm)
            cold = [k for k in range(self.devices) if k not in warm]
            if cold and len(warm) < len(slots):
                coldest = self._argmin(cold)
                overloaded = (
                    self._load.queued_us[device]
                    > self._load.queued_us[coldest] + self.spread_factor * est
                )
                if overloaded:
                    # busiest warm device donates the working set
                    source = max(
                        warm, key=lambda k: (self._load.queued_us[k], -k)
                    )
                    device = coldest
                    warm.add(device)
                    self.expansions += 1
                    if self.migrate:
                        migrate_from = source
                        self.migrations += 1
        self._load.queued_us[device] += est
        return PlacementDecision(
            frame=ticket.frame, device=device, migrate_from=migrate_from
        )

    def observe(self, device: int, actual_us: float) -> None:
        self._load.observe(device, actual_us)

    def new_batch(self) -> None:
        self._load.new_batch()


_POLICIES = {
    p.name: p
    for p in (RoundRobinPlacement, LeastLoadedPlacement, CacheAffinityPlacement)
}


def make_placement(
    policy: str | PlacementPolicy, devices: int
) -> PlacementPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, PlacementPolicy):
        if policy.devices != devices:
            raise ReproError(
                f"placement {policy.name!r} was built for {policy.devices} "
                f"device(s), topology has {devices}"
            )
        return policy
    cls = _POLICIES.get(policy)
    if cls is None:
        raise ReproError(
            f"unknown placement policy {policy!r} "
            f"(choose from {sorted(_POLICIES)})"
        )
    return cls(devices)
