"""CompileCache: memoised compilation for both routes.

Every frame of the paper's 300-frame experiments runs the *same* two
compiled programs, yet the seed reproduction recompiled per use.  The
cache keys each route on everything that determines its output:

* **SaC**: the source text, the entry function and every field of
  :class:`~repro.sac.backend.CompileOptions` (target, optimisation flags,
  wrap splitting, lint, transfer placement, the ``repro.opt``
  configuration) — a changed flag is a changed key, so ablations never
  see stale programs;
* **ArrayOL/Gaspard2**: the application model, the MARTE allocation and
  the transformation-chain configuration (pass names + lint + transfer
  placement + the ``repro.opt`` configuration).

Keys are content digests, so two textually identical sources share an
entry regardless of identity.  Hit/miss/invalidation counts are kept in
:class:`CacheStats` — the ``repro pipeline`` report shows them, and the
acceptance gate requires >= frames-1 hits per route over a video run.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.obs.span import current_tracer

__all__ = [
    "CacheStats",
    "CompileCache",
    "canonical",
    "sac_key",
    "gaspard_key",
    "tune_eval_key",
    "tune_record_key",
]


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def canonical(value) -> str:
    """A content-complete canonical serialisation for cache keys.

    ``repr()`` is *not* content-complete: ``numpy.ndarray.__repr__``
    elides large arrays with ``...``, so two models differing only inside
    a big array repr identically — and would digest to the same cache key,
    serving a stale compiled program.  This serialiser recurses
    dataclasses, containers and ndarrays (shape + dtype + a digest of the
    raw bytes) and names callables by module/qualname (their repr embeds
    a memory address, which is unstable across runs).
    """
    if isinstance(value, np.ndarray):
        payload = hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()
        return (
            f"ndarray(shape={tuple(value.shape)},dtype={value.dtype.str},"
            f"sha256={payload})"
        )
    if isinstance(value, np.generic):
        return f"{type(value).__name__}({value!r})"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    if isinstance(value, tuple):
        return "(" + ",".join(canonical(v) for v in value) + ")"
    if isinstance(value, list):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted(
            (canonical(k), canonical(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "set{" + ",".join(sorted(canonical(v) for v in value)) + "}"
    if value is None or isinstance(value, (bool, int, float, complex, str, bytes)):
        return repr(value)
    if callable(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", type(value).__qualname__)
        return f"callable:{module}.{qualname}"
    return repr(value)


def sac_key(source: str, entry: str, options) -> tuple:
    """Cache key of one SaC compilation (source x entry x options)."""
    return ("sac", entry, _digest(source, canonical(options)))


def gaspard_key(
    model,
    allocation,
    chain_passes=(),
    lint: bool = False,
    opt=None,
    transfers: str = "boundary",
) -> tuple:
    """Cache key of one Gaspard2 chain run (model x allocation x chain).

    ``opt`` and ``transfers`` reconfigure the chain's emitted program, so
    they are part of the content key — toggling the optimiser can never
    serve a stale unoptimised program (the SaC route gets the same
    guarantee through ``canonical(CompileOptions)`` in :func:`sac_key`).
    """
    return (
        "gaspard",
        _digest(
            canonical(model),
            canonical(allocation),
            canonical(tuple(chain_passes)),
            canonical(bool(lint)),
            canonical(opt),
            canonical(transfers),
        ),
    )


def tune_eval_key(app: str, route: str, size, config) -> tuple:
    """Cache key of one tuner cost evaluation.

    ``config`` is a :class:`repro.tune.TuneConfig` dataclass; its
    :func:`canonical` serialisation recurses *every* field — the
    ``OptOptions`` (toggles **and** tail-pass order), transfer placement,
    pipeline depth, paving granularity and fleet placement policy — so two
    configurations differing in any single tuned knob can never collide.
    """
    return ("tune-eval", app, route, _digest(canonical(size), canonical(config)))


def tune_record_key(app: str, route: str, size) -> tuple:
    """Cache key of the winning tuning record for one (app, route, size)."""
    return ("tune-record", app, route, _digest(canonical(size)))


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of a :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.invalidations)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            invalidations=self.invalidations - earlier.invalidations,
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class CompileCache:
    """Memoises compilation results under explicit content keys."""

    def __init__(self) -> None:
        self._entries: dict[tuple, Any] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get_or_compile(self, key: tuple, builder: Callable[[], Any]) -> Any:
        """Return the cached artefact for ``key``, building it on miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            with current_tracer().span(
                f"compile:{key[0]}", category="compile", cache="miss"
            ):
                value = self._entries[key] = builder()
        else:
            self.stats.hits += 1
            current_tracer().event(
                f"compile:{key[0]}", category="compile", cache="hit"
            )
        return value

    def store(self, key: tuple, value: Any) -> Any:
        """Insert (or overwrite) an artefact under an explicit key.

        The tuner's write path: cost evaluations and winning tuning
        records are deposited here so later searches and AOT consumers
        can :meth:`peek` them without recomputing.
        """
        self._entries[key] = value
        return value

    def peek(self, key: tuple, default: Any = None) -> Any:
        """Return the artefact under ``key`` without building on miss.

        Counts as a lookup (hit or miss) in :attr:`stats`.
        """
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return default

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry; returns whether it existed."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> int:
        """Drop every entry; returns how many were invalidated."""
        n = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += n
        return n

    # -- route-specific conveniences ----------------------------------------

    def compile_sac(self, source: str, entry: str, options=None):
        """Parse + compile a SaC source through the cache.

        Returns the :class:`~repro.sac.backend.CompiledFunction`; CUDA
        programs are validated once on miss.
        """
        from repro.sac.backend import CompileOptions, compile_function
        from repro.sac.parser import parse

        options = CompileOptions() if options is None else options

        def build():
            cf = compile_function(parse(source), entry, options)
            if options.target == "cuda":
                from repro.ir.validate import validate_program

                validate_program(cf.program)
            return cf

        return self.get_or_compile(sac_key(source, entry, options), build)

    def compile_gaspard(
        self, model, allocation, lint: bool = False, opt=None,
        transfers: str = "boundary",
    ):
        """Run the Gaspard2 chain through the cache.

        Returns ``(ctx, chain)`` — the transformed
        :class:`~repro.arrayol.transform.GaspardContext` and the chain that
        produced it (for its trace).
        """
        from repro.arrayol.transform import GaspardContext, standard_chain
        from repro.ir.validate import validate_program

        chain_probe = standard_chain(lint=lint, opt=opt, transfers=transfers)
        key = gaspard_key(
            model, allocation, (p.name for p in chain_probe.passes), lint,
            opt=opt, transfers=transfers,
        )

        def build():
            ctx = GaspardContext(model=model, allocation=allocation)
            ctx = chain_probe.run(ctx)
            validate_program(ctx.program)
            return (ctx, chain_probe)

        return self.get_or_compile(key, build)
