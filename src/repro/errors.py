"""Exception hierarchy for the repro library.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library failures without also swallowing programming errors.  Frontend
errors carry source locations; model errors carry the offending model element
names.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class of every error raised by the repro library."""


class TilerError(ReproError):
    """Invalid tiler specification or tiler application."""


class IRError(ReproError):
    """Malformed kernel IR or device program."""


class OptError(ReproError):
    """Optimiser failure: a pass produced an invalid or hazardous program."""


class DeviceError(ReproError):
    """Simulated-device failures: OOM, bad handles, invalid launches."""


class AllocationError(DeviceError):
    """Device memory exhausted or double free."""


@dataclass(frozen=True)
class SourceLocation:
    """A position in a SaC source file (1-based line/column)."""

    line: int
    column: int
    filename: str = "<string>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class SacError(ReproError):
    """Base class for SaC frontend errors, optionally with a location."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class SacSyntaxError(SacError):
    """Lexer or parser rejection."""


class SacTypeError(SacError):
    """Shape/type inference failure."""


class SacSemanticError(SacError):
    """Violation of SaC static semantics (e.g. single assignment)."""


class SacRuntimeError(SacError):
    """Interpreter failure (bad index, shape mismatch at runtime)."""


class OptimisationError(ReproError):
    """An optimisation pass produced or detected an inconsistent program."""


class BackendError(ReproError):
    """Code generation failure (CUDA or OpenCL backend)."""


class ArrayOLError(ReproError):
    """Base class for ArrayOL model errors."""

    def __init__(self, message: str, element: str | None = None):
        self.element = element
        if element is not None:
            message = f"{element}: {message}"
        super().__init__(message)


class ModelValidationError(ArrayOLError):
    """The ArrayOL model violates a metamodel or GILR constraint."""


class SchedulingError(ArrayOLError):
    """No valid schedule exists (cyclic dependences)."""


class TransformError(ArrayOLError):
    """A model transformation pass failed."""
