"""Regeneration of the paper's tables and figures as text artefacts."""

from repro.report.figures import bar, render_figure9, render_figure12
from repro.report.gantt import render_gantt
from repro.report.format import format_pct, format_seconds, format_us, render_grid
from repro.report.spans import render_span_tree
from repro.report.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    compare_to_paper,
    render_comparison,
    render_operation_table,
)

__all__ = [
    "render_grid", "format_us", "format_seconds", "format_pct",
    "render_operation_table", "compare_to_paper", "render_comparison",
    "PAPER_TABLE1", "PAPER_TABLE2",
    "render_figure9", "render_figure12", "bar", "render_gantt",
    "render_span_tree",
]
