"""ASCII renderings of the paper's Figures 9 and 12 (grouped bar charts)."""

from __future__ import annotations

from repro.apps.downscaler.runner import Figure9Row, Figure12Series

__all__ = ["render_figure9", "render_figure12", "bar"]

_WIDTH = 48


def bar(value: float, maximum: float, width: int = _WIDTH) -> str:
    if maximum <= 0:
        return ""
    n = round(width * value / maximum)
    return "#" * max(0, min(width, n))


def render_figure9(rows: list[Figure9Row]) -> str:
    """Figure 9: execution time of the horizontal and vertical filters."""
    peak = max(max(r.hfilter_s, r.vfilter_s) for r in rows)
    lines = [
        "Execution Time of Horizontal and Vertical Filters (300 iterations)",
        "",
    ]
    for r in rows:
        lines.append(f"{r.configuration}")
        lines.append(
            f"  Horizontal | {bar(r.hfilter_s, peak)} {r.hfilter_s:6.2f}s"
        )
        lines.append(
            f"  Vertical   | {bar(r.vfilter_s, peak)} {r.vfilter_s:6.2f}s"
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_figure12(series: Figure12Series) -> str:
    """Figure 12: per-operation comparison between SaC and Gaspard2."""
    peak = max(max(series.sac_s), max(series.gaspard_s))
    lines = ["Kernel Execution and Data Transfer Time (300 frames)", ""]
    for op, sac, gaspard in zip(series.operations, series.sac_s, series.gaspard_s):
        lines.append(op)
        lines.append(f"  SAC      | {bar(sac, peak)} {sac:6.3f}s")
        lines.append(f"  Gaspard2 | {bar(gaspard, peak)} {gaspard:6.3f}s")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
