"""Low-level text formatting shared by the table and figure renderers."""

from __future__ import annotations

__all__ = ["render_grid", "format_us", "format_seconds", "format_pct"]


def format_us(us: float) -> str:
    return f"{us:,.0f}".replace(",", " ")


def format_seconds(us: float) -> str:
    return f"{us / 1e6:.2f}sec"


def format_pct(pct: float) -> str:
    return f"{pct:.2f}"


def render_grid(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned text table with a header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells, pad=" "):
        return " | ".join(c.ljust(w, pad) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(line(row))
    return "\n".join(out)
