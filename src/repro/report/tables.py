"""Rendering of the paper's tables (I and II) with paper-vs-measured deltas."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.downscaler.runner import OperationTable
from repro.report.format import format_pct, format_seconds, format_us, render_grid

__all__ = ["PAPER_TABLE1", "PAPER_TABLE2", "render_operation_table", "compare_to_paper"]

#: Published rows: prefix -> (calls, GPU time us, GPU time %)
PAPER_TABLE1 = {
    "H. Filter": (300, 844185, 29.51),
    "V. Filter": (300, 424223, 14.83),
    "memcpyHtoDasync": (900, 1391670, 48.74),
    "memcpyDtoHasync": (900, 197057, 6.89),
    "__total_us__": 2.86e6,
}

PAPER_TABLE2 = {
    "H. Filter": (300, 1015137, 29.60),
    "V. Filter": (300, 762270, 22.22),
    "memcpyHtoDasync": (900, 1454400, 42.40),
    "memcpyDtoHasync": (900, 198000, 5.77),
    "__total_us__": 3.43e6,
}


def render_operation_table(table: OperationTable) -> str:
    """The Table I/II layout: Operation | #calls | GPU time(us) | GPU time (%)."""
    rows = [
        [r.operation, str(r.calls), format_us(r.gpu_time_us), format_pct(r.gpu_time_pct)]
        for r in table.rows
    ]
    rows.append(["Total", "-", format_seconds(table.total_us), "100.00"])
    return render_grid(
        ["Operation", "#calls", "GPU time(usec)", "GPU time (%)"], rows, table.title
    )


@dataclass(frozen=True)
class RowComparison:
    operation: str
    measured_us: float
    paper_us: float

    @property
    def delta_pct(self) -> float:
        return 100.0 * (self.measured_us - self.paper_us) / self.paper_us


def compare_to_paper(
    table: OperationTable, paper: dict, frames: int = 300
) -> list[RowComparison]:
    """Per-row measured-vs-paper comparison (EXPERIMENTS.md raw material).

    Published values are for 300 frames; ``frames`` scales them so shorter
    runs compare like for like.
    """
    scale = frames / 300.0
    out = []
    for r in table.rows:
        for prefix, (calls, us, pct) in paper.items():
            if prefix.startswith("__"):
                continue
            if r.operation.startswith(prefix.split(" (")[0]):
                out.append(RowComparison(r.operation, r.gpu_time_us, us * scale))
                break
    out.append(
        RowComparison("Total", table.total_us, paper["__total_us__"] * scale)
    )
    return out


def render_comparison(table: OperationTable, paper: dict, frames: int = 300) -> str:
    rows = [
        [c.operation, format_us(c.measured_us), format_us(c.paper_us),
         f"{c.delta_pct:+.1f}%"]
        for c in compare_to_paper(table, paper, frames)
    ]
    title = table.title + (f"  [paper values scaled to {frames} frames]" if frames != 300 else "")
    return render_grid(
        ["Operation", "measured (us)", "paper (us)", "delta"], rows, title
    )
