"""Text rendering of tracer span trees (``repro trace`` terminal output)."""

from __future__ import annotations

from repro.obs.span import Span, Tracer

__all__ = ["render_span_tree"]


def _attrs(span: Span) -> str:
    if not span.attrs:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
    return f"  {inner}"


def render_span_tree(tracer: Tracer, min_us: float = 0.0) -> str:
    """An indented tree of the tracer's spans with durations.

    ``min_us`` hides spans shorter than the threshold (their subtrees
    included) so large traces stay readable.
    """
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        if span.duration_us < min_us:
            return
        label = "  " * depth + span.name
        lines.append(
            f"{label:<44s} {span.duration_us:12.1f} us  "
            f"[{span.category}]{_attrs(span)}"
        )
        for child in tracer.children(span):
            walk(child, depth + 1)

    for root in tracer.roots():
        walk(root, 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)
