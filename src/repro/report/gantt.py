"""ASCII Gantt rendering of stream-overlap schedules."""

from __future__ import annotations

from repro.gpu.stream import OverlapResult

__all__ = ["render_gantt"]

_ENGINES = ("h2d", "compute", "d2h", "host")


def render_gantt(result: OverlapResult, width: int = 72, engines=None) -> str:
    """Render the schedule as one row per engine.

    Each engine's busy intervals are drawn with ``#`` over a time axis of
    ``width`` characters; idle time is ``.``.
    """
    engines = tuple(engines or _ENGINES)
    span = result.overlapped_us
    if span <= 0:
        return "(empty schedule)"

    from math import ceil, floor

    def col_start(t: float) -> int:
        return min(width - 1, floor(width * t / span))

    def col_end(t: float) -> int:
        return min(width, ceil(width * t / span))

    lines = [
        f"stream schedule: serial {result.serial_us:.0f} us -> "
        f"pipelined {result.overlapped_us:.0f} us "
        f"({result.speedup:.2f}x)",
        "",
    ]
    for engine in engines:
        ops = [s for s in result.schedule if s.engine == engine]
        if not ops:
            continue
        row = ["."] * width
        for s in ops:
            a, b = col_start(s.start_us), col_end(s.end_us)
            for i in range(a, max(a + 1, b)):
                row[i] = "#"
        busy = result.engine_busy_us(engine)
        lines.append(
            f"{engine:>8} |{''.join(row)}| {busy:9.0f} us busy"
        )
    lines.append(f"{'':>8}  0{'us'.rjust(width - 1)}")
    return "\n".join(lines)
