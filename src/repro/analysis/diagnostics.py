"""Structured diagnostics: what analyzers produce instead of exceptions.

The fail-fast validators (:mod:`repro.ir.validate`, :mod:`repro.arrayol.validate`)
raise on the first *hard* error.  The analyzers in :mod:`repro.analysis`
instead collect :class:`Diagnostic` records — soft defects the paper reasons
about quantitatively (redundant transfers, unordered overlapping launches,
uncoalesced accesses) next to provable bugs (out-of-bounds indices, races) —
so callers can rank, render, suppress and gate on them.

Every diagnostic carries a **stable code** (``RACE001``, ``XFER002``, …)
listed in :data:`CODES`; codes never change meaning between releases, so
suppression files stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "SEVERITIES",
    "CODES",
    "EXPLAIN",
    "Diagnostic",
    "max_severity",
    "has_errors",
    "count_by_severity",
    "dedupe_diagnostics",
]

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")

#: The stable diagnostic code table (code -> one-line meaning).
CODES = {
    "RACE001": "write-write conflict between unordered device operations",
    "RACE002": "read-write conflict between unordered device operations",
    "XFER001": "redundant host-to-device transfer of already-resident data",
    "XFER002": "device-to-host transfer whose result is never consumed",
    "XFER003": "device allocation never reaches a kernel (pure PCIe round trip)",
    "BOUNDS001": "kernel read index provably or possibly out of bounds",
    "BOUNDS002": "kernel store index provably or possibly out of bounds",
    "BOUNDS003": "kernel index not statically analysable (data-dependent)",
    "COALESCE001": "non-unit adjacent-thread stride (uncoalesced warp access)",
    "SAC001": "binding is never used",
    "SAC002": "binding shadows an existing binding",
    "SAC003": "WITH-loop generators overlap (single assignment at risk)",
    "TILER001": "output tiler writes array elements more than once",
    "TILER002": "tiler leaves array elements unaddressed (coverage gap)",
    "MEM001": "device buffer read before any element was written (use-before-init)",
    "MEM002": "read of a stale host/device copy (counterpart changed since)",
    "MEM003": "operation touches a device buffer after FreeDevice (use-after-free)",
    "MEM004": "FreeDevice of an already-freed or never-allocated buffer (double-free)",
    "MEM005": "device buffer still allocated when the program ends (leak-at-exit)",
    "REGION001": "access region not statically analysable (whole-buffer fallback)",
}

#: Long-form documentation per code, printed by ``repro lint --explain``.
EXPLAIN = {
    "RACE001": """\
Two unordered device operations both WRITE the same resource.  Under the
asynchronous stream model (three FIFO engines, kernels waiting only on the
last writer of each buffer) no happens-before path connects the pair, so
the final contents depend on which engine wins.  With region analysis on,
the pair is only reported when the two write regions may overlap.""",
    "RACE002": """\
An unordered READ/WRITE pair on the same resource: one operation reads
data a concurrent operation may be rewriting (e.g. a kernel still reading
a buffer while the next frame's async upload overwrites it).  Region
analysis suppresses the pair when the read and write regions are provably
disjoint strided boxes.""",
    "XFER001": """\
A host-to-device transfer re-uploads data that is already resident: the
device buffer holds an identical copy of the same host array generation.
The transfer is a pure PCIe cost — the paper attributes ~50 % of runtime
to exactly this traffic.  Removed by the transfer-elimination pass.""",
    "XFER002": """\
A device-to-host download whose result no host step, upload, or program
output ever consumes.  Dead PCIe traffic; removed by dead code
elimination.""",
    "XFER003": """\
A device buffer is allocated (and possibly transferred to/from) but never
bound to any kernel launch: the round trip does no device work at all.""",
    "BOUNDS001": """\
A kernel READ subscript can exceed the bounds of the array parameter for
some point of the launch space (provably, or possibly when the analysis
can only bound the index range).""",
    "BOUNDS002": """\
A kernel STORE subscript can exceed the bounds of the array parameter —
an out-of-bounds write, undefined behaviour on a real device.""",
    "BOUNDS003": """\
A kernel subscript is data-dependent (e.g. indexed by another array's
value), so static bounds checking is impossible; the kernel needs a
runtime guard instead.""",
    "COALESCE001": """\
Adjacent threads of the innermost launch dimension access memory with a
non-unit stride, so the warp's loads cannot coalesce into one memory
transaction.  This is a throughput warning, not a correctness defect.""",
    "SAC001": "A SaC let-binding is never used by any later expression.",
    "SAC002": "A SaC let-binding shadows an earlier binding of the same name.",
    "SAC003": """\
Two generators of one WITH-loop address overlapping index ranges, so the
single-assignment property of the WITH-loop is at risk.""",
    "TILER001": """\
An output tiler addresses some array element from more than one
(repetition, pattern) point — concurrent pattern instances would write
the same element (ArrayOL requires exact coverage on outputs).""",
    "TILER002": """\
A tiler leaves array elements unaddressed: the tiling is not a cover, so
some output elements would never be produced.""",
    "MEM001": """\
A device buffer is read (by a kernel or a download) in the
allocated-but-uninitialised typestate: no upload or kernel write has
touched it since AllocDevice.  Device allocations contain garbage on real
hardware (cudaMalloc does not zero).  Reported as an error when nothing
was ever written, and as a warning when a full download cannot be proven
covered by the writes so far (region ``must_cover`` check).""",
    "MEM002": """\
A stale-copy read.  Either (a) a host step consumes a host array whose
content came from a download, but the source device buffer has been
rewritten since — the host sees an outdated snapshot; or (b) a kernel or
download reads a device buffer whose content came from an upload, but
the source host array has been rewritten since — the device copy no
longer reflects the host data.  Insert a re-download/re-upload, or drop
the stale consumer.""",
    "MEM003": """\
An operation (transfer, launch binding, …) touches a device buffer after
its FreeDevice: use-after-free.  ``validate_program`` rejects such
programs outright; the lifetime pass reports the same defect as a
diagnostic so unvalidated programs can be linted.""",
    "MEM004": """\
FreeDevice on a buffer that is already freed (double-free) or was never
allocated.  On real drivers this corrupts the allocator state.""",
    "MEM005": """\
A device buffer is still allocated when the program ends.  For a single
run this is a leak; under the frame pipeline it compounds per frame.
Note pooled programs intentionally retain slots — the pass only flags
buffers with no FreeDevice at all.""",
    "REGION001": """\
The access-region analysis could not express a kernel's subscript as a
strided affine box (data-dependent index, non-affine arithmetic), so it
assumed the whole buffer.  The program is still analysed soundly, but
the optimiser and scheduler lose region-level independence for this
access — the precision the paper's abstractions are meant to keep.""",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer.

    Attributes
    ----------
    code:
        Stable identifier from :data:`CODES`.
    severity:
        ``"info"``, ``"warning"`` or ``"error"`` — errors gate ``repro lint``.
    message:
        Human-readable description of the defect.
    location:
        Free-form position: ``"program 'x': ops[4] (launch 'k')"``, a SaC
        source position, a kernel or tiler name.
    hint:
        Suggested fix, when the analyzer has one.
    analyzer:
        Name of the registered pass that produced the finding.
    wasted_us:
        Modelled microseconds the defect wastes per run (transfer lints tie
        findings to the paper's ~50 % transfer-share observation).
    fixable_by:
        Machine-readable name of the :mod:`repro.opt` pass that removes
        this defect (``"transfer-elimination"``, ``"dce"``, …), empty when
        no pass fixes it automatically.
    """

    code: str
    severity: str
    message: str
    location: str = ""
    hint: str = ""
    analyzer: str = field(default="", compare=False)
    wasted_us: float | None = field(default=None, compare=False)
    fixable_by: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    @property
    def rank(self) -> int:
        """Numeric severity (higher is worse) — used for sorting."""
        return SEVERITIES.index(self.severity)

    def with_analyzer(self, name: str) -> "Diagnostic":
        return replace(self, analyzer=name)

    def as_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.analyzer:
            out["analyzer"] = self.analyzer
        if self.wasted_us is not None:
            out["wasted_us"] = round(self.wasted_us, 3)
        if self.fixable_by:
            out["fixable_by"] = self.fixable_by
        return out


def max_severity(diags) -> str | None:
    """The worst severity present, or ``None`` for an empty list."""
    worst = None
    for d in diags:
        if worst is None or d.rank > SEVERITIES.index(worst):
            worst = d.severity
    return worst


def has_errors(diags) -> bool:
    return any(d.is_error for d in diags)


def count_by_severity(diags) -> dict[str, int]:
    counts = {s: 0 for s in SEVERITIES}
    for d in diags:
        counts[d.severity] += 1
    return counts


def dedupe_diagnostics(diags) -> list[Diagnostic]:
    """Drop findings identical in everything the user sees.

    Two passes can legitimately derive the same defect (e.g. the hazard
    and lifetime passes both walking op pairs); ``analyzer`` is excluded
    from dataclass comparison, so such findings compare equal yet used to
    render twice.  The first occurrence (and its analyzer tag) wins.
    """
    seen: set[tuple] = set()
    out: list[Diagnostic] = []
    for d in diags:
        key = (d.code, d.severity, d.message, d.location)
        if key in seen:
            continue
        seen.add(key)
        out.append(d)
    return out
