"""Structured diagnostics: what analyzers produce instead of exceptions.

The fail-fast validators (:mod:`repro.ir.validate`, :mod:`repro.arrayol.validate`)
raise on the first *hard* error.  The analyzers in :mod:`repro.analysis`
instead collect :class:`Diagnostic` records — soft defects the paper reasons
about quantitatively (redundant transfers, unordered overlapping launches,
uncoalesced accesses) next to provable bugs (out-of-bounds indices, races) —
so callers can rank, render, suppress and gate on them.

Every diagnostic carries a **stable code** (``RACE001``, ``XFER002``, …)
listed in :data:`CODES`; codes never change meaning between releases, so
suppression files stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "SEVERITIES",
    "CODES",
    "Diagnostic",
    "max_severity",
    "has_errors",
    "count_by_severity",
]

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")

#: The stable diagnostic code table (code -> one-line meaning).
CODES = {
    "RACE001": "write-write conflict between unordered device operations",
    "RACE002": "read-write conflict between unordered device operations",
    "XFER001": "redundant host-to-device transfer of already-resident data",
    "XFER002": "device-to-host transfer whose result is never consumed",
    "XFER003": "device allocation never reaches a kernel (pure PCIe round trip)",
    "BOUNDS001": "kernel read index provably or possibly out of bounds",
    "BOUNDS002": "kernel store index provably or possibly out of bounds",
    "BOUNDS003": "kernel index not statically analysable (data-dependent)",
    "COALESCE001": "non-unit adjacent-thread stride (uncoalesced warp access)",
    "SAC001": "binding is never used",
    "SAC002": "binding shadows an existing binding",
    "SAC003": "WITH-loop generators overlap (single assignment at risk)",
    "TILER001": "output tiler writes array elements more than once",
    "TILER002": "tiler leaves array elements unaddressed (coverage gap)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer.

    Attributes
    ----------
    code:
        Stable identifier from :data:`CODES`.
    severity:
        ``"info"``, ``"warning"`` or ``"error"`` — errors gate ``repro lint``.
    message:
        Human-readable description of the defect.
    location:
        Free-form position: ``"program 'x': ops[4] (launch 'k')"``, a SaC
        source position, a kernel or tiler name.
    hint:
        Suggested fix, when the analyzer has one.
    analyzer:
        Name of the registered pass that produced the finding.
    wasted_us:
        Modelled microseconds the defect wastes per run (transfer lints tie
        findings to the paper's ~50 % transfer-share observation).
    fixable_by:
        Machine-readable name of the :mod:`repro.opt` pass that removes
        this defect (``"transfer-elimination"``, ``"dce"``, …), empty when
        no pass fixes it automatically.
    """

    code: str
    severity: str
    message: str
    location: str = ""
    hint: str = ""
    analyzer: str = field(default="", compare=False)
    wasted_us: float | None = field(default=None, compare=False)
    fixable_by: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    @property
    def rank(self) -> int:
        """Numeric severity (higher is worse) — used for sorting."""
        return SEVERITIES.index(self.severity)

    def with_analyzer(self, name: str) -> "Diagnostic":
        return replace(self, analyzer=name)

    def as_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.analyzer:
            out["analyzer"] = self.analyzer
        if self.wasted_us is not None:
            out["wasted_us"] = round(self.wasted_us, 3)
        if self.fixable_by:
            out["fixable_by"] = self.fixable_by
        return out


def max_severity(diags) -> str | None:
    """The worst severity present, or ``None`` for an empty list."""
    worst = None
    for d in diags:
        if worst is None or d.rank > SEVERITIES.index(worst):
            worst = d.severity
    return worst


def has_errors(diags) -> bool:
    return any(d.is_error for d in diags)


def count_by_severity(diags) -> dict[str, int]:
    counts = {s: 0 for s in SEVERITIES}
    for d in diags:
        counts[d.severity] += 1
    return counts
