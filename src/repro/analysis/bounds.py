"""Interval-analysis bounds checker for kernel array accesses.

Proves every ``Read``/``Store`` index of a kernel in-bounds against the
declared array shapes, or emits a diagnostic with the offending interval.

Two phases per kernel:

1. **Interval abstraction** — every scalar expression is mapped to an
   integer :class:`~repro.analysis.intervals.Interval`; ``ThreadIdx(d)``
   ranges over the actual first/last index values of the launch space
   (honouring ``step``), C division/modulo use the truncating semantics of
   the evaluator.  This proves the affine and modulo-wrapped indices both
   backends emit (``(o + F·i) mod shape``, the wrap-split bulk kernels).
2. **Numeric fallback** — accesses the interval domain cannot prove (lost
   correlations like ``x/6 - x%6``) are evaluated *exactly* over the whole
   index space with NumPy (the idiom of :mod:`repro.sac.backend.split`),
   unless the index is data-dependent (contains a ``Read``), in which case
   a *cannot-prove* diagnostic is emitted instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.intervals import TOP, Interval
from repro.ir.expr import (
    BinOp,
    Const,
    Expr,
    LocalRef,
    ParamRef,
    Read,
    Select,
    ThreadIdx,
    UnOp,
    c_div,
    c_mod,
)
from repro.ir.kernel import Kernel
from repro.ir.stmt import Assign, For, Store

__all__ = ["AccessCheck", "check_kernel_bounds"]

#: grids larger than this skip the exact numeric fallback
_NUMERIC_LIMIT = 1 << 26


@dataclass(frozen=True)
class AccessCheck:
    """Result of checking one index component of one access site."""

    kind: str  # "read" | "store"
    array: str
    dim: int
    extent: int
    proven: bool
    interval: Interval | None  # abstract range (None when unanalysable)
    exact: tuple[int, int] | None  # numeric min/max (None when data-dependent)

    @property
    def out_of_bounds(self) -> bool:
        return self.exact is not None and (
            self.exact[0] < 0 or self.exact[1] >= self.extent
        )


class _Unanalysable(Exception):
    """The expression depends on array contents (or an unknown construct)."""


# -- interval evaluation -----------------------------------------------------


def _interval_of(e: Expr, env: dict[str, Interval]) -> Interval:
    if isinstance(e, Const):
        return Interval.point(e.value)
    if isinstance(e, ThreadIdx):
        return env[f"@iv{e.dim}"]
    if isinstance(e, LocalRef):
        return env.get(e.name, TOP)
    if isinstance(e, ParamRef):
        return env.get(f"@param:{e.name}", TOP)
    if isinstance(e, Read):
        return TOP
    if isinstance(e, Select):
        return _interval_of(e.if_true, env).union(_interval_of(e.if_false, env))
    if isinstance(e, UnOp):
        v = _interval_of(e.operand, env)
        if e.op == "-":
            return -v
        if e.op == "abs":
            return v.abs()
        return Interval(0, 1)  # "!": boolean
    if isinstance(e, BinOp):
        lhs = _interval_of(e.lhs, env)
        rhs = _interval_of(e.rhs, env)
        if e.op == "+":
            return lhs + rhs
        if e.op == "-":
            return lhs - rhs
        if e.op == "*":
            return lhs * rhs
        if e.op == "/":
            return lhs.c_div(rhs)
        if e.op == "%":
            return lhs.c_mod(rhs)
        if e.op == "min":
            return lhs.min(rhs)
        if e.op == "max":
            return lhs.max(rhs)
        return Interval(0, 1)  # comparisons / logicals
    return TOP


# -- exact numeric evaluation -------------------------------------------------


def _numeric_of(e: Expr, idx_values, env: dict):
    """Evaluate an index expression over the whole space; poison on Reads."""
    if isinstance(e, Const):
        return np.asarray(e.value)
    if isinstance(e, ThreadIdx):
        return idx_values[e.dim]
    if isinstance(e, LocalRef):
        v = env.get(e.name, None)
        if v is None:
            raise _Unanalysable(e.name)
        return v
    if isinstance(e, ParamRef):
        v = env.get(f"@param:{e.name}", None)
        if v is None:
            raise _Unanalysable(e.name)
        return np.asarray(v)
    if isinstance(e, Read):
        raise _Unanalysable(e.array)
    if isinstance(e, Select):
        cond = _numeric_of(e.cond, idx_values, env)
        return np.where(
            cond,
            _numeric_of(e.if_true, idx_values, env),
            _numeric_of(e.if_false, idx_values, env),
        )
    if isinstance(e, UnOp):
        v = _numeric_of(e.operand, idx_values, env)
        if e.op == "-":
            return -v
        if e.op == "abs":
            return np.abs(v)
        return np.logical_not(v)
    if isinstance(e, BinOp):
        lhs = _numeric_of(e.lhs, idx_values, env)
        rhs = _numeric_of(e.rhs, idx_values, env)
        fns = {
            "+": np.add, "-": np.subtract, "*": np.multiply,
            "/": c_div, "%": c_mod,
            "min": np.minimum, "max": np.maximum,
            "<": np.less, "<=": np.less_equal,
            ">": np.greater, ">=": np.greater_equal,
            "==": np.equal, "!=": np.not_equal,
            "&&": np.logical_and, "||": np.logical_or,
        }
        return fns[e.op](lhs, rhs)
    raise _Unanalysable(type(e).__name__)


# -- the checker ---------------------------------------------------------------


class _BoundsWalk:
    """One traversal of a kernel body under one abstract/numeric domain."""

    def __init__(self, kernel: Kernel, scalars: dict[str, int | float]):
        self.kernel = kernel
        self.shapes = {a.name: a.shape for a in kernel.arrays}
        self.scalars = dict(scalars)
        self.sites: dict[int, AccessCheck] = {}
        self._site_counter = 0

    # interval phase -------------------------------------------------------

    def run_intervals(self) -> None:
        space = self.kernel.space
        env: dict[str, Interval] = {}
        for d in range(space.rank):
            last = space.lower[d] + (space.extent[d] - 1) * space.step[d]
            env[f"@iv{d}"] = Interval(space.lower[d], last)
        for name, value in self.scalars.items():
            env[f"@param:{name}"] = Interval.point(value)
        self._site_counter = 0
        self._walk_intervals(self.kernel.body, env)

    def _walk_intervals(self, stmts, env: dict[str, Interval]) -> None:
        for s in stmts:
            if isinstance(s, Assign):
                self._scan_exprs_intervals([s.value], env)
                env[s.name] = _interval_of(s.value, env)
            elif isinstance(s, For):
                if s.trip_count > 0:
                    env[s.var] = Interval(s.start, s.stop - 1)
                    self._walk_intervals(s.body, env)
            elif isinstance(s, Store):
                self._check_access_intervals("store", s.array, s.index, env)
                self._scan_exprs_intervals(list(s.index) + [s.value], env)

    def _scan_exprs_intervals(self, roots, env) -> None:
        """Check nested Reads appearing anywhere in the given expressions."""
        for root in roots:
            for e in _walk_reads(root):
                self._check_access_intervals("read", e.array, e.index, env)

    def _check_access_intervals(self, kind, array, index, env) -> None:
        shape = self.shapes.get(array)
        if shape is None or len(index) != len(shape):
            return  # validate_kernel's domain
        for d, comp in enumerate(index):
            site = self._site_counter
            self._site_counter += 1
            iv = _interval_of(comp, env)
            proven = Interval(0, shape[d] - 1).contains(iv)
            self.sites[site] = AccessCheck(
                kind=kind,
                array=array,
                dim=d,
                extent=shape[d],
                proven=proven,
                interval=iv if iv.is_bounded else None,
                exact=None,
            )

    # numeric phase --------------------------------------------------------

    def run_numeric(self) -> None:
        space = self.kernel.space
        if space.is_empty() or space.size > _NUMERIC_LIMIT:
            return
        idx_values = space.index_values()
        env: dict = {f"@param:{k}": v for k, v in self.scalars.items()}
        self._site_counter = 0
        self._walk_numeric(self.kernel.body, idx_values, env)

    def _walk_numeric(self, stmts, idx_values, env) -> None:
        for s in stmts:
            if isinstance(s, Assign):
                self._scan_exprs_numeric([s.value], idx_values, env)
                try:
                    env[s.name] = _numeric_of(s.value, idx_values, env)
                except _Unanalysable:
                    env[s.name] = None  # poisoned: depends on memory
            elif isinstance(s, For):
                # the interval phase numbers the body's sites once; replay
                # every iteration over the same site ids so ranges widen
                body_start = self._site_counter
                for v in range(s.start, s.stop):
                    self._site_counter = body_start
                    env[s.var] = np.asarray(v)
                    self._walk_numeric(s.body, idx_values, env)
            elif isinstance(s, Store):
                self._check_access_numeric("store", s.array, s.index, idx_values, env)
                self._scan_exprs_numeric(list(s.index) + [s.value], idx_values, env)

    def _scan_exprs_numeric(self, roots, idx_values, env) -> None:
        for root in roots:
            for e in _walk_reads(root):
                self._check_access_numeric("read", e.array, e.index, idx_values, env)

    def _check_access_numeric(self, kind, array, index, idx_values, env) -> None:
        shape = self.shapes.get(array)
        if shape is None or len(index) != len(shape):
            return
        for comp in index:
            site = self._site_counter
            self._site_counter += 1
            prev = self.sites.get(site)
            if prev is None or prev.proven:
                continue
            try:
                val = np.asarray(_numeric_of(comp, idx_values, env))
            except _Unanalysable:
                continue  # stays data-dependent
            lo, hi = int(val.min()), int(val.max())
            if prev.exact is not None:  # For-loop revisit: widen
                lo, hi = min(lo, prev.exact[0]), max(hi, prev.exact[1])
            self.sites[site] = AccessCheck(
                kind=prev.kind,
                array=prev.array,
                dim=prev.dim,
                extent=prev.extent,
                proven=prev.proven,
                interval=prev.interval,
                exact=(lo, hi),
            )


def _walk_reads(root: Expr):
    from repro.ir.expr import walk

    for e in walk(root):
        if isinstance(e, Read):
            yield e


def check_kernel_bounds(
    kernel: Kernel,
    scalars: dict[str, int | float] | None = None,
    location: str = "",
) -> list[Diagnostic]:
    """Diagnostics for every access of ``kernel`` not provably in-bounds.

    ``scalars`` supplies launch-time scalar argument values (from
    :class:`~repro.ir.program.LaunchKernel`); without them scalar parameters
    are unbounded.
    """
    if kernel.space.is_empty():
        return []
    walkb = _BoundsWalk(kernel, scalars or {})
    walkb.run_intervals()
    if any(not c.proven for c in walkb.sites.values()):
        walkb.run_numeric()

    where = location or f"kernel {kernel.name!r}"
    out: list[Diagnostic] = []
    for check in walkb.sites.values():
        if check.proven:
            continue
        if check.exact is not None and not check.out_of_bounds:
            continue  # numerically proven in-bounds
        valid = f"[0, {check.extent - 1}]"
        code = "BOUNDS001" if check.kind == "read" else "BOUNDS002"
        if check.exact is not None:
            lo, hi = check.exact
            out.append(
                Diagnostic(
                    code=code,
                    severity="error",
                    message=(
                        f"{check.kind} of {check.array!r} dim {check.dim}: index "
                        f"range [{lo}, {hi}] exceeds {valid}"
                    ),
                    location=where,
                    hint="shrink the index space or clamp/wrap the index",
                )
            )
        else:
            shown = str(check.interval) if check.interval is not None else "unbounded"
            out.append(
                Diagnostic(
                    code="BOUNDS003",
                    severity="warning",
                    message=(
                        f"{check.kind} of {check.array!r} dim {check.dim}: cannot "
                        f"prove interval {shown} within {valid} "
                        f"(data-dependent index)"
                    ),
                    location=where,
                    hint="bound the index with min/max or a modulo",
                )
            )
    return out
