"""Transfer lint: the paper's ~50 % transfer share, found statically.

Tables I/II attribute 48.7 % (SaC route) and 42.4 % (Gaspard2 route) of
total runtime to ``host2device``/``device2host`` traffic.  This analyzer
flags the transfer work a compiler could have avoided, and prices each
finding with the calibrated PCIe model from :mod:`repro.gpu.cost` so the
report reads in the same microseconds as the paper's tables:

* **XFER001** — re-uploading a device buffer that is still resident and
  whose host source has not changed since the previous upload;
* **XFER002** — a download whose host result is never consumed (overwritten
  by a later download, or dead at program end);
* **XFER003** — a device allocation never bound to any kernel launch: its
  transfers are a pure PCIe round trip.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.gpu.calibration import GTX480_CALIBRATED
from repro.gpu.cost import CostModel
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
    region_count,
)

__all__ = ["find_transfer_waste"]


def find_transfer_waste(
    program: DeviceProgram, cost: CostModel | None = None
) -> list[Diagnostic]:
    """Redundant/dead transfer diagnostics for ``program``."""
    cost = cost or CostModel(GTX480_CALIBRATED)
    where = f"program {program.name!r}"

    allocs: dict[str, AllocDevice] = {}
    # device buffer -> (host source, host generation) while the copy is fresh
    resident: dict[str, tuple[str, int]] = {}
    host_gen: dict[str, int] = {}
    # host array -> op index of an unconsumed download into it
    pending_d2h: dict[str, int] = {}
    launched: set[str] = set()

    out: list[Diagnostic] = []

    def dead_download(host: str, at: int) -> None:
        op = program.ops[at]
        assert isinstance(op, DeviceToHost)
        nbytes = allocs[op.device].nbytes if op.device in allocs else 0
        out.append(
            Diagnostic(
                code="XFER002",
                severity="warning",
                message=(
                    f"ops[{at}] downloads {op.device!r} into host array "
                    f"{host!r} but the result is never consumed"
                ),
                location=where,
                hint="drop the DeviceToHost or consume the host array",
                wasted_us=cost.d2h_time_us(nbytes) if nbytes else None,
                fixable_by="dce",
            )
        )

    for i, op in enumerate(program.ops):
        if isinstance(op, AllocDevice):
            allocs[op.buffer] = op
            resident.pop(op.buffer, None)
        elif isinstance(op, FreeDevice):
            resident.pop(op.buffer, None)
        elif isinstance(op, HostToDevice):
            if op.host in pending_d2h:  # the upload consumes the host array
                pending_d2h.pop(op.host)
            gen = host_gen.setdefault(op.host, 0)
            if resident.get(op.device) == (op.host, gen):
                if op.device in allocs:
                    alloc = allocs[op.device]
                    if op.region is None:
                        nbytes = alloc.nbytes
                    else:
                        nbytes = region_count(op.region) * np.dtype(
                            alloc.dtype
                        ).itemsize
                else:
                    nbytes = 0
                out.append(
                    Diagnostic(
                        code="XFER001",
                        severity="warning",
                        message=(
                            f"ops[{i}] re-uploads host array {op.host!r} into "
                            f"{op.device!r}, which already holds an identical "
                            f"copy"
                        ),
                        location=where,
                        hint="drop the HostToDevice; the data is resident",
                        wasted_us=cost.h2d_time_us(nbytes) if nbytes else None,
                        fixable_by="transfer-elimination",
                    )
                )
            if op.region is None:
                resident[op.device] = (op.host, gen)
            else:
                # a partial upload moves only a sub-box: afterwards host
                # and device are not known to agree everywhere
                resident.pop(op.device, None)
        elif isinstance(op, DeviceToHost):
            if op.host in pending_d2h and op.region is None:
                # only a whole-array download overwrites the pending one;
                # a partial download keeps the untouched elements
                dead_download(op.host, pending_d2h[op.host])
            pending_d2h[op.host] = i
            host_gen[op.host] = host_gen.get(op.host, 0) + 1
            if op.region is None:
                # after the download, host and device hold identical data —
                # a subsequent re-upload of the pair is a pure PCIe round trip
                resident[op.device] = (op.host, host_gen[op.host])
            else:
                resident.pop(op.device, None)
        elif isinstance(op, LaunchKernel):
            for param, buf in op.array_args:
                launched.add(buf)
                if op.kernel.array(param).intent != "in":
                    resident.pop(buf, None)  # device copy diverges from host
        elif isinstance(op, HostCompute):
            for name in op.reads:
                pending_d2h.pop(name, None)
            for name in op.writes:
                host_gen[name] = host_gen.get(name, 0) + 1
                # invalidate residency of buffers sourced from this host array
                for buf, (src, _) in list(resident.items()):
                    if src == name:
                        resident.pop(buf)

    outputs = set(program.host_outputs)
    for host, at in sorted(pending_d2h.items(), key=lambda kv: kv[1]):
        if host not in outputs:
            dead_download(host, at)

    for buf, alloc in allocs.items():
        if buf in launched:
            continue
        wasted = 0.0
        for op in program.ops:
            if isinstance(op, HostToDevice) and op.device == buf:
                wasted += cost.h2d_time_us(alloc.nbytes)
            elif isinstance(op, DeviceToHost) and op.device == buf:
                wasted += cost.d2h_time_us(alloc.nbytes)
        out.append(
            Diagnostic(
                code="XFER003",
                severity="warning",
                message=(
                    f"device buffer {buf!r} is allocated but never bound to a "
                    f"kernel launch"
                ),
                location=where,
                hint="remove the allocation (and its transfers), or launch on it",
                wasted_us=wasted if wasted else None,
                fixable_by="dce",
            )
        )
    return out
