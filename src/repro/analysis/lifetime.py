"""Buffer-lifetime verification: an abstract interpreter over DeviceProgram.

Walks the op sequence once, tracking a typestate per device buffer —

    unallocated → allocated-uninit → device-valid → (host-/device-stale) → freed

— plus the host↔device copy relationships the transfers establish, and
emits the MEM diagnostics:

* **MEM001** *(error/warning)* — use-before-init: a kernel or download
  reads a buffer no upload or kernel write has touched since its
  allocation (error), or a full download whose element coverage the
  region oracle's ``must_cover`` cannot prove from the writes so far
  (warning).
* **MEM002** *(warning)* — read-of-stale-copy: a host step consumes a
  downloaded array whose source buffer was rewritten since, or a device
  read consumes an uploaded buffer whose source host array was rewritten
  since.
* **MEM003** *(error)* — use-after-free.
* **MEM004** *(error)* — double-free (or free of a never-allocated buffer).
* **MEM005** *(warning)* — leak-at-exit: allocated, never freed.

The interpreter is region-aware: "does this launch actually read?" comes
from the access boxes of the kernel body (a declared ``inout`` parameter
that is only stored to does not count as a read), and download coverage
uses the exact write boxes accumulated since the allocation.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.hazards import _describe
from repro.analysis.regions import Box, RegionOracle, must_cover, transfer_box
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)

__all__ = ["check_lifetimes"]

_DEV = "device buffer"


def check_lifetimes(
    program: DeviceProgram, oracle: RegionOracle | None = None
) -> list[Diagnostic]:
    """All MEM findings of ``program`` (see module docstring)."""
    oracle = oracle or RegionOracle(program)
    where = f"program {program.name!r}"
    out: list[Diagnostic] = []

    def report(code: str, severity: str, message: str, hint: str) -> None:
        out.append(
            Diagnostic(
                code=code, severity=severity, message=message, location=where, hint=hint
            )
        )

    allocs: dict[str, AllocDevice] = {}
    freed: dict[str, int] = {}
    #: exact-able write boxes accumulated since allocation (empty = uninit)
    written: dict[str, list[Box]] = {}
    #: device write generation per buffer (bumped by uploads/kernel writes)
    dev_gen: dict[str, int] = {}
    #: host write generation per array (bumped by host steps and downloads)
    host_gen: dict[str, int] = {}
    #: device copy provenance: buffer -> (host source, host gen at upload)
    uploaded_from: dict[str, tuple[str, int]] = {}
    #: host copy provenance: array -> (device source, dev gen at download)
    downloaded_from: dict[str, tuple[str, int]] = {}

    def check_freed(i: int, buf: str) -> bool:
        at = freed.get(buf)
        if at is None:
            return False
        report(
            "MEM003",
            "error",
            f"{_describe(i, program.ops[i])} touches device buffer {buf!r} "
            f"freed at ops[{at}]",
            "move the FreeDevice after the last use of the buffer",
        )
        return True

    def check_uninit_read(i: int, buf: str, what: str) -> None:
        if buf in allocs and not written.get(buf):
            report(
                "MEM001",
                "error",
                f"{_describe(i, program.ops[i])} {what} device buffer {buf!r} "
                f"before any element was written",
                "upload or launch a writer before the first read",
            )

    def check_device_stale(i: int, buf: str) -> None:
        src = uploaded_from.get(buf)
        if src is not None and host_gen.get(src[0], 0) > src[1]:
            report(
                "MEM002",
                "warning",
                f"{_describe(i, program.ops[i])} reads device buffer {buf!r}, "
                f"a copy of host array {src[0]!r} that was rewritten after "
                f"the upload",
                "re-upload the host array (or drop the stale device read)",
            )

    def record_device_write(buf: str, box: Box | None) -> None:
        dev_gen[buf] = dev_gen.get(buf, 0) + 1
        uploaded_from.pop(buf, None)
        if box is not None and buf in allocs:
            written.setdefault(buf, []).append(box)

    for i, op in enumerate(program.ops):
        if isinstance(op, AllocDevice):
            allocs[op.buffer] = op
            freed.pop(op.buffer, None)
            written[op.buffer] = []
            uploaded_from.pop(op.buffer, None)
            continue

        if isinstance(op, FreeDevice):
            if op.buffer in freed or op.buffer not in allocs:
                flavour = (
                    "already freed" if op.buffer in freed else "never allocated"
                )
                report(
                    "MEM004",
                    "error",
                    f"{_describe(i, op)} frees device buffer {op.buffer!r}, "
                    f"which is {flavour}",
                    "drop the duplicate FreeDevice",
                )
            if op.buffer in allocs:
                freed.setdefault(op.buffer, i)
            continue

        if isinstance(op, HostToDevice):
            if check_freed(i, op.device):
                continue
            box = transfer_box(op.region, oracle.shapes.get(op.device))
            if op.region is not None and box is None:
                continue  # zero-size upload: moves nothing
            record_device_write(op.device, box)
            gen = host_gen.setdefault(op.host, 0)
            shape = oracle.shapes.get(op.device)
            if op.region is None or (
                shape is not None and must_cover((box,), shape)
            ):
                uploaded_from[op.device] = (op.host, gen)
            continue

        if isinstance(op, DeviceToHost):
            if check_freed(i, op.device):
                continue
            if (
                op.region is not None
                and transfer_box(op.region, oracle.shapes.get(op.device)) is None
            ):
                continue  # zero-size download: moves nothing
            check_uninit_read(i, op.device, "downloads")
            check_device_stale(i, op.device)
            if (
                op.region is None
                and op.device in allocs
                and written.get(op.device)
                and not must_cover(written[op.device], allocs[op.device].shape)
            ):
                report(
                    "MEM001",
                    "warning",
                    f"{_describe(i, op)} downloads the whole of device buffer "
                    f"{op.device!r}, but the writes so far do not provably "
                    f"cover every element",
                    "write the full buffer before downloading it, or "
                    "download only the written region",
                )
            host_gen[op.host] = host_gen.get(op.host, 0) + 1
            downloaded_from[op.host] = (op.device, dev_gen.get(op.device, 0))
            continue

        if isinstance(op, LaunchKernel):
            reads, writes = oracle.accesses(i)
            touched = {buf for _, buf in op.array_args}
            for buf in sorted(touched):
                if check_freed(i, buf):
                    continue
                if reads.get((_DEV, buf)):
                    check_uninit_read(i, buf, "reads")
                    check_device_stale(i, buf)
            for (kind, buf), boxes in sorted(writes.items()):
                if buf in freed:
                    continue
                for box in boxes:
                    record_device_write(buf, box)
            continue

        if isinstance(op, HostCompute):
            for name in op.reads:
                src = downloaded_from.get(name)
                if src is not None and dev_gen.get(src[0], 0) > src[1]:
                    report(
                        "MEM002",
                        "warning",
                        f"{_describe(i, op)} reads host array {name!r}, a "
                        f"copy of device buffer {src[0]!r} that was "
                        f"rewritten after the download",
                        "re-download the buffer (or drop the stale host read)",
                    )
            for name in op.writes:
                host_gen[name] = host_gen.get(name, 0) + 1
                downloaded_from.pop(name, None)
                # device copies sourced from this array are now stale;
                # the provenance entry keeps the old generation, so the
                # next device read of such a buffer reports MEM002
            continue

    for buf in sorted(set(allocs) - set(freed)):
        report(
            "MEM005",
            "warning",
            f"device buffer {buf!r} is still allocated when the program ends",
            "free the buffer after its last use "
            "(the sink-frees optimisation pass does this)",
        )
    return out
