"""ArrayOL tiler lint: injectivity and coverage as diagnostics.

:mod:`repro.arrayol.validate` raises ``ModelValidationError`` on the first
output tiler violating single assignment or exactness.  This analyzer walks
the whole task tree and reports *every* finding instead:

* **TILER001** (error) — an output tiler addresses some array element more
  than once, so repetitions of the inner task would write it twice;
* **TILER002** — elements never addressed: an *error* on output tilers
  (the task fails to produce its whole array) and an *info* note on input
  tilers (reading a strict subset of an input is legal, but often means
  the producer computed data nobody consumes).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.arrayol.model import (
    ApplicationModel,
    CompoundTask,
    RepetitiveTask,
    Task,
)
from repro.tilers import Tiler, duplicate_element_count, uncovered_element_count

__all__ = ["lint_tiler", "lint_model"]


def lint_tiler(tiler: Tiler, role: str = "output", location: str = "") -> list[Diagnostic]:
    """Diagnostics for one tiler used as an ``"input"`` or ``"output"``."""
    where = location or f"{role} tiler over array {tiler.array_shape}"
    out: list[Diagnostic] = []
    dups = duplicate_element_count(tiler)
    if role == "output" and dups:
        out.append(
            Diagnostic(
                code="TILER001",
                severity="error",
                message=(
                    f"output tiler addresses {dups} element(s) more than once "
                    f"(single assignment violated)"
                ),
                location=where,
                hint="adjust paving/fitting so repetitions write disjoint tiles",
            )
        )
    missing = uncovered_element_count(tiler)
    if missing:
        out.append(
            Diagnostic(
                code="TILER002",
                severity="error" if role == "output" else "info",
                message=(
                    f"{role} tiler leaves {missing} element(s) unaddressed"
                    + ("" if role == "output" else " (partial read)")
                ),
                location=where,
                hint=(
                    "extend the repetition space or paving to cover the array"
                    if role == "output"
                    else "shrink the producer array if the data is never read"
                ),
            )
        )
    return out


def _lint_task(task: Task, out: list[Diagnostic]) -> None:
    if isinstance(task, RepetitiveTask):
        for conn in task.input_tilers:
            out.extend(
                lint_tiler(
                    conn.tiler,
                    role="input",
                    location=f"task {task.name!r} port {conn.inner_port!r}",
                )
            )
        for conn in task.output_tilers:
            out.extend(
                lint_tiler(
                    conn.tiler,
                    role="output",
                    location=f"task {task.name!r} port {conn.inner_port!r}",
                )
            )
        if task.inner is not None:
            _lint_task(task.inner, out)
    elif isinstance(task, CompoundTask):
        for inst in task.instances:
            _lint_task(inst.task, out)


def lint_model(model: ApplicationModel) -> list[Diagnostic]:
    """All tiler findings over a whole application model."""
    out: list[Diagnostic] = []
    _lint_task(model.top, out)
    return out
