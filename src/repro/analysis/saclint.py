"""SaC frontend lints: unused/shadowed bindings, overlapping generators.

These complement the hard checks in :mod:`repro.sac.semantics` (which raise
on the first violation) with soft findings over a whole
:class:`repro.sac.ast.Program`:

* **SAC001** — a parameter or local binding that is never read;
* **SAC002** — a WITH-loop index variable or generator-local binding that
  shadows an existing binding;
* **SAC003** — two static generators of one WITH-loop whose index sets
  overlap: under SaC's single-assignment semantics the cell value would
  depend on generator order, which the CUDA backend's one-launch-per-
  generator scheme (paper Section VII) turns into a real device race.

Unused WITH-loop index variables are deliberately *not* flagged — constant
fills (``[iv] : 0``) are idiomatic SaC.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.sac import ast
from repro.sac.opt.withinfo import static_frame_shape, static_generator_range

__all__ = ["find_binding_lints", "find_generator_overlaps", "lint_sac_program"]

#: frames with more cells than this use bounding-box reasoning, not masks
_MASK_LIMIT = 4_000_000


def _child_nodes(node: ast.Node):
    for f in dataclasses.fields(node):
        v = getattr(node, f.name)
        if isinstance(v, ast.Node):
            yield v
        elif isinstance(v, tuple):
            for x in v:
                if isinstance(x, ast.Node):
                    yield x


def _walk(node: ast.Node):
    yield node
    for child in _child_nodes(node):
        yield from _walk(child)


# ---------------------------------------------------------------------------
# SAC001: unused bindings
# ---------------------------------------------------------------------------


def _used_names(fun: ast.FunDef) -> set[str]:
    used: set[str] = set()
    for node in _walk(fun):
        if isinstance(node, ast.Var):
            used.add(node.name)
        elif isinstance(node, ast.IndexedAssign):
            used.add(node.name)  # reads the base array
    return used


def _unused_bindings(fun: ast.FunDef) -> list[Diagnostic]:
    used = _used_names(fun)
    where = f"function {fun.name!r}"
    out: list[Diagnostic] = []
    for p in fun.params:
        if p.name and p.name not in used:
            out.append(
                Diagnostic(
                    code="SAC001",
                    severity="info",
                    message=f"parameter {p.name!r} is never used",
                    location=f"{where} at {p.loc}",
                    hint="drop the parameter or use it",
                )
            )
    first_assign: dict[str, ast.Assign] = {}
    for node in _walk(fun):
        if isinstance(node, ast.Assign):
            first_assign.setdefault(node.name, node)
    for name, node in first_assign.items():
        if name not in used:
            out.append(
                Diagnostic(
                    code="SAC001",
                    severity="warning",
                    message=f"binding {name!r} is assigned but never used",
                    location=f"{where} at {node.loc}",
                    hint="remove the dead assignment",
                )
            )
    return out


# ---------------------------------------------------------------------------
# SAC002: shadowing
# ---------------------------------------------------------------------------


class _ShadowScan:
    """Scope-aware walk flagging nested rebindings of enclosing names."""

    def __init__(self, fun: ast.FunDef):
        self.where = f"function {fun.name!r}"
        self.out: list[Diagnostic] = []
        defined = {p.name for p in fun.params if p.name}
        self.scan_stmts(fun.body, defined, enclosing=frozenset(), local=set())

    def flag(self, what: str, name: str, loc) -> None:
        self.out.append(
            Diagnostic(
                code="SAC002",
                severity="warning",
                message=f"{what} {name!r} shadows an existing binding",
                location=f"{self.where} at {loc}",
                hint=f"rename {name!r}",
            )
        )

    def scan_stmts(self, stmts, defined, enclosing, local) -> None:
        for s in stmts:
            for f in dataclasses.fields(s):
                v = getattr(s, f.name)
                if isinstance(v, ast.Expr):
                    self.scan_expr(v, defined)
            if isinstance(s, ast.Assign):
                if s.name in enclosing and s.name not in local:
                    self.flag("generator-local binding", s.name, s.loc)
                local.add(s.name)
                defined.add(s.name)
            elif isinstance(s, ast.IndexedAssign):
                local.add(s.name)
                defined.add(s.name)
            elif isinstance(s, ast.ForLoop):
                if s.init is not None:
                    local.add(s.init.name)
                    defined.add(s.init.name)
                if s.update is not None:
                    self.scan_stmts((s.update,), defined, enclosing, local)
                self.scan_stmts(s.body, defined, enclosing, local)
            elif isinstance(s, ast.IfElse):
                self.scan_stmts(s.then, defined, enclosing, local)
                self.scan_stmts(s.orelse, defined, enclosing, local)
            elif isinstance(s, ast.Block):
                self.scan_stmts(s.stmts, defined, enclosing, local)

    def scan_expr(self, e: ast.Expr, defined) -> None:
        if isinstance(e, ast.WithLoop):
            self.scan_withloop(e, defined)
            return
        for child in _child_nodes(e):
            if isinstance(child, ast.Expr):
                self.scan_expr(child, defined)
            elif isinstance(child, ast.GenBound) and child.expr is not None:
                self.scan_expr(child.expr, defined)

    def scan_withloop(self, wl: ast.WithLoop, defined) -> None:
        for gen in wl.generators:
            for b in (gen.lower, gen.upper):
                if b is not None and b.expr is not None:
                    self.scan_expr(b.expr, defined)
            for sub in (gen.step, gen.width):
                if sub is not None:
                    self.scan_expr(sub, defined)
            for v in gen.vars:
                if v in defined:
                    self.flag("WITH-loop index variable", v, gen.loc)
            inner = set(defined) | set(gen.vars)
            self.scan_stmts(
                gen.body, inner, enclosing=frozenset(defined), local=set()
            )
            if gen.expr is not None:
                self.scan_expr(gen.expr, inner)
        if wl.operation is not None:
            for child in _child_nodes(wl.operation):
                if isinstance(child, ast.Expr):
                    self.scan_expr(child, defined)


def find_binding_lints(program: ast.Program) -> list[Diagnostic]:
    """SAC001 (unused) and SAC002 (shadowed) findings for every function."""
    out: list[Diagnostic] = []
    for fun in program.functions:
        out.extend(_unused_bindings(fun))
        out.extend(_ShadowScan(fun).out)
    return out


# ---------------------------------------------------------------------------
# SAC003: overlapping generators
# ---------------------------------------------------------------------------


def find_generator_overlaps(program: ast.Program) -> list[Diagnostic]:
    """SAC003: statically overlapping generators of multi-generator loops."""
    out: list[Diagnostic] = []
    for fun in program.functions:
        where = f"function {fun.name!r}"
        for node in _walk(fun):
            if not isinstance(node, ast.WithLoop) or len(node.generators) < 2:
                continue
            frame = static_frame_shape(node)
            ranges = [static_generator_range(g, frame) for g in node.generators]
            shape = frame if frame is not None else _bounding_shape(ranges)
            if shape is None or int(np.prod(shape)) > _MASK_LIMIT:
                continue  # dynamic or too large to decide exactly
            masks = [
                r.point_mask(tuple(shape)) if r is not None else None
                for r in ranges
            ]
            for a in range(len(masks)):
                for b in range(a + 1, len(masks)):
                    if masks[a] is None or masks[b] is None:
                        continue
                    common = int(np.count_nonzero(masks[a] & masks[b]))
                    if common:
                        gen_b = node.generators[b]
                        out.append(
                            Diagnostic(
                                code="SAC003",
                                severity="error",
                                message=(
                                    f"generators {a} and {b} overlap on "
                                    f"{common} cell(s); the result depends on "
                                    f"generator order"
                                ),
                                location=f"{where} at {gen_b.loc}",
                                hint="make the generator ranges disjoint",
                            )
                        )
    return out


def _bounding_shape(ranges) -> tuple[int, ...] | None:
    known = [r for r in ranges if r is not None]
    if len(known) < 2:
        return None
    rank = known[0].rank
    if any(r.rank != rank for r in known):
        return None
    return tuple(max(max(r.upper[d] for r in known), 1) for d in range(rank))


def lint_sac_program(program: ast.Program) -> list[Diagnostic]:
    """All SaC frontend lints over ``program``."""
    return find_binding_lints(program) + find_generator_overlaps(program)
