"""Suppression/baseline files for ``repro lint``.

A baseline file accepts known findings so the lint gate only fails on *new*
problems.  Format — one rule per line, ``#`` comments and blank lines
ignored::

    # accept all coalescing findings
    COALESCE001
    # accept a transfer finding only at a specific location
    XFER001 @ program 'downscale_hd'

A rule is the diagnostic code alone (suppresses the code everywhere) or
``CODE @ substring`` (suppresses the code where the diagnostic location
contains the substring).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.errors import ReproError

__all__ = ["SuppressionRule", "Baseline", "parse_baseline", "load_baseline", "apply_baseline"]


@dataclass(frozen=True)
class SuppressionRule:
    """Suppress ``code``, optionally only at matching locations."""

    code: str
    location_substring: str = ""

    def matches(self, d: Diagnostic) -> bool:
        if d.code != self.code:
            return False
        return self.location_substring in d.location


@dataclass(frozen=True)
class Baseline:
    """An ordered collection of suppression rules."""

    rules: tuple[SuppressionRule, ...] = ()

    def __len__(self) -> int:
        return len(self.rules)

    def matches(self, d: Diagnostic) -> bool:
        return any(r.matches(d) for r in self.rules)


def parse_baseline(text: str, source: str = "<baseline>") -> Baseline:
    rules: list[SuppressionRule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        code, sep, rest = line.partition("@")
        code = code.strip()
        if not code or (sep and not rest.strip()):
            raise ReproError(
                f"{source}:{lineno}: malformed suppression rule {raw.strip()!r}"
            )
        rules.append(SuppressionRule(code=code, location_substring=rest.strip()))
    return Baseline(rules=tuple(rules))


def load_baseline(path: str | Path) -> Baseline:
    path = Path(path)
    return parse_baseline(path.read_text(encoding="utf-8"), source=str(path))


def apply_baseline(diags, baseline: Baseline | None):
    """Split ``diags`` into (kept, suppressed) under ``baseline``."""
    if baseline is None or not len(baseline):
        return list(diags), []
    kept, suppressed = [], []
    for d in diags:
        (suppressed if baseline.matches(d) else kept).append(d)
    return kept, suppressed
