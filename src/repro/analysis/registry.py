"""The analyzer pass registry.

Analyzers are registered under stable names, keyed by the **artifact kind**
they consume:

* ``"program"`` — a :class:`repro.ir.program.DeviceProgram`;
* ``"sac"`` — a :class:`repro.sac.ast.Program`;
* ``"model"`` — a :class:`repro.arrayol.model.ApplicationModel`.

:func:`run_passes` runs every registered pass for a kind (or a named
subset) and returns the combined diagnostics, each tagged with the pass
that produced it.  The built-in suite is registered at import time; callers
may register additional passes (later scaling PRs hang scheduling checks
here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import (
    bounds,
    coalesce,
    hazards,
    lifetime,
    regions,
    saclint,
    tilerlint,
    transfers,
)
from repro.analysis.diagnostics import Diagnostic
from repro.errors import ReproError
from repro.gpu.calibration import GTX480_CALIBRATED
from repro.gpu.cost import CostModel
from repro.gpu.device import GTX480, DeviceSpec
from repro.ir.program import DeviceProgram, LaunchKernel

__all__ = [
    "KINDS",
    "AnalysisContext",
    "AnalyzerPass",
    "register_pass",
    "registered_passes",
    "get_pass",
    "run_passes",
    "analyze_program",
    "analyze_sac_program",
    "analyze_model",
]

#: artifact kinds analyzers can consume
KINDS = ("program", "sac", "model")


@dataclass(frozen=True)
class AnalysisContext:
    """Shared analyzer configuration (cost model, device spec)."""

    cost: CostModel = field(default_factory=lambda: CostModel(GTX480_CALIBRATED))
    device: DeviceSpec = GTX480


@dataclass(frozen=True)
class AnalyzerPass:
    """A named analyzer: ``run(artifact, ctx) -> list[Diagnostic]``."""

    name: str
    kind: str
    description: str
    codes: tuple[str, ...]
    run: Callable[[object, AnalysisContext], list[Diagnostic]] = field(compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown analyzer kind {self.kind!r}")


_REGISTRY: dict[str, AnalyzerPass] = {}


def register_pass(p: AnalyzerPass, replace: bool = False) -> AnalyzerPass:
    if p.name in _REGISTRY and not replace:
        raise ReproError(f"analyzer pass {p.name!r} already registered")
    _REGISTRY[p.name] = p
    return p


def registered_passes(kind: str | None = None) -> tuple[AnalyzerPass, ...]:
    return tuple(
        p for p in _REGISTRY.values() if kind is None or p.kind == kind
    )


def get_pass(name: str) -> AnalyzerPass:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(f"no analyzer pass named {name!r}") from None


def run_passes(
    artifact,
    kind: str,
    ctx: AnalysisContext | None = None,
    only: tuple[str, ...] | None = None,
) -> list[Diagnostic]:
    """Run the registered passes for ``kind`` over ``artifact``."""
    if kind not in KINDS:
        raise ReproError(f"unknown analyzer kind {kind!r}")
    ctx = ctx or AnalysisContext()
    out: list[Diagnostic] = []
    for p in registered_passes(kind):
        if only is not None and p.name not in only:
            continue
        out.extend(d.with_analyzer(p.name) for d in p.run(artifact, ctx))
    return out


# ---------------------------------------------------------------------------
# built-in passes
# ---------------------------------------------------------------------------


def _run_hazards(program: DeviceProgram, ctx: AnalysisContext):
    return hazards.find_hazards(program)


def _run_transfers(program: DeviceProgram, ctx: AnalysisContext):
    return transfers.find_transfer_waste(program, ctx.cost)


def _launched_kernels(program: DeviceProgram):
    """Yield ``(op index, kernel, scalar args)`` per launched plain kernel.

    Fused launches are expanded into their stages so the per-kernel
    analyses (bounds, coalescing) see the same kernels they saw before
    fusion — the optimiser's certification depends on this.
    """
    from repro.ir.fused import FusedKernel

    for i, op in enumerate(program.ops):
        if not isinstance(op, LaunchKernel):
            continue
        if isinstance(op.kernel, FusedKernel):
            for st in op.kernel.stages:
                yield i, st.kernel, dict(st.scalar_args)
        else:
            yield i, op.kernel, dict(op.scalar_args)


def _run_bounds(program: DeviceProgram, ctx: AnalysisContext):
    out: list[Diagnostic] = []
    for i, kernel, scalars in _launched_kernels(program):
        out.extend(
            bounds.check_kernel_bounds(
                kernel,
                scalars=scalars,
                location=(
                    f"program {program.name!r}: ops[{i}] "
                    f"launch {kernel.name!r}"
                ),
            )
        )
    return out


def _run_coalescing(program: DeviceProgram, ctx: AnalysisContext):
    out: list[Diagnostic] = []
    seen: set[str] = set()
    for i, kernel, _scalars in _launched_kernels(program):
        if kernel.name in seen:
            continue
        seen.add(kernel.name)
        out.extend(
            coalesce.check_kernel_coalescing(
                kernel,
                device=ctx.device,
                location=(
                    f"program {program.name!r}: ops[{i}] "
                    f"launch {kernel.name!r}"
                ),
            )
        )
    return out


def _run_sac_bindings(program, ctx: AnalysisContext):
    return saclint.find_binding_lints(program)


def _run_sac_generators(program, ctx: AnalysisContext):
    return saclint.find_generator_overlaps(program)


def _run_tilers(model, ctx: AnalysisContext):
    return tilerlint.lint_model(model)


def _run_regions(program: DeviceProgram, ctx: AnalysisContext):
    return regions.find_region_reports(program)


def _run_lifetime(program: DeviceProgram, ctx: AnalysisContext):
    return lifetime.check_lifetimes(program)


_BUILTINS = (
    AnalyzerPass(
        name="hazards",
        kind="program",
        description="happens-before race detection over async device ops",
        codes=("RACE001", "RACE002"),
        run=_run_hazards,
    ),
    AnalyzerPass(
        name="transfers",
        kind="program",
        description="redundant/dead PCIe transfers, priced by the cost model",
        codes=("XFER001", "XFER002", "XFER003"),
        run=_run_transfers,
    ),
    AnalyzerPass(
        name="bounds",
        kind="program",
        description="interval proofs that kernel indices stay in bounds",
        codes=("BOUNDS001", "BOUNDS002", "BOUNDS003"),
        run=_run_bounds,
    ),
    AnalyzerPass(
        name="coalescing",
        kind="program",
        description="non-unit adjacent-thread stride detection",
        codes=("COALESCE001",),
        run=_run_coalescing,
    ),
    AnalyzerPass(
        name="regions",
        kind="program",
        description="symbolic access regions; flags imprecise fallbacks",
        codes=("REGION001",),
        run=_run_regions,
    ),
    AnalyzerPass(
        name="lifetime",
        kind="program",
        description="buffer typestate verification (init/stale/free/leak)",
        codes=("MEM001", "MEM002", "MEM003", "MEM004", "MEM005"),
        run=_run_lifetime,
    ),
    AnalyzerPass(
        name="sac-bindings",
        kind="sac",
        description="unused and shadowed SaC bindings",
        codes=("SAC001", "SAC002"),
        run=_run_sac_bindings,
    ),
    AnalyzerPass(
        name="sac-generators",
        kind="sac",
        description="overlapping WITH-loop generators",
        codes=("SAC003",),
        run=_run_sac_generators,
    ),
    AnalyzerPass(
        name="tilers",
        kind="model",
        description="tiler injectivity and coverage over the task tree",
        codes=("TILER001", "TILER002"),
        run=_run_tilers,
    ),
)

for _p in _BUILTINS:
    register_pass(_p)


# ---------------------------------------------------------------------------
# convenience front doors
# ---------------------------------------------------------------------------


def analyze_program(
    program: DeviceProgram,
    ctx: AnalysisContext | None = None,
    only: tuple[str, ...] | None = None,
) -> list[Diagnostic]:
    """Run all program-kind analyzers over a device program."""
    return run_passes(program, "program", ctx=ctx, only=only)


def analyze_sac_program(program, ctx=None, only=None) -> list[Diagnostic]:
    """Run all SaC-kind analyzers over a SaC AST program."""
    return run_passes(program, "sac", ctx=ctx, only=only)


def analyze_model(model, ctx=None, only=None) -> list[Diagnostic]:
    """Run all model-kind analyzers over an ArrayOL application model."""
    return run_passes(model, "model", ctx=ctx, only=only)
