"""Hazard/race detection over device programs.

Builds a **happens-before graph** over a program's operations under the
asynchronous execution model of :func:`repro.gpu.stream.overlapped_makespan`:

* three engines (H2D copy, compute, D2H copy) execute in FIFO order;
* a kernel launch additionally waits for the last *writer* of every buffer
  it touches; a ``DeviceToHost`` waits for the writer of its buffer;
* a ``HostCompute`` waits for the downloads it reads and then acts as a
  forward barrier (the host issues subsequent ops after it finishes);
* ``FreeDevice`` and synchronous transfers (``is_async=False``) behave as
  full barriers (``cudaFree``/blocking ``cudaMemcpy`` synchronise).

Any two operations that access the same device buffer or host array, where
at least one access is a write and **no happens-before path** connects them,
are flagged as RACE001 (write/write) or RACE002 (read/write).  These are
exactly the interleavings the paper's ``memcpyHtoDasync`` calls make legal.

With ``regions=True`` (the default) an unordered pair is additionally
checked against the access-region oracle of
:mod:`repro.analysis.regions`: when the two accesses touch provably
disjoint strided boxes of the resource (a kernel writing one tile while a
partial transfer moves another), the pair cannot race and is not
reported.  Region filtering only ever *removes* findings — the
whole-buffer result is a sound superset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
    Op,
)

__all__ = ["HappensBefore", "build_happens_before", "find_hazards"]

#: resource kinds used in access records
_DEV = "device buffer"
_HOST = "host array"


@dataclass(frozen=True)
class _Access:
    node: int  # op index
    resource: tuple[str, str]  # (kind, name)
    write: bool


class HappensBefore:
    """The happens-before relation over a program's op indices."""

    def __init__(self, program: DeviceProgram):
        self.program = program
        self.nodes: list[int] = []
        self.edges: dict[int, set[int]] = {}
        self.accesses: list[_Access] = []
        self._reach: dict[int, int] | None = None

    def add_node(self, i: int) -> None:
        self.nodes.append(i)
        self.edges.setdefault(i, set())

    def add_edge(self, src: int | None, dst: int) -> None:
        if src is not None and src != dst:
            self.edges.setdefault(src, set()).add(dst)

    def ordered(self, i: int, j: int) -> bool:
        """True when a happens-before path connects ``i`` and ``j``."""
        if self._reach is None:
            self._reach = self._reachability()
        lo, hi = (i, j) if i < j else (j, i)
        return bool(self._reach[lo] >> hi & 1)

    def _reachability(self) -> dict[int, int]:
        # edges always point forward in op order, so one reverse sweep
        # computes full transitive reachability as bitsets
        reach: dict[int, int] = {}
        for i in sorted(self.nodes, reverse=True):
            bits = 1 << i
            for j in self.edges.get(i, ()):
                bits |= reach[j]
            reach[i] = bits
        return reach


def build_happens_before(program: DeviceProgram) -> HappensBefore:
    """Construct the happens-before graph for ``program``."""
    hb = HappensBefore(program)
    last_on_engine: dict[str, int | None] = {"h2d": None, "compute": None, "d2h": None}
    last_dev_writer: dict[str, int] = {}
    last_d2h_into: dict[str, int] = {}  # host array -> D2H node
    last_barrier: int | None = None
    since_barrier: list[int] = []

    def new_node(i: int, engine: str | None) -> None:
        hb.add_node(i)
        hb.add_edge(last_barrier, i)
        if engine is not None:
            hb.add_edge(last_on_engine[engine], i)
            last_on_engine[engine] = i
        since_barrier.append(i)

    def make_barrier(i: int) -> None:
        nonlocal last_barrier
        for j in since_barrier:
            hb.add_edge(j, i)
        last_barrier = i
        since_barrier.clear()

    for i, op in enumerate(program.ops):
        if isinstance(op, AllocDevice):
            continue  # host-side bookkeeping; no data movement
        if isinstance(op, FreeDevice):
            new_node(i, None)
            make_barrier(i)  # cudaFree synchronises the device
            last_dev_writer.pop(op.buffer, None)
            continue
        if isinstance(op, HostToDevice):
            new_node(i, "h2d")
            hb.accesses.append(_Access(i, (_HOST, op.host), write=False))
            hb.accesses.append(_Access(i, (_DEV, op.device), write=True))
            last_dev_writer[op.device] = i
            if not op.is_async:
                make_barrier(i)  # blocking cudaMemcpy
        elif isinstance(op, DeviceToHost):
            new_node(i, "d2h")
            hb.add_edge(last_dev_writer.get(op.device), i)
            hb.accesses.append(_Access(i, (_DEV, op.device), write=False))
            hb.accesses.append(_Access(i, (_HOST, op.host), write=True))
            last_d2h_into[op.host] = i
            if not op.is_async:
                make_barrier(i)
        elif isinstance(op, LaunchKernel):
            new_node(i, "compute")
            for param, buf in op.array_args:
                intent = op.kernel.array(param).intent
                hb.add_edge(last_dev_writer.get(buf), i)
                if intent in ("in", "inout"):
                    hb.accesses.append(_Access(i, (_DEV, buf), write=False))
                if intent in ("out", "inout"):
                    hb.accesses.append(_Access(i, (_DEV, buf), write=True))
                    last_dev_writer[buf] = i
        elif isinstance(op, HostCompute):
            new_node(i, None)
            for name in op.reads:
                hb.add_edge(last_d2h_into.get(name), i)
                hb.accesses.append(_Access(i, (_HOST, name), write=False))
            for name in op.writes:
                hb.accesses.append(_Access(i, (_HOST, name), write=True))
            make_barrier(i)  # the host issues subsequent ops after this step
        elif isinstance(op, Op):
            # unknown op kinds order conservatively as barriers
            new_node(i, None)
            make_barrier(i)
    return hb


def _describe(i: int, op: Op) -> str:
    if isinstance(op, HostToDevice):
        mode = "" if op.is_async else " (sync)"
        return f"ops[{i}] h2d {op.host!r}->{op.device!r}{mode}"
    if isinstance(op, DeviceToHost):
        mode = "" if op.is_async else " (sync)"
        return f"ops[{i}] d2h {op.device!r}->{op.host!r}{mode}"
    if isinstance(op, LaunchKernel):
        return f"ops[{i}] launch {op.kernel.name!r}"
    if isinstance(op, HostCompute):
        return f"ops[{i}] host step {op.name!r}"
    if isinstance(op, FreeDevice):
        return f"ops[{i}] free {op.buffer!r}"
    return f"ops[{i}] {type(op).__name__}"


def find_hazards(program: DeviceProgram, regions: bool = True) -> list[Diagnostic]:
    """All unordered conflicting access pairs of ``program``.

    ``regions=False`` disables the region-disjointness filter and reports
    every unordered whole-buffer conflict (the PR1 behaviour); the filtered
    result is always a subset of it.
    """
    hb = build_happens_before(program)
    by_resource: dict[tuple[str, str], list[_Access]] = {}
    for acc in hb.accesses:
        by_resource.setdefault(acc.resource, []).append(acc)

    oracle = None
    out: list[Diagnostic] = []
    seen: set[tuple[int, int, tuple[str, str]]] = set()
    for resource, accs in by_resource.items():
        for a in range(len(accs)):
            for b in range(a + 1, len(accs)):
                x, y = accs[a], accs[b]
                if x.node == y.node:
                    continue
                if not (x.write or y.write):
                    continue
                key = (min(x.node, y.node), max(x.node, y.node), resource)
                if key in seen:
                    continue
                if hb.ordered(x.node, y.node):
                    continue
                if regions:
                    if oracle is None:
                        from repro.analysis.regions import RegionOracle

                        oracle = RegionOracle(program)
                    # a disjoint pair is no race, but a later overlapping
                    # access-mode combination of the same op pair still is —
                    # so do not mark the pair as seen here
                    if not oracle.pair_conflicts(
                        x.node, x.write, y.node, y.write, resource
                    ):
                        continue
                seen.add(key)
                kind, name = resource
                both_write = x.write and y.write
                code = "RACE001" if both_write else "RACE002"
                flavour = "write/write" if both_write else "read/write"
                ops = program.ops
                first, second = sorted((x.node, y.node))
                out.append(
                    Diagnostic(
                        code=code,
                        severity="error",
                        message=(
                            f"unordered {flavour} on {kind} {name!r}: "
                            f"{_describe(first, ops[first])} vs "
                            f"{_describe(second, ops[second])}"
                        ),
                        location=f"program {program.name!r}",
                        hint=(
                            "order the operations (synchronous transfer, host "
                            "sync, or reorder so a dependence edge exists)"
                        ),
                    )
                )
    out.sort(key=lambda d: d.message)
    return out
