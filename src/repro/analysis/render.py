"""Render diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import (
    Diagnostic,
    count_by_severity,
    dedupe_diagnostics,
)

__all__ = ["render_text", "render_json", "sort_diagnostics"]


def sort_diagnostics(diags) -> list[Diagnostic]:
    """Worst first; within a severity, stable by code then location.

    Identical findings from different passes are collapsed first, so a
    defect two analyzers agree on renders once.
    """
    return sorted(
        dedupe_diagnostics(diags),
        key=lambda d: (-d.rank, d.code, d.location, d.message),
    )


def render_text(diags, title: str | None = None) -> str:
    """One line per finding plus a summary line.

    Format::

        <location>: <severity> <CODE>: <message> [~12.3 us wasted]
            hint: <fix hint>
    """
    diags = dedupe_diagnostics(diags)
    lines: list[str] = []
    if title:
        lines.append(title)
    for d in sort_diagnostics(diags):
        head = f"{d.location}: " if d.location else ""
        waste = f" [~{d.wasted_us:.1f} us wasted]" if d.wasted_us is not None else ""
        lines.append(f"{head}{d.severity} {d.code}: {d.message}{waste}")
        if d.hint:
            lines.append(f"    hint: {d.hint}")
    counts = count_by_severity(diags)
    lines.append(
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines)


def render_json(diags, title: str | None = None) -> str:
    """A JSON document: summary counts plus the sorted findings."""
    diags = dedupe_diagnostics(diags)
    counts = count_by_severity(diags)
    doc = {
        "title": title or "",
        "counts": counts,
        "diagnostics": [d.as_dict() for d in sort_diagnostics(diags)],
    }
    return json.dumps(doc, indent=2)
