"""Region-precise access analysis: the optimiser's independence oracle.

The paper's core argument is that SaC and ArrayOL survive the move to GPUs
*because* their abstractions keep data accesses statically analysable.  The
PR1 analyses reason at whole-buffer granularity, so the race detector
over-approximates and the optimiser must be conservative.  This module
recovers per-element precision for the :class:`~repro.ir.program.DeviceProgram`
IR: for every op it derives, per buffer, the set of elements read and
written as **strided interval boxes** —

* from :class:`~repro.ir.kernel.Kernel` index expressions on the SaC route
  (the generated bodies are affine in the generator indices, including the
  exact divisions and modular wrap arithmetic WITH-loop folding emits),
* from the tiler ``o/F/P`` matrices on the ArrayOL route (the lowered
  kernel bodies embed ``(o + P@r + F@i) mod shape``, so the same symbolic
  analysis covers both routes; :mod:`repro.tilers.regions` derives the same
  boxes straight from the matrices as a cross-check),
* from the ``region`` field of partial transfers,

with a sound whole-buffer fallback tagged *imprecise* (``fallback=True``)
when an index escapes the analysable fragment.

Consumers see the result through :class:`RegionOracle`:

* ``may_alias(i, j)`` — may ops ``i`` and ``j`` conflict, i.e. is there an
  overlapping access pair with at least one write?  ``False`` is a proof
  of independence: the legality condition for fusing, reordering, or
  overlapping the two ops.
* ``must_cover(boxes, shape)`` — do the *exact* boxes provably cover every
  element of the buffer?  Used by the lifetime verifier (is a download
  fully initialised?) and by transfer elimination (does a partial upload
  establish residency?).

Soundness contract: every derived box is a **superset** of the true access
set, so box disjointness proves access disjointness.  ``exact=True``
additionally promises the box *equals* the true access set; only exact
boxes participate in the under-approximating ``must_cover``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from math import prod

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.ir.expr import BinOp, Const, LocalRef, ParamRef, Read, Select, ThreadIdx, UnOp, walk
from repro.ir.fused import FusedKernel
from repro.ir.kernel import Kernel
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
    region_count,
)
from repro.ir.stmt import Assign, For, Store

__all__ = [
    "Seg",
    "Box",
    "box_from_dict",
    "full_box",
    "progression_box",
    "boxes_overlap",
    "box_contains",
    "must_cover",
    "kernel_access_boxes",
    "launch_access_boxes",
    "transfer_box",
    "RegionOracle",
    "find_region_reports",
]

#: element cap for the dense coverage mask (same limit as the bounds pass)
_COVER_LIMIT = 1 << 26


# ---------------------------------------------------------------------------
# strided segments and boxes


@dataclass(frozen=True)
class Seg:
    """One dimension of a box: ``{lo, lo+step, ..., hi}`` (inclusive)."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        lo, hi, step = int(self.lo), int(self.hi), int(self.step)
        if hi < lo:
            raise ValueError(f"Seg has negative extent: [{lo}, {hi}]")
        if step < 1:
            raise ValueError(f"Seg step must be >= 1, got {step}")
        hi = lo + (hi - lo) // step * step  # snap hi onto the progression
        if lo == hi:
            step = 1
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "step", step)

    @property
    def count(self) -> int:
        return (self.hi - self.lo) // self.step + 1

    def overlaps(self, other: "Seg") -> bool:
        """Whether the two progressions share an element (CRT congruence)."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return False
        g = math.gcd(self.step, other.step)
        if (other.lo - self.lo) % g:
            return False
        # smallest common element of both progressions, then shift into range
        m1, m2 = self.step // g, other.step // g
        t = 0 if m2 == 1 else (other.lo - self.lo) // g * pow(m1, -1, m2) % m2
        x0 = self.lo + self.step * t
        lcm = self.step // g * other.step
        x = lo + (x0 - lo) % lcm
        return x <= hi


@dataclass(frozen=True)
class Box:
    """A per-buffer access region: one :class:`Seg` per array dimension.

    ``segs == ()`` is the *unknown* box (a resource of unknown extent,
    e.g. a host array touched by an opaque ``HostCompute``): it overlaps
    everything and covers nothing.  ``exact`` marks the box as equal to
    the true access set; ``fallback`` marks the whole-buffer imprecise
    fallback taken when an index expression defeated the analysis.
    """

    segs: tuple[Seg, ...]
    exact: bool = True
    fallback: bool = False

    @property
    def rank(self) -> int:
        return len(self.segs)

    @property
    def unknown(self) -> bool:
        return not self.segs

    @property
    def count(self) -> int:
        return prod(s.count for s in self.segs)

    def as_dict(self) -> dict:
        """JSON-stable rendering; inverse of :func:`box_from_dict`."""
        return {
            "segs": [[s.lo, s.hi, s.step] for s in self.segs],
            "exact": self.exact,
            "fallback": self.fallback,
        }


def box_from_dict(data: dict) -> Box:
    """Rebuild a :class:`Box` from its :meth:`Box.as_dict` rendering."""
    return Box(
        segs=tuple(Seg(lo, hi, step) for lo, hi, step in data["segs"]),
        exact=bool(data["exact"]),
        fallback=bool(data.get("fallback", False)),
    )


def full_box(shape: tuple[int, ...], exact: bool = True, fallback: bool = False) -> Box:
    """The box covering every element of an array of ``shape``."""
    return Box(
        segs=tuple(Seg(0, n - 1, 1) for n in shape), exact=exact, fallback=fallback
    )


def boxes_overlap(a: Box, b: Box) -> bool:
    """May the two regions share an element?  (Conservative: True unless
    provably disjoint.)"""
    if a.unknown or b.unknown or a.rank != b.rank:
        return True
    return all(sa.overlaps(sb) for sa, sb in zip(a.segs, b.segs))


def box_contains(outer: Box, inner: Box) -> bool:
    """Does ``outer`` provably contain every element of ``inner``?

    The proof needs ``outer`` to be exact (an inexact box only promises a
    superset of its true access set, which proves nothing about what it
    holds) and, per dimension, ``inner``'s progression to be a
    sub-progression of ``outer``'s: aligned on the same residue with a
    step that is a multiple of the outer step, inside the outer bounds.
    ``False`` means "not provable", not "disjoint" — the conservative
    answer for a legality gate.
    """
    if outer.unknown or inner.unknown or outer.rank != inner.rank:
        return False
    if not outer.exact:
        return False
    for so, si in zip(outer.segs, inner.segs):
        if si.lo < so.lo or si.hi > so.hi:
            return False
        if (si.lo - so.lo) % so.step:
            return False
        # a single point only needs alignment; a progression also needs
        # its step to land on the outer residue class every time
        if si.count > 1 and si.step % so.step:
            return False
    return True


def progression_box(const: int, contributions) -> tuple[Seg, bool]:
    """Collapse ``const + sum(coef_k * x_k)`` with ``x_k in [0, count_k)``
    into a :class:`Seg` plus an exactness flag.

    The segment always *contains* the value set.  It *equals* it when the
    sorted absolute coefficients form a complete sequence: with ``g`` the
    gcd of all coefficients, each ``|coef|`` must not exceed the reach of
    the smaller terms plus ``g`` — the condition under which the partial
    sums tile a full arithmetic progression (it covers the single-axis,
    contiguous-halo, and mixed-radix flattening cases the two routes emit).
    """
    terms = [(int(c), int(n)) for c, n in contributions if int(n) > 1 and int(c) != 0]
    const = int(const)
    if not terms:
        return Seg(const, const, 1), True
    lo = const + sum(min(0, c * (n - 1)) for c, n in terms)
    hi = const + sum(max(0, c * (n - 1)) for c, n in terms)
    g = 0
    for c, _ in terms:
        g = math.gcd(g, abs(c))
    exact = True
    reach = 0
    for s, n in sorted((abs(c), n) for c, n in terms):
        if s > reach + g:
            exact = False
            break
        reach += s * (n - 1)
    return Seg(lo, hi, g), exact


def must_cover(boxes, shape: tuple[int, ...]) -> bool:
    """Do the **exact** boxes provably cover every element of ``shape``?

    This is the under-approximating side of the oracle: inexact boxes are
    ignored (they only promise a superset), and above :data:`_COVER_LIMIT`
    elements only a single whole-array box proves coverage.
    """
    exact = [b for b in boxes if b.exact and not b.unknown and b.rank == len(shape)]
    if not exact:
        return False
    for b in exact:
        if all(
            s.lo <= 0 and s.hi >= n - 1 and s.step == 1
            for s, n in zip(b.segs, shape)
        ):
            return True
    if prod(shape) > _COVER_LIMIT:
        return False
    mask = np.zeros(shape, dtype=bool)
    for b in exact:
        index = []
        for s, n in zip(b.segs, shape):
            start = s.lo if s.lo >= 0 else s.lo % s.step
            stop = min(s.hi, n - 1) + 1
            if start >= stop:
                index = None
                break
            index.append(slice(start, stop, s.step))
        if index is not None:
            mask[tuple(index)] = True
    return bool(mask.all())


# ---------------------------------------------------------------------------
# affine evaluation of kernel index expressions


@dataclass(frozen=True)
class _Aff:
    """``const + sum(terms[k] * x_k)`` with ``x_k in [0, axes[k])``."""

    const: int
    terms: tuple[tuple[object, int], ...]  # (axis key, unit coefficient)


@dataclass(frozen=True)
class _Rng:
    """A bounded but otherwise unknown integer: sound, never exact
    (unless it is a single point)."""

    lo: int
    hi: int


class _Ctx:
    """Evaluation context: generator axes, loop axes, and local bindings."""

    def __init__(self, kernel: Kernel, scalars: dict):
        self.axes: dict[object, int] = {}  # axis key -> trip count
        self.scalars = scalars
        self.iv: list[_Aff] = []
        sp = kernel.space
        for d, (lo, st, n) in enumerate(zip(sp.lower, sp.step, sp.extent)):
            key = ("iv", d)
            self.axes[key] = n
            self.iv.append(_Aff(lo, ((key, st),) if n > 1 else ()))
        # name -> (result, loop keys open at bind time); results bound under
        # a loop are demoted to their bounds once the loop has closed
        self.locals: dict[str, tuple[object, frozenset]] = {}
        self.open: set = set()
        self._loop_id = 0

    def loop_key(self, var: str):
        self._loop_id += 1
        return ("for", var, self._loop_id)


def _bounds(res, ctx: _Ctx):
    """Integer bounds of an evaluation result, or None."""
    if isinstance(res, _Rng):
        return res.lo, res.hi
    if isinstance(res, _Aff):
        lo = hi = res.const
        for key, coef in res.terms:
            span = coef * (ctx.axes[key] - 1)
            lo += min(0, span)
            hi += max(0, span)
        return lo, hi
    return None


def _to_rng(res, ctx: _Ctx):
    b = _bounds(res, ctx)
    return None if b is None else _Rng(*b)


def _add(a, b, sign: int, ctx: _Ctx):
    if isinstance(a, _Aff) and isinstance(b, _Aff):
        terms = dict(a.terms)
        for key, coef in b.terms:
            terms[key] = terms.get(key, 0) + sign * coef
        return _Aff(
            a.const + sign * b.const,
            tuple((k, c) for k, c in terms.items() if c),
        )
    ba, bb = _bounds(a, ctx), _bounds(b, ctx)
    if ba is None or bb is None:
        return None
    pts = (ba[0] + sign * bb[0], ba[0] + sign * bb[1], ba[1] + sign * bb[0], ba[1] + sign * bb[1])
    return _Rng(min(pts), max(pts))


def _eval(e, ctx: _Ctx):
    """Evaluate an index expression to ``_Aff``/``_Rng``/None (sound)."""
    if isinstance(e, Const):
        v = e.value
        if isinstance(v, bool) or not isinstance(v, int):
            return None
        return _Aff(int(v), ())
    if isinstance(e, ThreadIdx):
        return ctx.iv[e.dim] if e.dim < len(ctx.iv) else None
    if isinstance(e, ParamRef):
        v = ctx.scalars.get(e.name)
        if isinstance(v, bool) or not isinstance(v, int):
            return None
        return _Aff(int(v), ())
    if isinstance(e, LocalRef):
        bound = ctx.locals.get(e.name)
        if bound is None:
            return None
        res, open_at_bind = bound
        if open_at_bind - ctx.open:
            # bound under a loop that has since closed: the symbolic range
            # is a superset of the final value — keep bounds, drop exactness
            return _to_rng(res, ctx)
        return res
    if isinstance(e, Read):
        return None  # data-dependent index
    if isinstance(e, Select):
        t, f = _to_rng(_eval(e.if_true, ctx), ctx), _to_rng(_eval(e.if_false, ctx), ctx)
        if t is None or f is None:
            return None
        return _Rng(min(t.lo, f.lo), max(t.hi, f.hi))
    if isinstance(e, UnOp):
        v = _eval(e.operand, ctx)
        if e.op == "-":
            if isinstance(v, _Aff):
                return _Aff(-v.const, tuple((k, -c) for k, c in v.terms))
            b = _bounds(v, ctx)
            return None if b is None else _Rng(-b[1], -b[0])
        if e.op == "abs":
            b = _bounds(v, ctx)
            if b is None:
                return None
            lo, hi = b
            if lo >= 0:
                return v
            if hi <= 0:
                return _Rng(-hi, -lo)
            return _Rng(0, max(-lo, hi))
        if e.op == "!":
            return _Rng(0, 1)
        return None
    if isinstance(e, BinOp):
        return _eval_binop(e, ctx)
    return None


def _eval_binop(e: BinOp, ctx: _Ctx):
    op = e.op
    if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
        return _Rng(0, 1)
    a = _eval(e.lhs, ctx)
    b = _eval(e.rhs, ctx)
    if op == "+":
        return _add(a, b, 1, ctx)
    if op == "-":
        return _add(a, b, -1, ctx)
    if op == "*":
        for aff, other in ((a, b), (b, a)):
            if isinstance(aff, _Aff) and not aff.terms:
                c = aff.const
                if isinstance(other, _Aff):
                    terms = tuple((k, c * v) for k, v in other.terms) if c else ()
                    return _Aff(c * other.const, terms)
                bb = _bounds(other, ctx)
                if bb is None:
                    return None
                pts = (c * bb[0], c * bb[1])
                return _Rng(min(pts), max(pts))
        ba, bb = _bounds(a, ctx), _bounds(b, ctx)
        if ba is None or bb is None:
            return None
        pts = (ba[0] * bb[0], ba[0] * bb[1], ba[1] * bb[0], ba[1] * bb[1])
        return _Rng(min(pts), max(pts))
    if op == "/":
        if not (isinstance(b, _Aff) and not b.terms and b.const != 0):
            return None
        c = b.const
        if isinstance(a, _Aff) and a.const % c == 0 and all(v % c == 0 for _, v in a.terms):
            # exact division: truncating and exact quotients coincide
            return _Aff(a.const // c, tuple((k, v // c) for k, v in a.terms))
        ba = _bounds(a, ctx)
        if ba is None:
            return None

        def cdiv(x: int) -> int:  # C semantics: truncate toward zero
            q = abs(x) // abs(c)
            return -q if (x < 0) != (c < 0) else q

        pts = (cdiv(ba[0]), cdiv(ba[1]))
        return _Rng(min(pts), max(pts))
    if op == "%":
        if not (isinstance(b, _Aff) and not b.terms and b.const > 0):
            return None
        m = b.const
        ba = _bounds(a, ctx)
        if ba is None:
            return None
        lo, hi = ba
        if 0 <= lo and hi < m:
            return a  # the modulo is an identity on this range
        if lo >= 0:
            return _Rng(0, min(hi, m - 1))
        if hi <= 0:
            return _Rng(max(lo, -(m - 1)), 0)
        return _Rng(max(lo, -(m - 1)), min(hi, m - 1))
    if op in ("min", "max"):
        ba, bb = _bounds(a, ctx), _bounds(b, ctx)
        if ba is None or bb is None:
            return None
        if op == "min":
            return _Rng(min(ba[0], bb[0]), min(ba[1], bb[1]))
        return _Rng(max(ba[0], bb[0]), max(ba[1], bb[1]))
    return None


def _index_box(index, shape: tuple[int, ...], ctx: _Ctx) -> Box:
    """Box for one subscript; whole-buffer fallback if any dim escapes."""
    segs: list[Seg] = []
    exact = True
    for e, n in zip(index, shape):
        res = _eval(e, ctx)
        if res is None:
            return full_box(shape, exact=False, fallback=True)
        if isinstance(res, _Aff):
            seg, dim_exact = progression_box(
                res.const, ((c, ctx.axes[k]) for k, c in res.terms)
            )
        else:
            seg, dim_exact = Seg(res.lo, res.hi, 1), res.lo == res.hi
        segs.append(seg)
        exact = exact and dim_exact
    return Box(tuple(segs), exact=exact)


# ---------------------------------------------------------------------------
# per-kernel and per-op access boxes


@dataclass(frozen=True)
class ParamAccess:
    """Access boxes of one kernel array parameter."""

    reads: tuple[Box, ...] = ()
    writes: tuple[Box, ...] = ()


def _box_key(b: Box):
    return (b.fallback, not b.exact, tuple((s.lo, s.hi, s.step) for s in b.segs))


_KERNEL_BOX_CACHE: dict[tuple, dict[str, ParamAccess]] = {}


def kernel_access_boxes(kernel: Kernel, scalar_args=()) -> dict[str, ParamAccess]:
    """Per-parameter read/write boxes of one kernel body.

    Results are cached globally per ``(kernel, scalar_args)`` — kernels are
    shared across pipeline runs, so the symbolic walk happens once.
    """
    cache_key = (kernel, tuple(sorted(tuple(scalar_args))))
    hit = _KERNEL_BOX_CACHE.get(cache_key)
    if hit is not None:
        return hit

    acc: dict[str, tuple[set, set]] = {}
    if not kernel.space.is_empty():
        ctx = _Ctx(kernel, dict(scalar_args))

        def record(array: str, index, write: bool) -> None:
            shape = kernel.array(array).shape
            box = _index_box(index, shape, ctx)
            reads, writes = acc.setdefault(array, (set(), set()))
            (writes if write else reads).add(box)

        def scan_reads(expr) -> None:
            for sub in walk(expr):
                if isinstance(sub, Read):
                    record(sub.array, sub.index, write=False)

        def run(stmts) -> None:
            for s in stmts:
                if isinstance(s, Assign):
                    scan_reads(s.value)
                    ctx.locals[s.name] = (_eval(s.value, ctx), frozenset(ctx.open))
                elif isinstance(s, For):
                    trip = s.stop - s.start
                    if trip <= 0:
                        continue
                    key = ctx.loop_key(s.var)
                    ctx.axes[key] = trip
                    ctx.locals[s.var] = (
                        _Aff(s.start, ((key, 1),) if trip > 1 else ()),
                        frozenset(ctx.open | {key}),
                    )
                    ctx.open.add(key)
                    run(s.body)
                    ctx.open.discard(key)
                    # after the loop the var holds one final value, not the
                    # range — later index uses fall back to "unanalysable"
                    ctx.locals[s.var] = (None, frozenset())
                elif isinstance(s, Store):
                    scan_reads(s.value)
                    for ix in s.index:
                        scan_reads(ix)
                    record(s.array, s.index, write=True)

        run(kernel.body)

    result = {
        name: ParamAccess(
            reads=tuple(sorted(reads, key=_box_key)),
            writes=tuple(sorted(writes, key=_box_key)),
        )
        for name, (reads, writes) in acc.items()
    }
    _KERNEL_BOX_CACHE[cache_key] = result
    return result


def launch_access_boxes(
    op: LaunchKernel,
) -> tuple[dict[str, tuple[Box, ...]], dict[str, tuple[Box, ...]]]:
    """Per device-buffer (reads, writes) boxes of one launch.

    Fused kernels are expanded stage by stage; scratch arrays internal to
    the fusion never touch device buffers and are skipped.
    """
    reads: dict[str, set] = {}
    writes: dict[str, set] = {}

    def merge(param_acc: dict[str, ParamAccess], binding) -> None:
        for param, buf in binding:
            pa = param_acc.get(param)
            if pa is None:
                continue
            if pa.reads:
                reads.setdefault(buf, set()).update(pa.reads)
            if pa.writes:
                writes.setdefault(buf, set()).update(pa.writes)

    if isinstance(op.kernel, FusedKernel):
        top = dict(op.array_args)
        internal = {p.name for p in op.kernel.internal}
        for stage in op.kernel.stages:
            stage_boxes = kernel_access_boxes(stage.kernel, stage.scalar_args)
            merge(
                stage_boxes,
                (
                    (param, top.get(name, name))
                    for param, name in stage.array_args
                    if name not in internal
                ),
            )
    else:
        merge(kernel_access_boxes(op.kernel, op.scalar_args), op.array_args)

    return (
        {buf: tuple(sorted(v, key=_box_key)) for buf, v in reads.items()},
        {buf: tuple(sorted(v, key=_box_key)) for buf, v in writes.items()},
    )


def transfer_box(region, shape) -> Box | None:
    """Box touched by a transfer: its ``region`` if partial, else the whole
    buffer.  Unknown geometry yields the unknown box; a degenerate region
    (some dimension selects zero elements) yields ``None`` — the transfer
    provably touches nothing, so it cannot conflict with anything."""
    if region is not None:
        if any(stop <= start for start, stop, _step in region):
            return None
        return Box(tuple(Seg(lo, stop - 1, step) for lo, stop, step in region))
    if shape is None:
        return Box(())
    return full_box(shape)


# ---------------------------------------------------------------------------
# the oracle


_DEV = "device buffer"
_HOST = "host array"


class RegionOracle:
    """Per-op access regions of one program, with independence queries.

    Resources are keyed like the hazard pass keys them: ``("device
    buffer", name)`` and ``("host array", name)``.
    """

    def __init__(self, program: DeviceProgram):
        self.program = program
        self.shapes: dict[str, tuple[int, ...]] = {
            op.buffer: op.shape
            for op in program.ops
            if isinstance(op, AllocDevice)
        }
        self._acc: dict[int, tuple[dict, dict]] = {}

    def accesses(self, i: int) -> tuple[dict, dict]:
        """(reads, writes): resource key -> tuple of boxes for ``ops[i]``."""
        hit = self._acc.get(i)
        if hit is not None:
            return hit
        op = self.program.ops[i]
        reads: dict = {}
        writes: dict = {}
        if isinstance(op, HostToDevice):
            box = transfer_box(op.region, self.shapes.get(op.device))
            if box is not None:
                reads[(_HOST, op.host)] = (box,)
                writes[(_DEV, op.device)] = (box,)
        elif isinstance(op, DeviceToHost):
            box = transfer_box(op.region, self.shapes.get(op.device))
            if box is not None:
                reads[(_DEV, op.device)] = (box,)
                writes[(_HOST, op.host)] = (box,)
        elif isinstance(op, LaunchKernel):
            r, w = launch_access_boxes(op)
            reads = {(_DEV, buf): boxes for buf, boxes in r.items()}
            writes = {(_DEV, buf): boxes for buf, boxes in w.items()}
        elif isinstance(op, HostCompute):
            reads = {(_HOST, n): (Box(()),) for n in op.reads}
            writes = {(_HOST, n): (Box(()),) for n in op.writes}
        elif isinstance(op, FreeDevice):
            # a free invalidates the whole buffer
            writes[(_DEV, op.buffer)] = (
                transfer_box(None, self.shapes.get(op.buffer)),
            )
        result = (reads, writes)
        self._acc[i] = result
        return result

    def boxes(self, i: int, resource, write: bool) -> tuple[Box, ...]:
        reads, writes = self.accesses(i)
        return (writes if write else reads).get(resource, ())

    def pair_conflicts(
        self, i: int, write_i: bool, j: int, write_j: bool, resource
    ) -> bool:
        """May the given access pair overlap?  Empty access sets (an empty
        index space, or a declared-but-untouched intent) cannot conflict."""
        bi = self.boxes(i, resource, write_i)
        bj = self.boxes(j, resource, write_j)
        if not bi or not bj:
            return False
        return any(boxes_overlap(a, b) for a in bi for b in bj)

    def may_alias(self, i: int, j: int) -> bool:
        """May ops ``i`` and ``j`` conflict (overlap with a write involved)
        on any resource?  ``False`` proves the two ops independent."""
        ri, wi = self.accesses(i)
        rj, wj = self.accesses(j)
        for res in set(wi) | set(wj) | (set(ri) & set(rj)):
            for a_write, a_tab in ((False, ri), (True, wi)):
                for b_write, b_tab in ((False, rj), (True, wj)):
                    if not (a_write or b_write):
                        continue
                    for a in a_tab.get(res, ()):
                        for b in b_tab.get(res, ()):
                            if boxes_overlap(a, b):
                                return True
        return False

    def independent(self, i: int, j: int) -> bool:
        return not self.may_alias(i, j)

    def write_coverage(self, writes, buffer: str) -> bool:
        """``must_cover`` over a buffer by name: do the exact write boxes
        initialise every element?"""
        shape = self.shapes.get(buffer)
        if shape is None:
            return False
        return must_cover(writes, shape)


# ---------------------------------------------------------------------------
# the registry pass: surface where precision was lost


def find_region_reports(program: DeviceProgram) -> list[Diagnostic]:
    """REGION001 info findings: launches whose access regions fell back to
    the whole buffer.  These mark exactly where the optimiser and the
    scheduler lose the independence the paper's abstractions promise."""
    out: list[Diagnostic] = []
    where = f"program {program.name!r}"
    for i, op in enumerate(program.ops):
        if not isinstance(op, LaunchKernel):
            continue
        reads, writes = launch_access_boxes(op)
        for mode, table in (("read", reads), ("write", writes)):
            for buf in sorted(table):
                if any(b.fallback for b in table[buf]):
                    out.append(
                        Diagnostic(
                            code="REGION001",
                            severity="info",
                            message=(
                                f"ops[{i}] launch {op.kernel.name!r}: {mode} "
                                f"region of device buffer {buf!r} is not "
                                f"statically analysable; assuming the whole "
                                f"buffer (imprecise)"
                            ),
                            location=where,
                            hint=(
                                "keep index expressions affine in the "
                                "generator indices to retain region precision"
                            ),
                        )
                    )
    return out


def region_nbytes(op, shapes: dict[str, tuple[int, ...]], itemsize: int) -> int | None:
    """Bytes moved by a transfer op, honouring a partial ``region``."""
    if getattr(op, "region", None) is not None:
        return region_count(op.region) * itemsize
    shape = shapes.get(op.device)
    return None if shape is None else prod(shape) * itemsize
