"""Coalescing lint: flag kernels with non-unit adjacent-thread strides.

Reuses the Fermi transaction model of :mod:`repro.gpu.coalescing` and the
2-point probe of :func:`repro.ir.metrics.probe_access_profile` (stride
between adjacent threads along the fastest-varying grid dimension).  A
kernel whose accesses are not stride-0/1 moves more 128-byte lines than it
uses; the lint reports the worst stride and the mean traffic inflation so
the finding is actionable next to the cost model's numbers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.gpu.coalescing import access_efficiency, mean_inflation
from repro.gpu.device import GTX480, DeviceSpec
from repro.ir.kernel import Kernel
from repro.ir.metrics import probe_access_profile

__all__ = ["check_kernel_coalescing"]


def check_kernel_coalescing(
    kernel: Kernel,
    device: DeviceSpec | None = None,
    location: str = "",
) -> list[Diagnostic]:
    """A COALESCE001 warning when ``kernel`` has uncoalesced accesses."""
    device = device or GTX480
    if kernel.space.is_empty():
        return []
    profile = probe_access_profile(kernel)
    itemsize = max(
        (int(np.dtype(a.dtype).itemsize) for a in kernel.arrays), default=4
    )
    strides = list(profile.read_strides) + list(profile.write_strides)
    bad = [s for s in strides if access_efficiency(s, itemsize, device) < 0.999]
    if not bad:
        return []
    worst = max(bad, key=abs)
    eff = access_efficiency(worst, itemsize, device)
    inflation = mean_inflation(strides, itemsize, device)
    where = location or f"kernel {kernel.name!r}"
    return [
        Diagnostic(
            code="COALESCE001",
            severity="warning",
            message=(
                f"{len(bad)} of {len(strides)} accesses are uncoalesced "
                f"(worst stride {worst} elements, {eff:.0%} efficient; mean "
                f"traffic inflation {inflation:.2f}x)"
            ),
            location=where,
            hint=(
                "make the fastest-varying thread index the innermost array "
                "subscript (stride 1 between adjacent threads)"
            ),
        )
    ]
