"""Static analysis & diagnostics over the repro compilation artifacts.

Named analyzer passes run over shared-IR device programs, SaC ASTs and
ArrayOL models, producing structured :class:`~repro.analysis.diagnostics.
Diagnostic` records (stable code, severity, location, fix hint) instead of
exceptions — the machinery behind the ``repro lint`` subcommand and the
``lint=`` options of both backends.
"""

from repro.analysis.baseline import (
    Baseline,
    SuppressionRule,
    apply_baseline,
    load_baseline,
    parse_baseline,
)
from repro.analysis.bounds import AccessCheck, check_kernel_bounds
from repro.analysis.coalesce import check_kernel_coalescing
from repro.analysis.diagnostics import (
    CODES,
    EXPLAIN,
    SEVERITIES,
    Diagnostic,
    count_by_severity,
    dedupe_diagnostics,
    has_errors,
    max_severity,
)
from repro.analysis.hazards import HappensBefore, build_happens_before, find_hazards
from repro.analysis.intervals import TOP, Interval
from repro.analysis.lifetime import check_lifetimes
from repro.analysis.regions import (
    Box,
    RegionOracle,
    Seg,
    box_contains,
    box_from_dict,
    boxes_overlap,
    find_region_reports,
    full_box,
    kernel_access_boxes,
    launch_access_boxes,
    must_cover,
    progression_box,
    transfer_box,
)
from repro.analysis.registry import (
    KINDS,
    AnalysisContext,
    AnalyzerPass,
    analyze_model,
    analyze_program,
    analyze_sac_program,
    get_pass,
    register_pass,
    registered_passes,
    run_passes,
)
from repro.analysis.render import render_json, render_text, sort_diagnostics
from repro.analysis.saclint import (
    find_binding_lints,
    find_generator_overlaps,
    lint_sac_program,
)
from repro.analysis.tilerlint import lint_model, lint_tiler
from repro.analysis.transfers import find_transfer_waste

__all__ = [
    "CODES",
    "EXPLAIN",
    "SEVERITIES",
    "Diagnostic",
    "dedupe_diagnostics",
    "Seg",
    "Box",
    "box_from_dict",
    "full_box",
    "boxes_overlap",
    "box_contains",
    "must_cover",
    "progression_box",
    "kernel_access_boxes",
    "launch_access_boxes",
    "transfer_box",
    "RegionOracle",
    "find_region_reports",
    "check_lifetimes",
    "Interval",
    "TOP",
    "AccessCheck",
    "check_kernel_bounds",
    "check_kernel_coalescing",
    "HappensBefore",
    "build_happens_before",
    "find_hazards",
    "find_transfer_waste",
    "find_binding_lints",
    "find_generator_overlaps",
    "lint_sac_program",
    "lint_tiler",
    "lint_model",
    "max_severity",
    "has_errors",
    "count_by_severity",
    "KINDS",
    "AnalysisContext",
    "AnalyzerPass",
    "register_pass",
    "registered_passes",
    "get_pass",
    "run_passes",
    "analyze_program",
    "analyze_sac_program",
    "analyze_model",
    "render_text",
    "render_json",
    "sort_diagnostics",
    "Baseline",
    "SuppressionRule",
    "parse_baseline",
    "load_baseline",
    "apply_baseline",
]
