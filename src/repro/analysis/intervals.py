"""Integer interval arithmetic with C semantics.

The bounds checker abstracts every kernel scalar expression to an
:class:`Interval` ``[lo, hi]`` (endpoints may be ``±inf``).  Division and
modulo follow the C truncation semantics of :func:`repro.ir.expr.c_div` /
:func:`repro.ir.expr.c_mod`, matching what the vectorised evaluator and the
emitted CUDA/OpenCL actually compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf

__all__ = ["Interval", "TOP"]


def _trunc_div(a: float, b: float) -> float:
    """C division on (possibly infinite) endpoint values."""
    if a in (inf, -inf):
        sign = 1 if (a > 0) == (b > 0) else -1
        return sign * inf
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b > 0) else -q


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (``±inf`` endpoints allowed)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def point(v: float) -> "Interval":
        return Interval(v, v)

    @property
    def is_bounded(self) -> bool:
        return self.lo != -inf and self.hi != inf

    def contains(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        cands = [
            _mul(a, b) for a in (self.lo, self.hi) for b in (other.lo, other.hi)
        ]
        return Interval(min(cands), max(cands))

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0, max(-self.lo, self.hi))

    def min(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def c_div(self, other: "Interval") -> "Interval":
        """C (truncating) division; TOP when the divisor may be zero."""
        if other.lo <= 0 <= other.hi:
            return TOP
        cands = [
            _trunc_div(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(cands), max(cands))

    def c_mod(self, other: "Interval") -> "Interval":
        """C remainder (sign of the dividend)."""
        if other.lo <= 0 <= other.hi:
            return TOP
        m = max(abs(other.lo), abs(other.hi))  # |result| < m
        lo, hi = -(m - 1), m - 1
        if self.lo >= 0:
            lo = 0
        if self.hi <= 0:
            hi = 0
        # |result| <= |dividend| as well
        if self.is_bounded:
            bound = max(abs(self.lo), abs(self.hi))
            lo, hi = max(lo, -bound), min(hi, bound)
        return Interval(lo, hi)

    def __str__(self) -> str:
        def fmt(v: float) -> str:
            if v == inf:
                return "+inf"
            if v == -inf:
                return "-inf"
            return str(int(v))

        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


def _mul(a: float, b: float) -> float:
    if a == 0 or b == 0:
        return 0  # 0 * inf -> 0: the sup is attained at the other endpoint
    return a * b


#: The unbounded interval (analysis knows nothing).
TOP = Interval(-inf, inf)
