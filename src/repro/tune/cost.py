"""Modelled candidate cost: the tuner's objective.

A candidate is priced without functional execution: the compiled
program's static shape (:class:`~repro.opt.ProgramStats`) supplies
transferred bytes and launch count, and a whole-resource-edge
:func:`~repro.runtime.schedule.build_schedule` replay over a few frames
supplies the modelled makespan under the candidate's depth and placement.
The three numbers compare **lexicographically** — makespan first, then
transferred bytes, then launches — so "never worse than the default"
and "strictly better" are plain tuple comparisons with no magic weights.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CandidateCost"]


@dataclass(frozen=True, order=True)
class CandidateCost:
    """Lexicographic (makespan, transferred bytes, launches) objective."""

    #: modelled pipeline makespan over the costing frames, microseconds
    makespan_us: float
    #: bytes crossing PCIe per program run (static, from the op stream)
    transferred_bytes: int
    #: kernel launches per program run
    launches: int

    def better_than(self, other: "CandidateCost") -> bool:
        return self < other

    def as_dict(self) -> dict:
        # the makespan stays un-rounded: records digest their canonical
        # serialisation, so a lossy dict round-trip would change content
        return {
            "makespan_us": self.makespan_us,
            "transferred_bytes": self.transferred_bytes,
            "launches": self.launches,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CandidateCost":
        return cls(
            makespan_us=float(d["makespan_us"]),
            transferred_bytes=int(d["transferred_bytes"]),
            launches=int(d["launches"]),
        )
