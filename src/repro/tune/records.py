"""Tuning records: the persisted outcome of one search.

A :class:`TuningRecord` is what an ahead-of-time consumer needs to
reproduce the winner without re-searching: the winning
:class:`~repro.tune.space.TuneConfig`, its modelled cost, the default
config's cost it was gated against, and the search provenance (seed,
candidates visited, distinct evaluations).  Records live in the
:class:`~repro.runtime.cache.CompileCache` under
:func:`~repro.runtime.cache.tune_record_key` and serialise through the
PR-5 canonical content serialiser — the ``content`` digest is stable
across processes, so an AOT bundle can verify it holds the record the
search actually produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.runtime.cache import _digest, canonical
from repro.tune.cost import CandidateCost
from repro.tune.space import TuneConfig

__all__ = ["TuningRecord"]


@dataclass(frozen=True)
class TuningRecord:
    """The winner of one (app, route, size) search, with provenance."""

    app: str
    route: str
    size: str
    config: TuneConfig
    cost: CandidateCost
    default_cost: CandidateCost
    seed: int
    #: candidates visited (memoised revisits included)
    candidates: int
    #: distinct cost evaluations actually computed
    evaluations: int

    @property
    def content(self) -> str:
        """Content digest of the record (the canonical serialisation)."""
        return _digest(canonical(self))

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "route": self.route,
            "size": self.size,
            "config": self.config.as_dict(),
            "cost": self.cost.as_dict(),
            "default_cost": self.default_cost.as_dict(),
            "seed": self.seed,
            "candidates": self.candidates,
            "evaluations": self.evaluations,
            "content": self.content,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "TuningRecord":
        record = cls(
            app=d["app"],
            route=d["route"],
            size=d["size"],
            config=TuneConfig.from_dict(d["config"]),
            cost=CandidateCost.from_dict(d["cost"]),
            default_cost=CandidateCost.from_dict(d["default_cost"]),
            seed=d["seed"],
            candidates=d["candidates"],
            evaluations=d["evaluations"],
        )
        stored = d.get("content")
        if stored is not None and stored != record.content:
            from repro.errors import ReproError

            raise ReproError(
                f"tuning record content digest mismatch for "
                f"{record.app}/{record.route}/{record.size}: the record was "
                f"altered after serialisation"
            )
        return record

    @classmethod
    def from_json(cls, text: str) -> "TuningRecord":
        return cls.from_dict(json.loads(text))
