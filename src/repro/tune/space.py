"""The tuner's search space: every knob the certified optimiser exposes.

A :class:`TuneConfig` bundles one point of the legal configuration
space:

* the ``repro.opt`` pass configuration — the five toggles **and** the
  tail-pass order (``OptOptions.order``), or ``None`` for the
  paper-literal un-optimised program;
* the transfer placement (``boundary`` vs ``per_kernel``, paper
  Section VII);
* the pipeline depth (double-buffer bound; ``None`` = unbounded);
* the ArrayOL paving granularity (packets fused per repetition step,
  pre-validated by the region oracle — see
  :func:`repro.tilers.coarsen_paving`);
* the fleet placement policy (only explored when the subject runs on
  more than one device).

:func:`enumerate_pass_configs` is the exhaustive phase-1 grid;
:func:`neighbours` yields the single-knob moves of the phase-2 greedy
search.  Both are deterministic enumerations — the only randomness in
the search is the seeded restart choice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.opt import TAIL_PASSES, OptOptions

__all__ = [
    "TuneConfig",
    "DEFAULT_CONFIG",
    "DEPTH_CHOICES",
    "TRANSFER_CHOICES",
    "PLACEMENT_CHOICES",
    "enumerate_pass_configs",
    "enumerate_opt_options",
    "neighbours",
]

#: pipeline depth candidates (physical buffer slots per device buffer);
#: ``None`` models unbounded buffering
DEPTH_CHOICES: tuple[int | None, ...] = (1, 2, 3, 4, None)
#: transfer placements both routes accept
TRANSFER_CHOICES: tuple[str, ...] = ("boundary", "per_kernel")
#: fleet placement policies (:func:`repro.runtime.fleet.make_placement`)
PLACEMENT_CHOICES: tuple[str, ...] = (
    "round-robin", "least-loaded", "cache-affinity",
)


@dataclass(frozen=True)
class TuneConfig:
    """One point of the tuner's configuration space.

    The defaults reproduce what :class:`~repro.runtime.pipeline.
    FramePipeline` does when nothing is tuned — the paper-literal
    program at depth 2 — so the default config is the baseline every
    winner is gated against.  Every field participates in the
    compile-cache tuning keys through :func:`repro.runtime.cache.
    canonical`.
    """

    #: optimiser configuration; ``None`` = paper-literal (no optimiser)
    opt: OptOptions | None = None
    #: transfer placement fed to the route's compile options
    transfers: str = "boundary"
    #: pipeline double-buffer bound (``None`` = unbounded)
    depth: int | None = 2
    #: ArrayOL paving granularity (1 = the paper's Figure 10 tilers)
    paving: int = 1
    #: fleet placement policy (relevant only when devices > 1)
    placement: str = "round-robin"

    def describe(self) -> str:
        opt = "paper-literal" if self.opt is None else "+".join(
            self.opt.enabled_passes
        ) or "no-pass"
        depth = "unbounded" if self.depth is None else str(self.depth)
        parts = [opt, self.transfers, f"depth={depth}"]
        if self.paving != 1:
            parts.append(f"paving=x{self.paving}")
        if self.placement != "round-robin":
            parts.append(self.placement)
        return " ".join(parts)

    def as_dict(self) -> dict:
        return {
            "opt": None if self.opt is None else {
                "dce": self.opt.dce,
                "transfers": self.opt.transfers,
                "fusion": self.opt.fusion,
                "sibling_fusion": self.opt.sibling_fusion,
                "pooling": self.opt.pooling,
                "order": None if self.opt.order is None else list(self.opt.order),
            },
            "transfers": self.transfers,
            "depth": self.depth,
            "paving": self.paving,
            "placement": self.placement,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuneConfig":
        opt = d.get("opt")
        if opt is not None:
            order = opt.get("order")
            opt = OptOptions(
                dce=opt["dce"],
                transfers=opt["transfers"],
                fusion=opt["fusion"],
                sibling_fusion=opt["sibling_fusion"],
                pooling=opt["pooling"],
                order=None if order is None else tuple(order),
            )
        return cls(
            opt=opt,
            transfers=d["transfers"],
            depth=d["depth"],
            paving=d["paving"],
            placement=d["placement"],
        )


DEFAULT_CONFIG = TuneConfig()


def enumerate_opt_options() -> tuple[OptOptions | None, ...]:
    """Every distinct optimiser configuration: ``None`` plus all toggle
    combinations x all *distinguishable* tail-pass orders.

    Two full-tail permutations that order the **enabled** passes
    identically produce the same pipeline, so only one representative per
    enabled-subsequence is emitted (the canonical order when no tail pass
    or one tail pass is on).  All emitted options keep ``certify=True`` —
    the tuner never leaves the certified space.
    """
    out: list[OptOptions | None] = [None]
    for dce, transfers, fusion, sibling, pooling in itertools.product(
        (True, False), repeat=5
    ):
        enabled = {
            "fusion": fusion, "sibling-fusion": sibling, "pooling": pooling,
        }
        seen: set[tuple[str, ...]] = set()
        for perm in itertools.permutations(TAIL_PASSES):
            key = tuple(p for p in perm if enabled[p])
            if key in seen:
                continue
            seen.add(key)
            out.append(OptOptions(
                dce=dce, transfers=transfers, fusion=fusion,
                sibling_fusion=sibling, pooling=pooling,
                order=None if perm == TAIL_PASSES else perm,
            ))
    return tuple(out)


def enumerate_pass_configs(base: TuneConfig = DEFAULT_CONFIG) -> tuple[TuneConfig, ...]:
    """The exhaustive phase-1 grid: pass configs x transfer placements.

    Depth, paving and placement stay at ``base`` — phase 1 isolates the
    program-shaping knobs; the combinatorial runtime knobs are phase 2's
    greedy territory.
    """
    return tuple(
        replace(base, opt=opt, transfers=tr)
        for opt in enumerate_opt_options()
        for tr in TRANSFER_CHOICES
    )


def neighbours(
    config: TuneConfig,
    pavings: tuple[int, ...] = (1,),
    devices: int = 1,
) -> tuple[TuneConfig, ...]:
    """Single-knob mutations of ``config`` — the greedy move set.

    ``pavings`` is the subject's *legal* granularity list (already
    filtered through the region oracle); ``devices`` gates the placement
    dimension.  The move set is complete over the knobs: every config of
    the joint space is reachable from any other through a chain of
    neighbours.
    """
    moves: list[TuneConfig] = []
    for depth in DEPTH_CHOICES:
        if depth != config.depth:
            moves.append(replace(config, depth=depth))
    for tr in TRANSFER_CHOICES:
        if tr != config.transfers:
            moves.append(replace(config, transfers=tr))
    for g in pavings:
        if g != config.paving:
            moves.append(replace(config, paving=g))
    if devices > 1:
        for pl in PLACEMENT_CHOICES:
            if pl != config.placement:
                moves.append(replace(config, placement=pl))
    # optimiser moves: enable the default pipeline / go paper-literal,
    # toggle each pass, swap adjacent tail-order entries
    if config.opt is None:
        moves.append(replace(config, opt=OptOptions()))
    else:
        moves.append(replace(config, opt=None))
        opt = config.opt
        for field in ("dce", "transfers", "fusion", "sibling_fusion", "pooling"):
            moves.append(replace(
                config, opt=replace(opt, **{field: not getattr(opt, field)})
            ))
        order = opt.effective_order
        for i in range(len(order) - 1):
            swapped = list(order)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            swapped = tuple(swapped)
            if swapped != order:
                moves.append(replace(
                    config,
                    opt=replace(
                        opt,
                        order=None if swapped == TAIL_PASSES else swapped,
                    ),
                ))
    return tuple(moves)
