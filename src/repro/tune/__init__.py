"""repro.tune: cost-model autotuning over the certified optimisation space.

The paper fixes one configuration per route — the Figure 10 pavings, the
boundary transfer placement, a depth-2 pipeline and the full optimiser.
Each of those is actually a *knob*, and the legality machinery built in
earlier PRs (the region oracle, the optimiser's certification gate, the
paving footprint-equivalence check) makes the whole space safe to
search: an illegal point either never enumerates (pavings) or is
rejected by the certifier (pass configurations).

This package searches that space with **modelled** cost — static program
stats plus a dependence-scheduled replay of a few frames, no functional
execution — so hundreds of candidates cost only tens of compiles, then
re-runs the winner bit-exactly with certification forced on.  Winners
persist as :class:`~repro.tune.records.TuningRecord` entries in the
:class:`~repro.runtime.cache.CompileCache`, keyed per (app, route,
size), for ahead-of-time consumption.
"""

from repro.tune.cost import CandidateCost
from repro.tune.records import TuningRecord
from repro.tune.search import TuneResult, tune
from repro.tune.space import (
    DEFAULT_CONFIG,
    DEPTH_CHOICES,
    PLACEMENT_CHOICES,
    TRANSFER_CHOICES,
    TuneConfig,
    enumerate_opt_options,
    enumerate_pass_configs,
    neighbours,
)
from repro.tune.subjects import (
    ConvolutionSubject,
    DownscalerSubject,
    ProgramSubject,
    TuneSubject,
    make_subject,
)

__all__ = [
    "CandidateCost",
    "TuneConfig",
    "TuneResult",
    "TuneSubject",
    "TuningRecord",
    "DownscalerSubject",
    "ConvolutionSubject",
    "ProgramSubject",
    "make_subject",
    "tune",
    "DEFAULT_CONFIG",
    "DEPTH_CHOICES",
    "PLACEMENT_CHOICES",
    "TRANSFER_CHOICES",
    "enumerate_opt_options",
    "enumerate_pass_configs",
    "neighbours",
]
