"""The search driver: exhaustive pass grid, then greedy with restarts.

:func:`tune` explores the legal configuration space in two phases:

1. **Exhaustive** over the program-shaping knobs — every distinct
   optimiser configuration (toggles x distinguishable tail-pass orders,
   plus the paper-literal ``None``) crossed with both transfer
   placements, at the baseline depth/paving/placement.
2. **Greedy with random restarts** over the joint combinatorial space:
   from seeded starting points, repeatedly move to the best improving
   single-knob neighbour (depth, paving, placement, transfers, optimiser
   mutation) until a local optimum, restarting until the candidate
   budget is spent.  The only randomness is the seeded restart draw —
   same seed, same winner.

Every candidate is priced by the modelled cost only (static program
stats + a whole-resource-edge schedule replay; no functional execution),
memoised in the :class:`~repro.runtime.cache.CompileCache` under
:func:`~repro.runtime.cache.tune_eval_key` — revisits are free, which is
what lets a few hundred visited candidates cost only tens of distinct
compiles.  Configurations the certifier rejects (:class:`~repro.errors.
OptError`) are recorded as infeasible and never become the winner.

The winner is then **re-executed bit-exactly**: compiled with
certification forced on and run functionally against the subject's
golden outputs.  A winner that fails either gate raises — the tuner
never silently hands back an uncertified or wrong configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import OptError, ReproError
from repro.opt.report import ProgramStats
from repro.runtime.cache import CompileCache, tune_eval_key, tune_record_key
from repro.tune.cost import CandidateCost
from repro.tune.records import TuningRecord
from repro.tune.space import DEFAULT_CONFIG, TuneConfig, enumerate_pass_configs, neighbours
from repro.tune.subjects import TuneSubject

__all__ = ["TuneResult", "tune"]


@dataclass
class TuneResult:
    """Everything one :func:`tune` call established."""

    subject: TuneSubject
    record: TuningRecord
    default_cost: CandidateCost
    winner: TuneConfig
    winner_cost: CandidateCost
    #: candidates visited, memoised revisits included
    candidates: int
    #: distinct cost evaluations computed
    evaluations: int
    #: configs the certifier rejected
    rejected: int
    #: (visited-count, best-so-far makespan) trace for reporting
    trace: list[tuple[int, float]] = field(default_factory=list)
    #: winner re-executed bit-exactly with certification on
    validated: bool = False

    @property
    def improved(self) -> bool:
        return self.winner_cost < self.default_cost

    def as_dict(self) -> dict:
        return {
            "app": self.subject.app,
            "route": self.subject.route,
            "size": self.subject.size_name,
            "default": {
                "config": DEFAULT_CONFIG.as_dict(),
                "cost": self.default_cost.as_dict(),
            },
            "winner": {
                "config": self.winner.as_dict(),
                "cost": self.winner_cost.as_dict(),
                "describe": self.winner.describe(),
            },
            "candidates": self.candidates,
            "evaluations": self.evaluations,
            "rejected": self.rejected,
            "improved": self.improved,
            "validated": self.validated,
            "record_content": self.record.content,
        }


class _Evaluator:
    """Prices configurations; memoises through the compile cache."""

    def __init__(
        self,
        subject: TuneSubject,
        cache: CompileCache,
        executor,
        frames: int,
        devices: int,
    ):
        self.subject = subject
        self.cache = cache
        self.executor = executor
        self.frames = frames
        self.devices = devices
        self.topology = None
        if devices > 1:
            from repro.runtime.fleet import DeviceTopology

            self.topology = DeviceTopology.build(devices)
        self.candidates = 0
        self.evaluations = 0
        self.rejected = 0

    def cost_of(self, config: TuneConfig) -> CandidateCost | None:
        """Modelled cost, or ``None`` when the certifier rejects."""
        self.candidates += 1
        key = tune_eval_key(
            self.subject.app, self.subject.route, self.subject.size_token,
            (config, self.frames, self.devices),
        )
        if key in self.cache:
            return self.cache.peek(key)
        self.evaluations += 1

        def build():
            from repro.runtime.schedule import build_schedule

            try:
                program = self.subject.compile(self.cache, config)
            except OptError:
                return None
            stats = ProgramStats.of(program)
            runs = self.frames * self.subject.instances_per_frame
            schedule = build_schedule(
                program,
                self.executor,
                runs=runs,
                depth=config.depth,
                regions=False,
                topology=self.topology,
                placement=config.placement,
                frame_batch=self.subject.instances_per_frame,
            )
            return CandidateCost(
                makespan_us=schedule.makespan_us,
                transferred_bytes=stats.transferred_bytes,
                launches=stats.launches,
            )

        cost = self.cache.get_or_compile(key, build)
        if cost is None:
            self.rejected += 1
        return cost


def _validate_winner(
    subject: TuneSubject, cache: CompileCache, config: TuneConfig
) -> None:
    """Re-run the winner bit-exactly with certification forced on."""
    from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor

    certified = config
    if config.opt is not None and not config.opt.certify:
        certified = replace(config, opt=replace(config.opt, certify=True))
    # certification happens inside compile (OptError propagates here)
    program = subject.compile(cache, certified)
    executor = GPUExecutor(CostModel(GTX480_CALIBRATED))
    for instance in range(subject.instances_per_frame):
        result = executor.run(program, subject.env(instance))
        for name, expected in subject.golden(instance, program).items():
            got = result.outputs.get(name)
            if got is None or not np.array_equal(got, expected):
                raise ReproError(
                    f"tuned winner of {subject.app}/{subject.route} is not "
                    f"bit-exact on output {name!r} (instance {instance})"
                )


def tune(
    subject: TuneSubject,
    budget: int = 200,
    seed: int = 0,
    frames: int = 4,
    devices: int = 1,
    cache: CompileCache | None = None,
    executor=None,
    validate: bool = True,
) -> TuneResult:
    """Search the legal configuration space of ``subject``.

    ``budget`` bounds the candidates *visited* (memoised revisits count —
    they are the search's steps, even when free).  The default
    configuration is always evaluated first and the winner can never be
    worse than it: the default is in the candidate set, and comparison is
    the lexicographic :class:`~repro.tune.cost.CandidateCost` order.
    """
    if budget < 1:
        raise ReproError("tuning budget must be >= 1")
    cache = CompileCache() if cache is None else cache
    if executor is None:
        from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor

        executor = GPUExecutor(CostModel(GTX480_CALIBRATED))

    ev = _Evaluator(subject, cache, executor, frames, devices)
    rng = random.Random(seed)
    pavings = tuple(subject.pavings)

    best_cost = ev.cost_of(DEFAULT_CONFIG)
    if best_cost is None:
        raise ReproError(
            "the default configuration failed certification — the baseline "
            "must always be evaluable"
        )
    default_cost = best_cost
    best = DEFAULT_CONFIG
    trace: list[tuple[int, float]] = [(ev.candidates, best_cost.makespan_us)]

    # phase 1: exhaustive over the program-shaping knobs
    phase1 = enumerate_pass_configs(DEFAULT_CONFIG)
    for config in phase1:
        if ev.candidates >= budget:
            break
        cost = ev.cost_of(config)
        if cost is not None and cost < best_cost:
            best, best_cost = config, cost
            trace.append((ev.candidates, cost.makespan_us))

    # phase 2: greedy hill-climbing with seeded random restarts over the
    # joint (depth x paving x placement x transfers x opt) space
    def random_start() -> TuneConfig:
        base = phase1[rng.randrange(len(phase1))]
        from repro.tune.space import DEPTH_CHOICES, PLACEMENT_CHOICES

        return replace(
            base,
            depth=rng.choice(DEPTH_CHOICES),
            paving=rng.choice(pavings) if pavings else 1,
            placement=(
                rng.choice(PLACEMENT_CHOICES) if devices > 1 else "round-robin"
            ),
        )

    first_restart = True
    while ev.candidates < budget:
        current = best if first_restart else random_start()
        first_restart = False
        current_cost = ev.cost_of(current)
        while current_cost is None and ev.candidates < budget:
            current = random_start()
            current_cost = ev.cost_of(current)
        if current_cost is None:
            break
        improved = True
        while improved and ev.candidates < budget:
            improved = False
            step_best, step_cost = None, current_cost
            for move in neighbours(current, pavings=pavings, devices=devices):
                if ev.candidates >= budget:
                    break
                cost = ev.cost_of(move)
                if cost is not None and cost < step_cost:
                    step_best, step_cost = move, cost
            if step_best is not None:
                current, current_cost = step_best, step_cost
                improved = True
                if current_cost < best_cost:
                    best, best_cost = current, current_cost
                    trace.append((ev.candidates, current_cost.makespan_us))

    if validate:
        _validate_winner(subject, cache, best)

    record = TuningRecord(
        app=subject.app,
        route=subject.route,
        size=subject.size_name,
        config=best,
        cost=best_cost,
        default_cost=default_cost,
        seed=seed,
        candidates=ev.candidates,
        evaluations=ev.evaluations,
    )
    cache.store(
        tune_record_key(subject.app, subject.route, subject.size_token), record
    )

    return TuneResult(
        subject=subject,
        record=record,
        default_cost=default_cost,
        winner=best,
        winner_cost=best_cost,
        candidates=ev.candidates,
        evaluations=ev.evaluations,
        rejected=ev.rejected,
        trace=trace,
        validated=validate,
    )
