"""What the tuner tunes: an application x route bound to golden outputs.

A :class:`TuneSubject` knows how to compile itself under a
:class:`~repro.tune.space.TuneConfig` (through the shared
:class:`~repro.runtime.cache.CompileCache`, so repeated configurations
are free), which paving granularities the region oracle admits, and what
the bit-exact outputs of one frame are — the re-execution gate every
winner must pass.

Three subjects cover the repository's surfaces: the H.263 downscaler
(both routes, the only app with a non-trivial paving dimension), the
separable convolution (both routes, paving fixed at 1), and a raw
:class:`~repro.ir.program.DeviceProgram` wrapper used by the property
tests to drive the search over arbitrary generated programs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.ir.program import DeviceProgram
from repro.runtime.cache import CompileCache
from repro.tune.space import TuneConfig

__all__ = [
    "TuneSubject",
    "DownscalerSubject",
    "ConvolutionSubject",
    "ProgramSubject",
    "make_subject",
]


class TuneSubject:
    """One tunable application x route binding.

    Subclasses set :attr:`app`, :attr:`route`, :attr:`size_token` (any
    :func:`~repro.runtime.cache.canonical`-serialisable size descriptor),
    :attr:`pavings` (region-oracle-legal granularities) and
    :attr:`instances_per_frame`, and implement :meth:`compile`,
    :meth:`env` and :meth:`golden`.
    """

    app: str
    route: str
    size_token: object
    size_name: str
    pavings: tuple[int, ...] = (1,)
    instances_per_frame: int = 1

    def compile(self, cache: CompileCache, config: TuneConfig) -> DeviceProgram:
        raise NotImplementedError

    def env(self, instance: int) -> dict[str, np.ndarray]:
        """Host inputs of one program run of the costing frame."""
        raise NotImplementedError

    def golden(self, instance: int, program: DeviceProgram) -> dict[str, np.ndarray]:
        """Expected host outputs of that run — the bit-exactness oracle."""
        raise NotImplementedError


class DownscalerSubject(TuneSubject):
    """The H.263 downscaler on one route at one frame size.

    The only subject with a live paving dimension:
    :func:`~repro.apps.downscaler.config.legal_pavings` supplies the
    granularities the region oracle proves footprint-equivalent to the
    Figure 10 tilers.
    """

    app = "downscaler"

    def __init__(self, route: str, size=None, variant: str | None = None):
        from repro.apps.downscaler.config import HD, legal_pavings
        from repro.apps.downscaler.sac_sources import NONGENERIC
        from repro.apps.downscaler.serving import downscaler_job

        if route not in ("sac", "gaspard"):
            raise ReproError(f"unknown tuning route {route!r}")
        self.route = route
        self.size = HD if size is None else size
        self.size_token = self.size
        self.size_name = self.size.name or f"{self.size.rows}x{self.size.cols}"
        self.variant = NONGENERIC if variant is None else variant
        self.pavings = legal_pavings(self.size)
        self._job = downscaler_job(route, self.size, self.variant)
        self.instances_per_frame = self._job.instances_per_frame

    def compile(self, cache: CompileCache, config: TuneConfig) -> DeviceProgram:
        from repro.apps.downscaler.serving import downscaler_job

        job = downscaler_job(
            self.route, self.size, self.variant,
            opt=config.opt, transfers=config.transfers, paving=config.paving,
        )
        return job.compile(cache)

    def env(self, instance: int) -> dict[str, np.ndarray]:
        return self._job.env(0, instance)

    def golden(self, instance: int, program: DeviceProgram) -> dict[str, np.ndarray]:
        return self._job.golden(0, instance, program)


class ConvolutionSubject(TuneSubject):
    """The separable Gaussian convolution on one route.

    No paving dimension (its tilers are already one element per step),
    so the tuner exercises pass configuration, transfer placement and
    depth only.
    """

    app = "convolution"

    def __init__(self, route: str, rows: int = 96, cols: int = 128, seed: int = 7):
        from repro.apps.convolution import convolve, gaussian3

        if route not in ("sac", "gaspard"):
            raise ReproError(f"unknown tuning route {route!r}")
        self.route = route
        self.config = gaussian3(rows, cols)
        self.size_token = (rows, cols, self.config.taps)
        self.size_name = f"{rows}x{cols}"
        rng = np.random.default_rng(seed)
        self._image = rng.uniform(0.0, 255.0, size=(rows, cols))
        self._image.setflags(write=False)
        self._golden = convolve(self._image, self.config)
        self._golden.setflags(write=False)

    def compile(self, cache: CompileCache, config: TuneConfig) -> DeviceProgram:
        if self.route == "sac":
            from repro.apps.convolution import convolution_program_source
            from repro.sac.backend import CompileOptions

            cf = cache.compile_sac(
                convolution_program_source(self.config),
                "blur",
                CompileOptions(
                    target="cuda", opt=config.opt, transfers=config.transfers
                ),
            )
            return cf.program
        from repro.apps.convolution import convolution_allocation, convolution_model

        ctx, _ = cache.compile_gaspard(
            convolution_model(self.config),
            convolution_allocation(),
            opt=config.opt,
            transfers=config.transfers,
        )
        return ctx.program

    def env(self, instance: int) -> dict[str, np.ndarray]:
        name = "img" if self.route == "sac" else "image"
        return {name: self._image}

    def golden(self, instance: int, program: DeviceProgram) -> dict[str, np.ndarray]:
        if self.route == "sac":
            return {program.host_outputs[0]: self._golden}
        return {"blurred": self._golden}


class ProgramSubject(TuneSubject):
    """A raw device program: the property tests' harness.

    The paving dimension is empty and transfer placement is baked into
    the program, so only the optimiser configuration and depth move; the
    golden outputs come from one un-optimised execution captured at
    construction.
    """

    app = "program"
    route = "raw"

    def __init__(self, program: DeviceProgram, env: dict[str, np.ndarray]):
        from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor

        self.program = program
        self.size_token = program.name
        self.size_name = program.name
        self._env = dict(env)
        result = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
            program, dict(env)
        )
        self._golden = {
            name: result.outputs[name] for name in program.host_outputs
        }

    def compile(self, cache: CompileCache, config: TuneConfig) -> DeviceProgram:
        from repro.opt import optimize_program
        from repro.runtime.cache import canonical, _digest

        if config.opt is None:
            return self.program
        key = ("tune-opt", _digest(canonical(self.program), canonical(config.opt)))

        def build():
            optimised, _report = optimize_program(self.program, config.opt)
            return optimised

        return cache.get_or_compile(key, build)

    def env(self, instance: int) -> dict[str, np.ndarray]:
        return dict(self._env)

    def golden(self, instance: int, program: DeviceProgram) -> dict[str, np.ndarray]:
        return dict(self._golden)


def make_subject(app: str, route: str, size=None) -> TuneSubject:
    """CLI-facing factory: ``app`` in ``{"downscaler", "convolution"}``."""
    if app == "downscaler":
        return DownscalerSubject(route, size=size)
    if app == "convolution":
        return ConvolutionSubject(route)
    raise ReproError(
        f"unknown tuning app {app!r} (choose from downscaler, convolution)"
    )
