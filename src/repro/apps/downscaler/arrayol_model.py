"""The downscaler as an ArrayOL/Gaspard2 application model.

Reproduces the paper's Section VIII-B setup (Figures 3 and 10): four macro
tasks — FrameGenerator (IP), HorizontalFilter and VerticalFilter (each a
compound of three repetitive tasks, one per RGB channel), FrameConstructor
(IP) — with the tiler specifications of Figure 10 parameterised by frame
size.  The IPs stand in for the paper's OpenCV video input/output (see
DESIGN.md §2); the filters carry the Figure 5 interpolation as their
elementary tasks.
"""

from __future__ import annotations

from repro.apps.downscaler.config import (
    WINDOW_TAPS,
    FilterConfig,
    FrameSize,
    horizontal_filter,
    vertical_filter,
)
from repro.arrayol import (
    Allocation,
    ApplicationModel,
    CompoundTask,
    ElementaryTask,
    GPU_CPU_PLATFORM,
    IOTask,
    Link,
    PatternExpr,
    Port,
    RepetitiveTask,
    TaskInstance,
    TilerConnector,
)
from repro.ir import expr as ir

__all__ = [
    "CHANNELS",
    "interpolation_elementary_task",
    "filter_repetitive_task",
    "filter_compound",
    "downscaler_model",
    "downscaler_allocation",
]

CHANNELS = ("r", "g", "b")


def interpolation_elementary_task(config: FilterConfig, name: str) -> ElementaryTask:
    """The Figure 5 task: 6-tap windows, ``out = tmp/6 - tmp%6``."""
    pin = Port("pin", (config.pattern,), "in")
    pout = Port("pout", (config.out_pattern,), "out")
    locals_: list[tuple[str, ir.Expr]] = []
    body: list[PatternExpr] = []
    for k, off in enumerate(config.window_offsets):
        acc: ir.Expr = ir.Read("pin", (ir.Const(off),))
        for t in range(1, WINDOW_TAPS):
            acc = ir.BinOp("+", acc, ir.Read("pin", (ir.Const(off + t),)))
        tmp = f"tmp{k}"
        locals_.append((tmp, acc))
        value = ir.BinOp(
            "-",
            ir.BinOp("/", ir.LocalRef(tmp), ir.Const(6)),
            ir.BinOp("%", ir.LocalRef(tmp), ir.Const(6)),
        )
        body.append(PatternExpr(port="pout", index=k, expr=value))
    return ElementaryTask(
        name=name,
        inputs=(pin,),
        outputs=(pout,),
        body=tuple(body),
        locals=tuple(locals_),
    )


def filter_repetitive_task(config: FilterConfig, name: str) -> RepetitiveTask:
    """One channel's filter: repetition space + Figure 10 tilers."""
    fin = Port("fin", config.frame_shape, "in")
    fout = Port("fout", config.out_shape, "out")
    inner = interpolation_elementary_task(config, f"{name}_interp")
    return RepetitiveTask(
        name=name,
        inputs=(fin,),
        outputs=(fout,),
        repetition=config.repetition_shape,
        inner=inner,
        input_tilers=(
            TilerConnector(outer_port="fin", inner_port="pin", tiler=config.input_tiler),
        ),
        output_tilers=(
            TilerConnector(outer_port="fout", inner_port="pout", tiler=config.output_tiler),
        ),
    )


def filter_compound(config: FilterConfig, name: str) -> CompoundTask:
    """A filter for all three channels (Figure 10's rhf/ghf/bhf)."""
    inputs = tuple(Port(f"in_{c}", config.frame_shape, "in") for c in CHANNELS)
    outputs = tuple(Port(f"out_{c}", config.out_shape, "out") for c in CHANNELS)
    instances = tuple(
        TaskInstance(name=f"{c}{name[0]}f", task=filter_repetitive_task(config, f"{c}{name}"))
        for c in CHANNELS
    )
    links = tuple(
        Link(src=("", f"in_{c}"), dst=(inst.name, "fin"))
        for c, inst in zip(CHANNELS, instances)
    ) + tuple(
        Link(src=(inst.name, "fout"), dst=("", f"out_{c}"))
        for c, inst in zip(CHANNELS, instances)
    )
    return CompoundTask(
        name=name, inputs=inputs, outputs=outputs, instances=instances, links=links
    )


def _copy_ip(env: dict, ins: dict[str, str], outs: dict[str, str]) -> None:
    """The frame generator/constructor IP: moves frames between buffers
    (standing in for OpenCV decode/display).

    Ports are paired by channel suffix: input ``x_<c>`` feeds output
    ``y_<c>``.
    """

    def suffix(port: str) -> str:
        return port.rsplit("_", 1)[1]

    in_by_channel = {suffix(p): buf for p, buf in ins.items()}
    for port, buf in outs.items():
        env[buf] = env[in_by_channel[suffix(port)]].copy()


def downscaler_model(size: FrameSize = None, paving: int = 1) -> ApplicationModel:
    """The full Figure 3 application.

    ``paving`` selects the tiler paving granularity (packets per
    repetition step); the filters' tilers, window lists and repetition
    spaces all follow.  ``paving=1`` is the paper's Figure 10 model.
    """
    from repro.apps.downscaler.config import HD

    size = size or HD
    h = horizontal_filter(size, paving=paving)
    v = vertical_filter(size, paving=paving)
    pixels = size.rows * size.cols

    fg = IOTask(
        name="frameGen",
        inputs=tuple(Port(f"cam_{c}", size.shape, "in") for c in CHANNELS),
        outputs=tuple(Port(f"dec_{c}", size.shape, "out") for c in CHANNELS),
        ip=_copy_ip,
        work_ops=3 * pixels,
    )
    orow, ocol = v.out_shape
    fc = IOTask(
        name="frameCon",
        inputs=tuple(Port(f"acc_{c}", (orow, ocol), "in") for c in CHANNELS),
        outputs=tuple(Port(f"disp_{c}", (orow, ocol), "out") for c in CHANNELS),
        ip=_copy_ip,
        work_ops=3 * orow * ocol,
    )
    hf = filter_compound(h, "hfilter")
    vf = filter_compound(v, "vfilter")

    instances = (
        TaskInstance("fg", fg),
        TaskInstance("hf", hf),
        TaskInstance("vf", vf),
        TaskInstance("fc", fc),
    )
    links = []
    for c in CHANNELS:
        links.append(Link(src=("", f"in_{c}"), dst=("fg", f"cam_{c}")))
        links.append(Link(src=("fg", f"dec_{c}"), dst=("hf", f"in_{c}")))
        links.append(Link(src=("hf", f"out_{c}"), dst=("vf", f"in_{c}")))
        links.append(Link(src=("vf", f"out_{c}"), dst=("fc", f"acc_{c}")))
        links.append(Link(src=("fc", f"disp_{c}"), dst=("", f"out_{c}")))

    top = CompoundTask(
        name="Downscaler",
        inputs=tuple(Port(f"in_{c}", size.shape, "in") for c in CHANNELS),
        outputs=tuple(Port(f"out_{c}", (orow, ocol), "out") for c in CHANNELS),
        instances=instances,
        links=tuple(links),
    )
    return ApplicationModel(name="Downscaler", top=top)


def downscaler_allocation() -> Allocation:
    """MARTE allocation: IPs on the host, filters on the compute device.

    Uses the *flattened* instance names the transformation chain produces.
    """
    mapping = [("fg", "host"), ("fc", "host")]
    for c in CHANNELS:
        mapping.append((f"hf_{c}hf", "gpu"))  # noqa: E241
        mapping.append((f"vf_{c}vf", "gpu"))
    return Allocation(platform=GPU_CPU_PLATFORM, mapping=tuple(mapping))
