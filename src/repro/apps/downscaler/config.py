"""Downscaler configuration (paper Section III / Figure 10).

The H.263 downscaler shrinks a frame by 8/3 horizontally and 9/4
vertically with 6-tap integer interpolation windows (``out = tmp/6 -
tmp%6``).  These factors reproduce both resolutions the paper quotes:
CIF 352x288 -> 132x128 and HD 1920x1080 -> 720x480.

Each filter is described by a :class:`FilterConfig` carrying the ArrayOL
tiler triplets — the single source of truth shared by the SaC program
generator, the ArrayOL model builder, the NumPy golden reference and the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.tilers import Tiler

__all__ = [
    "FilterConfig",
    "FrameSize",
    "horizontal_filter",
    "vertical_filter",
    "HD",
    "CIF",
    "H_PACK",
    "H_OUT",
    "V_PACK",
    "V_OUT",
    "WINDOW_TAPS",
    "H_WINDOW_OFFSETS",
    "V_WINDOW_OFFSETS",
]

#: horizontal packet: 8 input columns -> 3 output columns
H_PACK, H_OUT = 8, 3
#: vertical packet: 9 input rows -> 4 output rows
V_PACK, V_OUT = 9, 4
#: every output pixel averages 6 consecutive inputs (paper Figure 5)
WINDOW_TAPS = 6
#: window start offsets within the input pattern
H_WINDOW_OFFSETS = (0, 3, 6)
V_WINDOW_OFFSETS = (0, 4, 6, 8)

#: input pattern lengths (last window offset + taps)
H_PATTERN = H_WINDOW_OFFSETS[-1] + WINDOW_TAPS  # 12
V_PATTERN = V_WINDOW_OFFSETS[-1] + WINDOW_TAPS  # 14


@dataclass(frozen=True)
class FrameSize:
    """A frame geometry (rows x cols)."""

    rows: int
    cols: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.rows % V_PACK != 0:
            raise ReproError(
                f"frame rows {self.rows} not divisible by the vertical packet "
                f"{V_PACK}"
            )
        if self.cols % H_PACK != 0:
            raise ReproError(
                f"frame cols {self.cols} not divisible by the horizontal packet "
                f"{H_PACK}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def h_out_shape(self) -> tuple[int, int]:
        return (self.rows, self.cols // H_PACK * H_OUT)

    @property
    def out_shape(self) -> tuple[int, int]:
        return (self.rows // V_PACK * V_OUT, self.cols // H_PACK * H_OUT)


#: the paper's evaluation frame (1080x1920 HD)
HD = FrameSize(rows=1080, cols=1920, name="HD")
#: the paper's motivating CIF format (352x288 -> 132x128)
CIF = FrameSize(rows=288, cols=352, name="CIF")


@dataclass(frozen=True)
class FilterConfig:
    """One downscaler filter as ArrayOL tiler triplets plus the task spec."""

    name: str
    frame_shape: tuple[int, int]
    out_shape: tuple[int, int]
    pattern: int
    out_pattern: int
    window_offsets: tuple[int, ...]
    axis: int  # 0 = vertical (rows), 1 = horizontal (cols)

    @property
    def packet(self) -> int:
        """Input elements consumed per repetition step along the axis."""
        return (V_PACK, H_PACK)[self.axis]

    @property
    def repetition_shape(self) -> tuple[int, int]:
        if self.axis == 1:
            return (self.frame_shape[0], self.frame_shape[1] // H_PACK)
        return (self.frame_shape[0] // V_PACK, self.frame_shape[1])

    # -- ArrayOL tilers ------------------------------------------------------

    @property
    def input_tiler(self) -> Tiler:
        if self.axis == 1:
            fitting = ((0,), (1,))
            paving = ((1, 0), (0, H_PACK))
        else:
            fitting = ((1,), (0,))
            paving = ((V_PACK, 0), (0, 1))
        return Tiler(
            origin=(0, 0),
            fitting=fitting,
            paving=paving,
            array_shape=self.frame_shape,
            pattern_shape=(self.pattern,),
            repetition_shape=self.repetition_shape,
            name=f"{self.name}_in",
        )

    @property
    def output_tiler(self) -> Tiler:
        if self.axis == 1:
            fitting = ((0,), (1,))
            paving = ((1, 0), (0, H_OUT))
        else:
            fitting = ((1,), (0,))
            paving = ((V_OUT, 0), (0, 1))
        return Tiler(
            origin=(0, 0),
            fitting=fitting,
            paving=paving,
            array_shape=self.out_shape,
            pattern_shape=(self.out_pattern,),
            repetition_shape=self.repetition_shape,
            name=f"{self.name}_out",
        )

    # -- paper-aligned structural facts ---------------------------------------

    @property
    def wrapping_outputs(self) -> tuple[int, ...]:
        """Window indices whose last packet wraps around the frame edge.

        These become the extra boundary kernels after WLF: 2 for the
        horizontal filter, 3 for the vertical — yielding the paper's 5 and
        7 kernels (Table II).
        """
        extent = self.frame_shape[self.axis]
        last_ref = extent - self.packet
        return tuple(
            k
            for k, off in enumerate(self.window_offsets)
            if last_ref + off + WINDOW_TAPS > extent
        )

    @property
    def expected_kernels_after_wlf(self) -> int:
        return self.out_pattern + len(self.wrapping_outputs)


def horizontal_filter(size: FrameSize = HD) -> FilterConfig:
    return FilterConfig(
        name="hfilter",
        frame_shape=size.shape,
        out_shape=size.h_out_shape,
        pattern=H_PATTERN,
        out_pattern=H_OUT,
        window_offsets=H_WINDOW_OFFSETS,
        axis=1,
    )


def vertical_filter(size: FrameSize = HD) -> FilterConfig:
    return FilterConfig(
        name="vfilter",
        frame_shape=size.h_out_shape,
        out_shape=size.out_shape,
        pattern=V_PATTERN,
        out_pattern=V_OUT,
        window_offsets=V_WINDOW_OFFSETS,
        axis=0,
    )
