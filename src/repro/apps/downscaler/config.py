"""Downscaler configuration (paper Section III / Figure 10).

The H.263 downscaler shrinks a frame by 8/3 horizontally and 9/4
vertically with 6-tap integer interpolation windows (``out = tmp/6 -
tmp%6``).  These factors reproduce both resolutions the paper quotes:
CIF 352x288 -> 132x128 and HD 1920x1080 -> 720x480.

Each filter is described by a :class:`FilterConfig` carrying the ArrayOL
tiler triplets — the single source of truth shared by the SaC program
generator, the ArrayOL model builder, the NumPy golden reference and the
tests.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.errors import ReproError
from repro.tilers import Tiler

__all__ = [
    "FilterConfig",
    "FrameSize",
    "horizontal_filter",
    "vertical_filter",
    "legal_pavings",
    "HD",
    "CIF",
    "H_PACK",
    "H_OUT",
    "V_PACK",
    "V_OUT",
    "WINDOW_TAPS",
    "H_WINDOW_OFFSETS",
    "V_WINDOW_OFFSETS",
]

#: horizontal packet: 8 input columns -> 3 output columns
H_PACK, H_OUT = 8, 3
#: vertical packet: 9 input rows -> 4 output rows
V_PACK, V_OUT = 9, 4
#: every output pixel averages 6 consecutive inputs (paper Figure 5)
WINDOW_TAPS = 6
#: window start offsets within the input pattern
H_WINDOW_OFFSETS = (0, 3, 6)
V_WINDOW_OFFSETS = (0, 4, 6, 8)

#: input pattern lengths (last window offset + taps)
H_PATTERN = H_WINDOW_OFFSETS[-1] + WINDOW_TAPS  # 12
V_PATTERN = V_WINDOW_OFFSETS[-1] + WINDOW_TAPS  # 14


@dataclass(frozen=True)
class FrameSize:
    """A frame geometry (rows x cols)."""

    rows: int
    cols: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.rows % V_PACK != 0:
            raise ReproError(
                f"frame rows {self.rows} not divisible by the vertical packet "
                f"{V_PACK}"
            )
        if self.cols % H_PACK != 0:
            raise ReproError(
                f"frame cols {self.cols} not divisible by the horizontal packet "
                f"{H_PACK}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def h_out_shape(self) -> tuple[int, int]:
        return (self.rows, self.cols // H_PACK * H_OUT)

    @property
    def out_shape(self) -> tuple[int, int]:
        return (self.rows // V_PACK * V_OUT, self.cols // H_PACK * H_OUT)


#: the paper's evaluation frame (1080x1920 HD)
HD = FrameSize(rows=1080, cols=1920, name="HD")
#: the paper's motivating CIF format (352x288 -> 132x128)
CIF = FrameSize(rows=288, cols=352, name="CIF")


@dataclass(frozen=True)
class FilterConfig:
    """One downscaler filter as ArrayOL tiler triplets plus the task spec.

    ``pattern``/``out_pattern``/``window_offsets`` are the *effective*
    per-repetition-step values: at ``granularity`` g > 1 each step of the
    repetition space processes g consecutive packets (the coarsened
    paving of :func:`repro.tilers.coarsen_paving`), so the pattern widens,
    the window list repeats at packet stride, and the repetition extent
    shrinks by g.  The paper's Figure 10 configuration is ``granularity=1``.
    """

    name: str
    frame_shape: tuple[int, int]
    out_shape: tuple[int, int]
    pattern: int
    out_pattern: int
    window_offsets: tuple[int, ...]
    axis: int  # 0 = vertical (rows), 1 = horizontal (cols)
    #: paving granularity: packets consumed per repetition step
    granularity: int = 1

    @property
    def base_packet(self) -> int:
        """Input elements of one packet along the axis (Figure 10's 8/9)."""
        return (V_PACK, H_PACK)[self.axis]

    @property
    def packet(self) -> int:
        """Input elements consumed per repetition step along the axis."""
        return self.base_packet * self.granularity

    @property
    def repetition_shape(self) -> tuple[int, int]:
        if self.axis == 1:
            return (self.frame_shape[0], self.frame_shape[1] // self.packet)
        return (self.frame_shape[0] // self.packet, self.frame_shape[1])

    # -- ArrayOL tilers ------------------------------------------------------

    @property
    def input_tiler(self) -> Tiler:
        if self.axis == 1:
            fitting = ((0,), (1,))
            paving = ((1, 0), (0, self.packet))
        else:
            fitting = ((1,), (0,))
            paving = ((self.packet, 0), (0, 1))
        return Tiler(
            origin=(0, 0),
            fitting=fitting,
            paving=paving,
            array_shape=self.frame_shape,
            pattern_shape=(self.pattern,),
            repetition_shape=self.repetition_shape,
            name=f"{self.name}_in",
        )

    @property
    def output_tiler(self) -> Tiler:
        if self.axis == 1:
            fitting = ((0,), (1,))
            paving = ((1, 0), (0, self.out_pattern))
        else:
            fitting = ((1,), (0,))
            paving = ((self.out_pattern, 0), (0, 1))
        return Tiler(
            origin=(0, 0),
            fitting=fitting,
            paving=paving,
            array_shape=self.out_shape,
            pattern_shape=(self.out_pattern,),
            repetition_shape=self.repetition_shape,
            name=f"{self.name}_out",
        )

    # -- paper-aligned structural facts ---------------------------------------

    @property
    def wrapping_outputs(self) -> tuple[int, ...]:
        """Window indices whose last packet wraps around the frame edge.

        These become the extra boundary kernels after WLF: 2 for the
        horizontal filter, 3 for the vertical — yielding the paper's 5 and
        7 kernels (Table II).
        """
        extent = self.frame_shape[self.axis]
        last_ref = extent - self.packet
        return tuple(
            k
            for k, off in enumerate(self.window_offsets)
            if last_ref + off + WINDOW_TAPS > extent
        )

    @property
    def expected_kernels_after_wlf(self) -> int:
        return self.out_pattern + len(self.wrapping_outputs)


def _granular(
    base_pattern: int,
    base_out: int,
    base_offsets: tuple[int, ...],
    base_pack: int,
    packets: int,
    paving: int,
    name: str,
) -> tuple[int, int, tuple[int, ...]]:
    """Effective (pattern, out_pattern, window_offsets) at ``paving``."""
    if paving < 1:
        raise ReproError(f"{name}: paving granularity must be >= 1, got {paving}")
    if packets % paving:
        raise ReproError(
            f"{name}: {packets} packets along the axis are not divisible by "
            f"paving granularity {paving}"
        )
    offsets = tuple(
        j * base_pack + off for j in range(paving) for off in base_offsets
    )
    return (paving - 1) * base_pack + base_pattern, paving * base_out, offsets


def horizontal_filter(size: FrameSize = HD, paving: int = 1) -> FilterConfig:
    pattern, out_pattern, offsets = _granular(
        H_PATTERN, H_OUT, H_WINDOW_OFFSETS, H_PACK,
        size.cols // H_PACK, paving, "hfilter",
    )
    return FilterConfig(
        name="hfilter",
        frame_shape=size.shape,
        out_shape=size.h_out_shape,
        pattern=pattern,
        out_pattern=out_pattern,
        window_offsets=offsets,
        axis=1,
        granularity=paving,
    )


def vertical_filter(size: FrameSize = HD, paving: int = 1) -> FilterConfig:
    pattern, out_pattern, offsets = _granular(
        V_PATTERN, V_OUT, V_WINDOW_OFFSETS, V_PACK,
        size.rows // V_PACK, paving, "vfilter",
    )
    return FilterConfig(
        name="vfilter",
        frame_shape=size.h_out_shape,
        out_shape=size.out_shape,
        pattern=pattern,
        out_pattern=out_pattern,
        window_offsets=offsets,
        axis=0,
        granularity=paving,
    )


@functools.lru_cache(maxsize=None)
def legal_pavings(size: FrameSize, limit: int = 6) -> tuple[int, ...]:
    """Paving granularities legal for *both* filters of ``size``.

    A granularity must divide the packet count along each filter's axis
    (the coarsened repetition space must stay integral), and the
    coarsened tilers must pass the region oracle's footprint-equivalence
    check against the Figure 10 base tilers — an illegal re-paving is
    filtered here, before the tuner ever evaluates it.
    """
    from repro.tilers import paving_equivalent

    h_packets = size.cols // H_PACK
    v_packets = size.rows // V_PACK
    out: list[int] = []
    for g in range(1, limit + 1):
        if h_packets % g or v_packets % g:
            continue
        h, v = horizontal_filter(size, paving=g), vertical_filter(size, paving=g)
        base_h, base_v = horizontal_filter(size), vertical_filter(size)
        if g > 1 and not (
            paving_equivalent(base_h.input_tiler, h.input_tiler)
            and paving_equivalent(base_h.output_tiler, h.output_tiler)
            and paving_equivalent(base_v.input_tiler, v.input_tiler)
            and paving_equivalent(base_v.output_tiler, v.output_tiler)
        ):
            continue
        out.append(g)
    return tuple(out)
