"""Synthetic video source (substitute for the paper's OpenCV input).

Generates deterministic 24-bit RGB frames (paper Section III: "each video
pixel is encoded in 24-bit RGB colour model") with enough structure to
exercise the filters: moving gradients, a drifting checkerboard and a
block of per-frame pseudo-random texture.  Content is irrelevant to the
timing model; it only feeds the bit-exact functional checks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.apps.downscaler.config import FrameSize

__all__ = ["synthetic_frame", "video_frames", "channels_of"]


def synthetic_frame(size: FrameSize, t: int) -> np.ndarray:
    """Frame ``t`` of the synthetic clip, shape ``(rows, cols, 3)`` int32
    with values in [0, 256)."""
    rows, cols = size.shape
    y = np.arange(rows, dtype=np.int64)[:, None]
    x = np.arange(cols, dtype=np.int64)[None, :]
    r = (x * 255 // max(1, cols - 1) + 3 * t) % 256
    g = (y * 255 // max(1, rows - 1) + 5 * t) % 256
    checker = (((y + t) // 8 + (x + 2 * t) // 8) % 2) * 255
    b = checker
    frame = np.stack([r + 0 * y, g + 0 * x, b + 0 * x * y], axis=-1)
    # a deterministic "noisy" block so neighbouring pixels differ
    rng = np.random.default_rng(1000 + t)
    br = min(rows, 32)
    bc = min(cols, 32)
    frame[:br, :bc, :] = rng.integers(0, 256, size=(br, bc, 3))
    return frame.astype(np.int32)


def video_frames(size: FrameSize, count: int, start: int = 0) -> Iterator[np.ndarray]:
    """``count`` consecutive synthetic frames."""
    for t in range(start, start + count):
        yield synthetic_frame(size, t)


def channels_of(frame: np.ndarray) -> dict[str, np.ndarray]:
    """Split an RGB frame into the per-channel arrays the programs take."""
    return {c: np.ascontiguousarray(frame[..., i]) for i, c in enumerate("rgb")}
