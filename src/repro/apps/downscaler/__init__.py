"""The paper's case study: the H.263 downscaler in every configuration."""

from repro.apps.downscaler.config import (
    CIF,
    HD,
    FilterConfig,
    FrameSize,
    horizontal_filter,
    vertical_filter,
)
from repro.apps.downscaler.reference import apply_filter, downscale_frame, downscale_video
from repro.apps.downscaler.runner import DownscalerLab, Figure9Row, Figure12Series, OperationTable
from repro.apps.downscaler.sac_sources import (
    GENERIC,
    NONGENERIC,
    downscaler_program_source,
)
from repro.apps.downscaler.serving import (
    GaspardDownscalerJob,
    SacDownscalerJob,
    downscaler_job,
)
from repro.apps.downscaler.video import channels_of, synthetic_frame, video_frames

__all__ = [
    "FrameSize", "FilterConfig", "HD", "CIF",
    "horizontal_filter", "vertical_filter",
    "apply_filter", "downscale_frame", "downscale_video",
    "GENERIC", "NONGENERIC", "downscaler_program_source",
    "synthetic_frame", "video_frames", "channels_of",
    "DownscalerLab", "OperationTable", "Figure9Row", "Figure12Series",
    "downscaler_job", "SacDownscalerJob", "GaspardDownscalerJob",
]
