"""NumPy golden reference for the downscaler.

Implements the three-step semantics of the paper's Section VI directly with
the tiler algebra: gather patterns, apply the 6-tap integer interpolation
(``out = tmp/6 - tmp%6`` with C truncation), scatter to the output frame.
Every compiled route (SaC interpreter, SaC->CUDA, ArrayOL->OpenCL, host
sequential) is tested bit-exactly against this.
"""

from __future__ import annotations

import numpy as np

from repro.apps.downscaler.config import (
    WINDOW_TAPS,
    FilterConfig,
    FrameSize,
    horizontal_filter,
    vertical_filter,
)
from repro.ir.expr import c_div, c_mod
from repro.tilers import gather, scatter_into_zeros

__all__ = [
    "interpolate_tiles",
    "apply_filter",
    "downscale_frame",
    "downscale_video",
]


def interpolate_tiles(tiles: np.ndarray, window_offsets) -> np.ndarray:
    """Apply the paper's Figure 5 task to gathered patterns.

    ``tiles`` has shape ``repetition + (pattern,)``; the result has shape
    ``repetition + (len(window_offsets),)``.
    """
    tiles64 = tiles.astype(np.int64)
    outs = []
    for off in window_offsets:
        tmp = tiles64[..., off : off + WINDOW_TAPS].sum(axis=-1)
        outs.append(c_div(tmp, 6) - c_mod(tmp, 6))
    return np.stack(outs, axis=-1).astype(tiles.dtype)


def apply_filter(frame: np.ndarray, config: FilterConfig) -> np.ndarray:
    """One filter pass: input tiler -> task -> output tiler."""
    frame = np.asarray(frame, dtype=np.int32)
    if frame.shape != config.frame_shape:
        raise ValueError(
            f"{config.name}: frame shape {frame.shape} != expected "
            f"{config.frame_shape}"
        )
    tiles = gather(config.input_tiler, frame)
    compressed = interpolate_tiles(tiles, config.window_offsets)
    return scatter_into_zeros(config.output_tiler, compressed, dtype=np.int32)


def downscale_frame(frame: np.ndarray, size: FrameSize) -> np.ndarray:
    """Full per-channel downscale: horizontal then vertical filter."""
    h = apply_filter(frame, horizontal_filter(size))
    return apply_filter(h, vertical_filter(size))


def downscale_video(frames, size: FrameSize) -> list[np.ndarray]:
    """Downscale a sequence of (rows, cols, 3) RGB frames channel-wise."""
    out = []
    for frame in frames:
        channels = [downscale_frame(frame[..., c], size) for c in range(frame.shape[-1])]
        out.append(np.stack(channels, axis=-1))
    return out
