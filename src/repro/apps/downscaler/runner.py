"""Experiment runner: regenerates the paper's evaluation artefacts.

Drives both compilation routes over the synthetic video and aggregates the
profiles into the exact shapes the paper reports:

* :meth:`DownscalerLab.table1` — Gaspard2/OpenCL operation breakdown;
* :meth:`DownscalerLab.table2` — SaC/CUDA (non-generic) breakdown;
* :meth:`DownscalerLab.figure9` — per-filter execution times of the four
  SaC configurations;
* :meth:`DownscalerLab.figure12` — per-operation comparison of the routes;
* :meth:`DownscalerLab.headline_claims` — the Section VIII/IX ratios.

Timing convention (matching the paper): the tables process ``frames``
frames x 3 RGB channels (900 transfer calls at 300 frames); Figure 9 runs
each filter for ``frames`` iterations on one channel, counting the filter's
*own* work — kernels, host steps and intermediate transfers — but not the
shared frame upload/result download that the tables account separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.downscaler import reference
from repro.apps.downscaler.arrayol_model import downscaler_allocation, downscaler_model
from repro.apps.downscaler.config import HD, FrameSize, horizontal_filter, vertical_filter
from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.cpu import CPUExecutor
from repro.errors import ReproError
from repro.gpu import CostModel, CostParams, GPUExecutor, GTX480_CALIBRATED, Profiler
from repro.gpu.profiler import ProfileRow
from repro.ir.program import AllocDevice, DeviceProgram, DeviceToHost, HostToDevice, LaunchKernel
from repro.runtime.cache import CompileCache
from repro.sac.backend import CompileOptions

__all__ = [
    "OperationTable",
    "Figure9Row",
    "Figure12Series",
    "DownscalerLab",
]


@dataclass(frozen=True)
class OperationTable:
    """A Table I/II-shaped result."""

    title: str
    rows: tuple[ProfileRow, ...]
    total_us: float

    def row(self, label_prefix: str) -> ProfileRow:
        for r in self.rows:
            if r.operation.startswith(label_prefix):
                return r
        raise KeyError(label_prefix)


@dataclass(frozen=True)
class Figure9Row:
    """One bar group of Figure 9: a filter under one configuration."""

    configuration: str  # e.g. "SAC-Seq Generic"
    hfilter_s: float
    vfilter_s: float


@dataclass(frozen=True)
class Figure12Series:
    """Figure 12: per-operation seconds for both routes."""

    operations: tuple[str, ...]
    sac_s: tuple[float, ...]
    gaspard_s: tuple[float, ...]


class DownscalerLab:
    """Compiles, validates and times every downscaler configuration."""

    def __init__(
        self,
        size: FrameSize = HD,
        frames: int = 300,
        params: CostParams = GTX480_CALIBRATED,
        validate: bool = True,
    ):
        self.size = size
        self.frames = frames
        self.params = params
        self.validate = validate
        #: memoises both routes' compilations (with hit/miss statistics)
        self.cache = CompileCache()
        self._frame0 = synthetic_frame(size, 0)
        self._golden0 = {
            c: reference.downscale_frame(self._frame0[..., i], size)
            for i, c in enumerate("rgb")
        }

    # -- compilation -------------------------------------------------------------

    def sac_compiled(self, variant: str, target: str, entry: str = "downscale"):
        source = downscaler_program_source(self.size, variant)
        return self.cache.compile_sac(source, entry, CompileOptions(target=target))

    def gaspard_compiled(self):
        return self.cache.compile_gaspard(
            downscaler_model(self.size), downscaler_allocation()
        )

    # -- execution helpers -----------------------------------------------------------

    def _gpu_executor(self) -> GPUExecutor:
        return GPUExecutor(CostModel(self.params))

    def _cpu_executor(self) -> CPUExecutor:
        return CPUExecutor(CostModel(self.params))

    def _check_sac_outputs(self, cf, outputs, channel: str, entry: str) -> None:
        if not self.validate:
            return
        out = outputs[cf.program.host_outputs[0]]
        if entry == "downscale":
            expected = self._golden0[channel]
        elif entry == "hfilter":
            expected = reference.apply_filter(
                self._channel0(channel), horizontal_filter(self.size)
            )
        elif entry == "vfilter":
            hout = reference.apply_filter(
                self._channel0(channel), horizontal_filter(self.size)
            )
            expected = reference.apply_filter(hout, vertical_filter(self.size))
        else:
            return
        if not np.array_equal(out, expected):
            raise ReproError(
                f"{cf.program.name}: functional mismatch on channel {channel!r}"
            )

    def _channel0(self, channel: str) -> np.ndarray:
        return channels_of(self._frame0)[channel]

    def run_sac(self, variant: str, target: str, entry: str = "downscale"):
        """Run a SaC program over frames x 3 channels; returns (executor, runs)."""
        cf = self.sac_compiled(variant, target, entry)
        ex = self._gpu_executor() if target == "cuda" else self._cpu_executor()
        chans = channels_of(self._frame0)
        runs = []
        first = True
        for f in range(self.frames):
            for c in "rgb":
                if first:
                    inp = chans[c] if entry != "vfilter" else reference.apply_filter(
                        chans[c], horizontal_filter(self.size)
                    )
                    res = ex.run(cf.program, {"frame": inp})
                    self._check_sac_outputs(cf, res.outputs, c, entry)
                    first = False
                else:
                    res = ex.run(cf.program, functional=False)
                runs.append(res)
        return cf, ex, runs

    def run_gaspard(self):
        """Run the Gaspard2 program over ``frames`` frames (3 channels each)."""
        ctx, _chain = self.gaspard_compiled()
        ex = self._gpu_executor()
        env = {f"in_{c}": v for c, v in channels_of(self._frame0).items()}
        runs = []
        for f in range(self.frames):
            if f == 0:
                res = ex.run(ctx.program, env)
                if self.validate:
                    for c in "rgb":
                        if not np.array_equal(res.outputs[f"out_{c}"], self._golden0[c]):
                            raise ReproError(
                                f"gaspard: functional mismatch on channel {c!r}"
                            )
            else:
                res = ex.run(ctx.program, functional=False)
            runs.append(res)
        return ctx, ex, runs

    # -- kernel/filter attribution ------------------------------------------------------

    def _filter_grouping(self, program: DeviceProgram) -> tuple[dict[str, str], dict[str, int]]:
        """Map kernel names to 'H. Filter (n kernels)' / 'V. Filter' labels."""
        h_shape = horizontal_filter(self.size).out_shape
        v_shape = vertical_filter(self.size).out_shape
        h_kernels, v_kernels = [], []
        for k in program.kernels:
            out_shapes = {a.shape for a in k.output_arrays}
            if h_shape in out_shapes:
                h_kernels.append(k.name)
            elif v_shape in out_shapes:
                v_kernels.append(k.name)
        h_unique = sorted(set(h_kernels))
        v_unique = sorted(set(v_kernels))
        grouping: dict[str, str] = {}
        counts = {"H": len(h_unique), "V": len(v_unique)}
        for name in h_unique:
            grouping[name] = f"H. Filter ({counts['H']} kernels)"
        for name in v_unique:
            grouping[name] = f"V. Filter ({counts['V']} kernels)"
        return grouping, counts

    def _gpu_table(self, title: str, program: DeviceProgram, profiler: Profiler) -> OperationTable:
        grouping, _ = self._filter_grouping(program)
        rows = [
            r
            for r in profiler.rows(grouping)
            if not r.operation.startswith(("host", "ip:", "cpu:"))
        ]
        # paper layout: filters first, then HtoD, then DtoH
        def order(r: ProfileRow) -> int:
            if r.operation.startswith("H. Filter"):
                return 0
            if r.operation.startswith("V. Filter"):
                return 1
            if "HtoD" in r.operation:
                return 2
            return 3

        rows.sort(key=order)
        # normalise call counts to frames (the paper reports per-kernel calls)
        fixed = []
        for r in rows:
            calls = self.frames if r.operation.endswith("kernels)") else r.calls
            fixed.append(
                ProfileRow(r.operation, calls, r.gpu_time_us, r.gpu_time_pct)
            )
        total = sum(r.gpu_time_us for r in rows)
        # recompute percentages over the GPU-only total
        fixed = [
            ProfileRow(r.operation, r.calls, r.gpu_time_us,
                       100.0 * r.gpu_time_us / total if total else 0.0)
            for r in fixed
        ]
        return OperationTable(title=title, rows=tuple(fixed), total_us=total)

    # -- the paper's artefacts -------------------------------------------------------------

    def table1(self) -> OperationTable:
        """Table I: Gaspard2 kernel execution and data transfer times."""
        ctx, ex, _runs = self.run_gaspard()
        return self._gpu_table(
            "Kernel execution and data transfer times of GASPARD2 implementation",
            ctx.program,
            ex.profiler,
        )

    def table2(self) -> OperationTable:
        """Table II: SaC (non-generic) kernel execution and transfer times."""
        cf, ex, _runs = self.run_sac(NONGENERIC, "cuda")
        return self._gpu_table(
            "Kernel execution and data transfer times of SAC implementation",
            cf.program,
            ex.profiler,
        )

    # -- Figure 9 ---------------------------------------------------------------------------

    def _filter_work_us(self, cf, executor) -> float:
        """One run's filter-own work: kernels + host steps + intermediate
        transfers (boundary frame upload / result download excluded)."""
        program = cf.program
        cost = executor.cost
        shapes = {
            op.buffer: op for op in program.ops if isinstance(op, AllocDevice)
        }
        total = 0.0
        for op in program.ops:
            if isinstance(op, LaunchKernel):
                if isinstance(executor, GPUExecutor):
                    total += executor.kernel_breakdown(op.kernel).total_us
                else:
                    total += executor.kernel_time_us(op.kernel)
            elif isinstance(op, HostToDevice):
                if op.host not in program.host_inputs:
                    total += cost.h2d_time_us(shapes[op.device].nbytes)
            elif isinstance(op, DeviceToHost):
                if op.host not in program.host_outputs:
                    total += cost.d2h_time_us(shapes[op.device].nbytes)
            elif hasattr(op, "work"):
                total += cost.host_work_time_us(op.work)
        return total

    def figure9(self) -> list[Figure9Row]:
        """Per-filter execution times (seconds, ``frames`` iterations)."""
        out = []
        for variant in (GENERIC, NONGENERIC):
            for target, label in (("seq", "SAC-Seq"), ("cuda", "SAC-CUDA")):
                times = {}
                for entry in ("hfilter", "vfilter"):
                    cf = self.sac_compiled(variant, target, entry)
                    ex = self._gpu_executor() if target == "cuda" else self._cpu_executor()
                    # functional validation once
                    if self.validate:
                        inp = (
                            self._channel0("r")
                            if entry == "hfilter"
                            else reference.apply_filter(
                                self._channel0("r"), horizontal_filter(self.size)
                            )
                        )
                        res = ex.run(cf.program, {"frame": inp})
                        self._check_sac_outputs(cf, res.outputs, "r", entry)
                    per_run = self._filter_work_us(cf, ex)
                    times[entry] = per_run * self.frames / 1e6
                suffix = "Generic" if variant == GENERIC else "Non-Generic"
                out.append(
                    Figure9Row(
                        configuration=f"{label} {suffix}",
                        hfilter_s=times["hfilter"],
                        vfilter_s=times["vfilter"],
                    )
                )
        return out

    # -- Figure 12 ----------------------------------------------------------------------------

    def figure12(self) -> Figure12Series:
        """Per-operation comparison of the two routes (seconds)."""
        t2 = self.table2()
        t1 = self.table1()

        def seconds(table: OperationTable, prefix: str) -> float:
            try:
                return table.row(prefix).gpu_time_us / 1e6
            except KeyError:
                return 0.0

        ops = ("Horizontal Filter", "Vertical Filter", "Host2Device", "Device2Host")
        sac = (
            seconds(t2, "H. Filter"),
            seconds(t2, "V. Filter"),
            seconds(t2, "memcpyHtoD"),
            seconds(t2, "memcpyDtoH"),
        )
        gaspard = (
            seconds(t1, "H. Filter"),
            seconds(t1, "V. Filter"),
            seconds(t1, "memcpyHtoD"),
            seconds(t1, "memcpyDtoH"),
        )
        return Figure12Series(operations=ops, sac_s=sac, gaspard_s=gaspard)

    # -- headline claims -------------------------------------------------------------------------

    def headline_claims(self) -> dict[str, float]:
        """The Section VIII/IX ratios the paper states."""
        fig9 = {r.configuration: r for r in self.figure9()}
        gen_cuda = fig9["SAC-CUDA Generic"]
        non_cuda = fig9["SAC-CUDA Non-Generic"]
        gen_seq = fig9["SAC-Seq Generic"]
        non_seq = fig9["SAC-Seq Non-Generic"]
        t1 = self.table1()
        t2 = self.table2()
        transfers1 = sum(
            r.gpu_time_us for r in t1.rows if r.operation.startswith("memcpy")
        )
        transfers2 = sum(
            r.gpu_time_us for r in t2.rows if r.operation.startswith("memcpy")
        )
        return {
            "generic_over_nongeneric_h": gen_cuda.hfilter_s / non_cuda.hfilter_s,
            "generic_over_nongeneric_v": gen_cuda.vfilter_s / non_cuda.vfilter_s,
            "speedup_gpu_vs_seq_h": non_seq.hfilter_s / non_cuda.hfilter_s,
            "speedup_gpu_vs_seq_v": non_seq.vfilter_s / non_cuda.vfilter_s,
            "seq_generic_over_nongeneric_h": gen_seq.hfilter_s / non_seq.hfilter_s,
            "transfer_share_gaspard": transfers1 / t1.total_us,
            "transfer_share_sac": transfers2 / t2.total_us,
            "gaspard_over_sac_total": t1.total_us / t2.total_us,
        }
