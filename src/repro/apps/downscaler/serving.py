"""Pipeline jobs serving the downscaler through ``repro.runtime``.

Adapts both compilation routes to :class:`~repro.runtime.pipeline.
FramePipeline`: the SaC route runs one program per RGB channel (a batch
of three runs per video frame, the paper's 900-transfer accounting), the
Gaspard2 route runs one three-channel program per frame.  Golden outputs
come from the NumPy reference, so the pipeline's validation stage checks
bit-exactness end to end.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.apps.downscaler import reference
from repro.apps.downscaler.arrayol_model import downscaler_allocation, downscaler_model
from repro.apps.downscaler.config import HD, FrameSize
from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.errors import ReproError
from repro.ir.program import DeviceProgram
from repro.runtime.cache import CompileCache
from repro.runtime.pipeline import PipelineJob

__all__ = ["SacDownscalerJob", "GaspardDownscalerJob", "downscaler_job"]

_CHANNELS = "rgb"


class _DownscalerJobBase(PipelineJob):
    """Shared frame synthesis, memoised per frame.

    ``env()`` and ``golden()`` are called independently per (frame,
    instance) — without memoisation every frame was synthesised and
    channel-split at least twice per run (and once more per golden
    check).  A small per-instance LRU bounds memory while the pipeline /
    broker walk frames in order; cached arrays are frozen so a consumer
    mutating one would fault instead of corrupting later reads.
    """

    def __init__(self, size: FrameSize = HD, frame_cache: int = 8):
        self.size = size
        self._frame = functools.lru_cache(maxsize=frame_cache)(self._make_frame)
        self._channels = functools.lru_cache(maxsize=frame_cache)(
            self._make_channels
        )
        self._golden_channel = functools.lru_cache(maxsize=frame_cache)(
            self._make_golden_channel
        )

    def _make_frame(self, t: int) -> np.ndarray:
        frame = synthetic_frame(self.size, t)
        frame.setflags(write=False)
        return frame

    def _make_channels(self, t: int) -> dict[str, np.ndarray]:
        chans = channels_of(self._frame(t))
        for arr in chans.values():
            arr.setflags(write=False)
        return chans

    def _make_golden_channel(self, t: int, channel: str) -> np.ndarray:
        out = reference.downscale_frame(self._channels(t)[channel], self.size)
        out.setflags(write=False)
        return out


class SacDownscalerJob(_DownscalerJobBase):
    """SaC/CUDA route: one program run per RGB channel (batch of 3)."""

    instances_per_frame = 3

    def __init__(
        self,
        size: FrameSize = HD,
        variant: str = NONGENERIC,
        opt=None,
        transfers: str = "boundary",
        paving: int = 1,
        frame_cache: int = 8,
    ):
        super().__init__(size, frame_cache=frame_cache)
        self.variant = variant
        self.opt = opt
        self.transfers = transfers
        self.paving = paving
        self.name = f"sac-{'nongeneric' if variant == NONGENERIC else 'generic'}"
        if opt is not None:
            self.name += "+opt"
        if paving != 1:
            self.name += f"@x{paving}"

    def compile(self, cache: CompileCache) -> DeviceProgram:
        from repro.sac.backend import CompileOptions

        source = downscaler_program_source(self.size, self.variant, paving=self.paving)
        cf = cache.compile_sac(
            source,
            "downscale",
            CompileOptions(target="cuda", opt=self.opt, transfers=self.transfers),
        )
        return cf.program

    def env(self, frame: int, instance: int) -> dict[str, np.ndarray]:
        channel = _CHANNELS[instance]
        return {"frame": self._channels(frame)[channel]}

    def golden(self, frame: int, instance: int, program: DeviceProgram):
        out = program.host_outputs[0]
        return {out: self._golden_channel(frame, _CHANNELS[instance])}


class GaspardDownscalerJob(_DownscalerJobBase):
    """Gaspard2/OpenCL route: one three-channel program run per frame."""

    instances_per_frame = 1

    def __init__(
        self, size: FrameSize = HD, opt=None, transfers: str = "boundary",
        paving: int = 1, frame_cache: int = 8,
    ):
        super().__init__(size, frame_cache=frame_cache)
        self.opt = opt
        self.transfers = transfers
        self.paving = paving
        self.name = "gaspard" if opt is None else "gaspard+opt"
        if paving != 1:
            self.name += f"@x{paving}"

    def compile(self, cache: CompileCache) -> DeviceProgram:
        ctx, _chain = cache.compile_gaspard(
            downscaler_model(self.size, paving=self.paving),
            downscaler_allocation(),
            opt=self.opt,
            transfers=self.transfers,
        )
        return ctx.program

    def env(self, frame: int, instance: int) -> dict[str, np.ndarray]:
        return {f"in_{c}": v for c, v in self._channels(frame).items()}

    def golden(self, frame: int, instance: int, program: DeviceProgram):
        return {
            f"out_{c}": self._golden_channel(frame, c) for c in _CHANNELS
        }


def downscaler_job(
    route: str,
    size: FrameSize = HD,
    variant: str = NONGENERIC,
    opt=None,
    transfers: str = "boundary",
    paving: int = 1,
) -> PipelineJob:
    """The pipeline job of one compilation route (``"sac"``/``"gaspard"``).

    ``opt`` (a :class:`repro.opt.OptOptions`), ``transfers`` and the tiler
    ``paving`` granularity flow into the route's compile options, so
    optimised, re-paved and paper-literal placements serve through the
    same pipeline.
    """
    if route == "sac":
        return SacDownscalerJob(size, variant, opt=opt, transfers=transfers, paving=paving)
    if route == "gaspard":
        return GaspardDownscalerJob(size, opt=opt, transfers=transfers, paving=paving)
    raise ReproError(f"unknown pipeline route {route!r}")
