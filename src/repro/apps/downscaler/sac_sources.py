"""The downscaler's SaC source programs (paper Figures 4-7).

Generates the four variants the paper evaluates from a
:class:`~repro.apps.downscaler.config.FilterConfig`:

* **generic** — the reusable tiler abstractions: the generic input tiler
  (Figure 4), the task (Figure 5) and the generic *for-loop* output tiler
  (Figure 6).  WLF cannot fold the for-loop nest, so after compilation the
  output tiler runs on the host (Section VIII-A).
* **non-generic** — the same input tiler and task, but the WITH-loop
  output tiler specialised to the tile size (Figure 7), which WLF fuses
  into a single WITH-loop per filter (Figure 8).

Sources are generated as text and parsed by the normal frontend — the
compiler pipeline sees exactly what a user would write.
"""

from __future__ import annotations

from repro.apps.downscaler.config import (
    WINDOW_TAPS,
    FilterConfig,
    FrameSize,
    horizontal_filter,
    vertical_filter,
)

__all__ = [
    "GENERIC",
    "NONGENERIC",
    "tiler_library_source",
    "task_source",
    "nongeneric_output_tiler_source",
    "filter_source",
    "downscaler_program_source",
]

GENERIC = "generic"
NONGENERIC = "nongeneric"

#: Figure 4 — the generic input tiler, verbatim in spirit.
_INPUT_TILER = """
int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.] repetition,
                   int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  output = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) {
          off = origin + MV( CAT( paving, fitting), rep ++ pat);
          iv = off % shape(in_frame);
          elem = in_frame[iv];
        } : elem;
      } : genarray( in_pattern, 0);
    } : tile;
  } : genarray( repetition);
  return( output);
}
"""

#: Figure 6 — the generic output tiler (a for-loop nest WLF cannot fold).
_GENERIC_OUTPUT_TILER = """
int[*] generic_output_tiler(int[*] out_frame, int[*] input, int[.] out_pattern,
                            int[.] repetition, int[.] origin, int[.,.] fitting,
                            int[.,.] paving)
{
  for( i = 0; i < repetition[[0]]; i++) {
    for( j = 0; j < repetition[[1]]; j++) {
      for( k = 0; k < out_pattern[[0]]; k++) {
        off = origin + MV( CAT( paving, fitting), [i, j, k]);
        iv = off % shape( out_frame);
        out_frame[iv] = input[[i, j, k]];
      }
    }
  }
  return( out_frame);
}
"""


def tiler_library_source() -> str:
    """The generic tiler functions shared by every variant."""
    return _INPUT_TILER + _GENERIC_OUTPUT_TILER


def task_source(config: FilterConfig, name: str) -> str:
    """Figure 5 — the interpolation task with explicit 6-tap windows."""
    lines = [
        f"int[*] {name}(int[*] input, int[.] out_pattern, int[.] repetition)",
        "{",
        "  output = with {",
        "    (. <= rep <= .) {",
        "      tile = genarray( out_pattern, 0);",
    ]
    for k, off in enumerate(config.window_offsets):
        terms = " + ".join(
            f"input[rep][{off + t}]" for t in range(WINDOW_TAPS)
        )
        lines.append(f"      tmp{k} = {terms};")
        lines.append(f"      tile[{k}] = tmp{k} / 6 - tmp{k} % 6;")
    lines += [
        "    } : tile;",
        "  } : genarray( repetition);",
        "  return( output);",
        "}",
    ]
    return "\n".join(lines) + "\n"


def nongeneric_output_tiler_source(config: FilterConfig, name: str) -> str:
    """Figure 7 — the output tiler specialised to the tile size."""
    n = config.out_pattern
    lines = [f"int[*] {name}(int[*] output, int[*] input)", "{", "  output = with {"]
    for k in range(n):
        if config.axis == 1:
            lower = f"[0,{k}]"
            step = f"[1,{n}]"
            index = f"[[i, j/{n}, {k}]]"
        else:
            lower = f"[{k},0]"
            step = f"[{n},1]"
            index = f"[[i/{n}, j, {k}]]"
        lines.append(f"    ({lower} <= [i,j] <= . step {step}) : input{index};")
    lines += ["  } : modarray( output);", "  return( output);", "}"]
    return "\n".join(lines) + "\n"


def _matrix(rows: tuple[tuple[int, ...], ...]) -> str:
    return "[" + ", ".join("[" + ",".join(str(x) for x in r) + "]" for r in rows) + "]"


def _vector(v) -> str:
    return "[" + ",".join(str(x) for x in v) + "]"


def _tiler_rows(tiler) -> tuple[str, str]:
    """(fitting, paving) in the Figure 10 row convention (one row per
    repetition/pattern dimension) from a column-convention Tiler."""
    f = tuple(zip(*tiler.fitting))  # transpose: pattern dims as rows
    p = tuple(zip(*tiler.paving))
    return _matrix(f), _matrix(p)


def filter_source(config: FilterConfig, variant: str, name: str | None = None) -> str:
    """The per-filter driver binding concrete tiler parameters."""
    if variant not in (GENERIC, NONGENERIC):
        raise ValueError(f"unknown variant {variant!r}")
    name = name or config.name
    rows, cols = config.frame_shape
    orow, ocol = config.out_shape
    rep = _vector(config.repetition_shape)
    in_fit, in_pav = _tiler_rows(config.input_tiler)
    out_fit, out_pav = _tiler_rows(config.output_tiler)
    task = f"task_{name}"
    lines = [
        f"int[{orow},{ocol}] {name}(int[{rows},{cols}] frame)",
        "{",
        f"  inter = input_tiler(frame, [{config.pattern}], {rep}, [0,0], "
        f"{in_fit}, {in_pav});",
        f"  comp = {task}(inter, [{config.out_pattern}], {rep});",
        f"  canvas = genarray([{orow},{ocol}], 0);",
    ]
    if variant == NONGENERIC:
        lines.append(f"  out = output_tiler_{name}(canvas, comp);")
    else:
        lines.append(
            f"  out = generic_output_tiler(canvas, comp, [{config.out_pattern}], "
            f"{rep}, [0,0], {out_fit}, {out_pav});"
        )
    lines += ["  return( out);", "}"]
    return "\n".join(lines) + "\n"


def downscaler_program_source(
    size: FrameSize, variant: str, paving: int = 1
) -> str:
    """The complete two-filter downscaler program for one frame size.

    ``paving`` selects the tiler paving granularity (packets per
    repetition step, :func:`~repro.apps.downscaler.config.legal_pavings`);
    the generated WITH-loops, window lists and tiler matrices all follow.
    """
    h = horizontal_filter(size, paving=paving)
    v = vertical_filter(size, paving=paving)
    parts = [tiler_library_source()]
    parts.append(task_source(h, f"task_{h.name}"))
    parts.append(task_source(v, f"task_{v.name}"))
    if variant == NONGENERIC:
        parts.append(nongeneric_output_tiler_source(h, f"output_tiler_{h.name}"))
        parts.append(nongeneric_output_tiler_source(v, f"output_tiler_{v.name}"))
    parts.append(filter_source(h, variant))
    parts.append(filter_source(v, variant))
    orow, ocol = v.out_shape
    rows, cols = size.shape
    parts.append(
        "\n".join(
            [
                f"int[{orow},{ocol}] downscale(int[{rows},{cols}] frame)",
                "{",
                f"  h = {h.name}(frame);",
                f"  v = {v.name}(h);",
                "  return( v);",
                "}",
            ]
        )
        + "\n"
    )
    return "\n".join(parts)
