"""ArrayOL model for the separable convolution (the Gaspard2 route)."""

from __future__ import annotations

from repro.apps.convolution.config import ConvolutionConfig
from repro.arrayol import (
    Allocation,
    ApplicationModel,
    CompoundTask,
    ElementaryTask,
    GPU_CPU_PLATFORM,
    Link,
    PatternExpr,
    Port,
    RepetitiveTask,
    TaskInstance,
    TilerConnector,
)
from repro.ir import expr as ir

__all__ = ["convolution_model", "convolution_allocation"]


def _weighted_sum_task(config: ConvolutionConfig, name: str) -> ElementaryTask:
    k = len(config.taps)
    pin = Port("pin", (k,), "in", dtype="float64")
    pout = Port("pout", (1,), "out", dtype="float64")
    acc: ir.Expr | None = None
    for t, c in enumerate(config.taps):
        term = ir.BinOp("*", ir.Const(float(c)), ir.Read("pin", (ir.Const(t),)))
        acc = term if acc is None else ir.BinOp("+", acc, term)
    assert acc is not None
    return ElementaryTask(
        name=name,
        inputs=(pin,),
        outputs=(pout,),
        body=(PatternExpr(port="pout", index=0, expr=acc),),
    )


def _pass_task(config: ConvolutionConfig, axis: int, name: str) -> RepetitiveTask:
    fin = Port("fin", config.shape, "in", dtype="float64")
    fout = Port("fout", config.shape, "out", dtype="float64")
    return RepetitiveTask(
        name=name,
        inputs=(fin,),
        outputs=(fout,),
        repetition=config.shape,
        inner=_weighted_sum_task(config, f"{name}_sum"),
        input_tilers=(
            TilerConnector("fin", "pin", config.input_tiler(axis)),
        ),
        output_tilers=(TilerConnector("fout", "pout", config.output_tiler()),),
    )


def convolution_model(config: ConvolutionConfig) -> ApplicationModel:
    hp = _pass_task(config, 1, "hpass")
    vp = _pass_task(config, 0, "vpass")
    top = CompoundTask(
        name="Convolution",
        inputs=(Port("image", config.shape, "in", dtype="float64"),),
        outputs=(Port("blurred", config.shape, "out", dtype="float64"),),
        instances=(TaskInstance("hp", hp), TaskInstance("vp", vp)),
        links=(
            Link(src=("", "image"), dst=("hp", "fin")),
            Link(src=("hp", "fout"), dst=("vp", "fin")),
            Link(src=("vp", "fout"), dst=("", "blurred")),
        ),
    )
    return ApplicationModel(name="Convolution", top=top)


def convolution_allocation() -> Allocation:
    return Allocation(
        platform=GPU_CPU_PLATFORM,
        mapping=(("hp", "gpu"), ("vp", "gpu")),
    )
