"""Separable circular convolution — the second dual-route application."""

from repro.apps.convolution.arrayol_model import convolution_allocation, convolution_model
from repro.apps.convolution.config import ConvolutionConfig, gaussian3, gaussian5
from repro.apps.convolution.reference import convolve, convolve_axis
from repro.apps.convolution.sac_source import convolution_program_source

__all__ = [
    "ConvolutionConfig", "gaussian3", "gaussian5",
    "convolve", "convolve_axis",
    "convolution_program_source",
    "convolution_model", "convolution_allocation",
]
