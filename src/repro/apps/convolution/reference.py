"""NumPy golden reference for the separable circular convolution."""

from __future__ import annotations

import numpy as np

from repro.apps.convolution.config import ConvolutionConfig

__all__ = ["convolve_axis", "convolve"]


def convolve_axis(frame: np.ndarray, config: ConvolutionConfig, axis: int) -> np.ndarray:
    """One 1-D pass with toroidal boundaries."""
    frame = np.asarray(frame, dtype=np.float64)
    out = np.zeros_like(frame)
    for t, c in enumerate(config.taps):
        out += c * np.roll(frame, config.center - t, axis=axis)
    return out


def convolve(frame: np.ndarray, config: ConvolutionConfig) -> np.ndarray:
    """Horizontal then vertical pass (separable application)."""
    return convolve_axis(convolve_axis(frame, config, axis=1), config, axis=0)
