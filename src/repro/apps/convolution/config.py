"""Separable circular convolution — a second dual-route application.

Beyond the paper's downscaler, this app demonstrates the library on the
workload family the paper's introduction motivates (image/signal
filtering): a separable K-tap convolution with toroidal boundaries,
expressed both as a SaC program and as an ArrayOL model, over float64
frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.tilers import Tiler

__all__ = ["ConvolutionConfig", "gaussian3", "gaussian5"]


@dataclass(frozen=True)
class ConvolutionConfig:
    """A separable stencil: the same 1-D taps applied along each axis."""

    rows: int
    cols: int
    taps: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "taps", tuple(float(t) for t in self.taps))
        if len(self.taps) < 1 or len(self.taps) % 2 == 0:
            raise ReproError("taps must have odd length >= 1")
        if self.rows < len(self.taps) or self.cols < len(self.taps):
            raise ReproError("frame smaller than the stencil")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def center(self) -> int:
        return len(self.taps) // 2

    def input_tiler(self, axis: int) -> Tiler:
        """Sliding window along ``axis``: one pattern per pixel, centred."""
        k = len(self.taps)
        fitting = ((1,), (0,)) if axis == 0 else ((0,), (1,))
        origin = (-self.center, 0) if axis == 0 else (0, -self.center)
        return Tiler(
            origin=origin,
            fitting=fitting,
            paving=((1, 0), (0, 1)),
            array_shape=self.shape,
            pattern_shape=(k,),
            repetition_shape=self.shape,
            name=f"conv_in_axis{axis}",
        )

    def output_tiler(self) -> Tiler:
        """Identity: one output pixel per repetition point."""
        return Tiler(
            origin=(0, 0),
            fitting=((0,), (1,)),
            paving=((1, 0), (0, 1)),
            array_shape=self.shape,
            pattern_shape=(1,),
            repetition_shape=self.shape,
            name="conv_out",
        )


def gaussian3(rows: int, cols: int) -> ConvolutionConfig:
    """The 3-tap binomial (Gaussian-like) smoothing kernel."""
    return ConvolutionConfig(rows=rows, cols=cols, taps=(0.25, 0.5, 0.25))


def gaussian5(rows: int, cols: int) -> ConvolutionConfig:
    """The 5-tap binomial kernel."""
    return ConvolutionConfig(
        rows=rows, cols=cols, taps=(0.0625, 0.25, 0.375, 0.25, 0.0625)
    )
