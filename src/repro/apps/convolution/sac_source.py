"""SaC source generation for the separable convolution."""

from __future__ import annotations

from repro.apps.convolution.config import ConvolutionConfig

__all__ = ["convolution_program_source"]


def _pass_source(config: ConvolutionConfig, axis: int, name: str) -> str:
    rows, cols = config.shape
    extent = rows if axis == 0 else cols
    terms = []
    for t, c in enumerate(config.taps):
        off = t - config.center
        if axis == 0:
            idx = f"[(i + {extent + off}) % {extent}, j]"
        else:
            idx = f"[i, (j + {extent + off}) % {extent}]"
        terms.append(f"{c!r} * img[{idx}]")
    body = "\n        + ".join(terms)
    return "\n".join(
        [
            f"double[{rows},{cols}] {name}(double[{rows},{cols}] img)",
            "{",
            "  out = with {",
            "    (. <= [i,j] <= .) {",
            f"      acc = {body};",
            "    } : acc;",
            f"  }} : genarray([{rows},{cols}]);",
            "  return( out);",
            "}",
        ]
    )


def convolution_program_source(config: ConvolutionConfig) -> str:
    """The two-pass program: ``blur`` = vertical(horizontal(img))."""
    rows, cols = config.shape
    return "\n\n".join(
        [
            _pass_source(config, 1, "hpass"),
            _pass_source(config, 0, "vpass"),
            "\n".join(
                [
                    f"double[{rows},{cols}] blur(double[{rows},{cols}] img)",
                    "{",
                    "  h = hpass(img);",
                    "  v = vpass(h);",
                    "  return( v);",
                    "}",
                ]
            ),
        ]
    )
