"""Case-study applications built on the library.

* :mod:`repro.apps.downscaler` — the paper's H.263 downscaler (both
  compilation routes, all variants, the experiment runner);
* :mod:`repro.apps.convolution` — a separable circular convolution
  demonstrating the fusion trade-off in the opposite direction.
"""
