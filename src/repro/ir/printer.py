"""C-family source emission for kernel bodies.

Both code generators (CUDA in :mod:`repro.sac.backend.cudagen`, OpenCL in
:mod:`repro.arrayol.backend.openclgen`) print kernel bodies through this
module; only the kernel signature, qualifiers and thread-index derivation
differ per dialect and live in the backends.

Arrays are emitted with flattened row-major addressing, matching the
generated code shown in the paper's Figure 11
(``in[index0 * 1920 + index1 * 1]``).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.expr import (
    BinOp,
    Const,
    Expr,
    LocalRef,
    ParamRef,
    Read,
    Select,
    ThreadIdx,
    UnOp,
)
from repro.ir.kernel import Kernel
from repro.ir.stmt import Assign, For, Store

__all__ = ["CSourcePrinter", "c_dtype"]

_DTYPE_TO_C = {
    "int32": "int",
    "int64": "long long",
    "float32": "float",
    "float64": "double",
    "uint32": "unsigned int",
}

# precedence: higher binds tighter
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def c_dtype(dtype: str) -> str:
    """Map an IR dtype name to its C type."""
    try:
        return _DTYPE_TO_C[dtype]
    except KeyError:
        raise IRError(f"no C mapping for dtype {dtype!r}") from None


class CSourcePrinter:
    """Prints kernel bodies as C code.

    Parameters
    ----------
    kernel:
        The kernel whose body is printed (provides array shapes for the
        flattened addressing).
    index_var:
        Naming scheme for the logical index: ``ThreadIdx(d)`` prints as
        ``f"{index_var}{d}"``; the backend must declare those variables.
    """

    def __init__(self, kernel: Kernel, index_var: str = "iv"):
        self.kernel = kernel
        self.index_var = index_var
        self._shapes = {a.name: a.shape for a in kernel.arrays}

    # -- expressions ---------------------------------------------------------

    def expr(self, e: Expr, parent_prec: int = 0) -> str:
        if isinstance(e, Const):
            if isinstance(e.value, float):
                return repr(float(e.value))
            return str(int(e.value))
        if isinstance(e, ThreadIdx):
            return f"{self.index_var}{e.dim}"
        if isinstance(e, LocalRef):
            return e.name
        if isinstance(e, ParamRef):
            return e.name
        if isinstance(e, Read):
            return f"{e.array}[{self.linear_index(e.array, e.index)}]"
        if isinstance(e, UnOp):
            op = {"-": "-", "abs": "abs", "!": "!"}[e.op]
            if e.op == "abs":
                return f"abs({self.expr(e.operand)})"
            return f"{op}({self.expr(e.operand)})"
        if isinstance(e, Select):
            return (
                f"(({self.expr(e.cond)}) ? ({self.expr(e.if_true)}) : "
                f"({self.expr(e.if_false)}))"
            )
        if isinstance(e, BinOp):
            if e.op in ("min", "max"):
                return f"{e.op}({self.expr(e.lhs)}, {self.expr(e.rhs)})"
            prec = _PRECEDENCE[e.op]
            lhs = self.expr(e.lhs, prec)
            rhs = self.expr(e.rhs, prec + 1)  # left associative
            text = f"{lhs} {e.op} {rhs}"
            if prec < parent_prec:
                return f"({text})"
            return text
        raise IRError(f"cannot print expression {e!r}")

    def linear_index(self, array: str, index: tuple[Expr, ...]) -> str:
        """Row-major flattened index expression for ``array[index]``."""
        try:
            shape = self._shapes[array]
        except KeyError:
            raise IRError(f"printer: unknown array {array!r}") from None
        if len(index) != len(shape):
            raise IRError(
                f"printer: index rank {len(index)} != rank of {array!r} ({len(shape)})"
            )
        stride = 1
        strides = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            stride *= shape[d + 1]
            strides[d] = stride
        parts = []
        for e, s in zip(index, strides):
            part = self.expr(e, _PRECEDENCE["*"])
            if s == 1:
                parts.append(part)
            else:
                parts.append(f"({part}) * {s}")
        return " + ".join(parts)

    # -- statements ----------------------------------------------------------

    def stmts(self, statements, indent: int = 1) -> str:
        """Print a statement sequence, one line per simple statement."""
        lines: list[str] = []
        self._emit(statements, indent, lines, declared=set())
        return "\n".join(lines)

    def _emit(self, statements, indent, lines, declared):
        pad = "    " * indent
        for s in statements:
            if isinstance(s, Assign):
                if s.name in declared:
                    lines.append(f"{pad}{s.name} = {self.expr(s.value)};")
                else:
                    declared.add(s.name)
                    lines.append(f"{pad}int {s.name} = {self.expr(s.value)};")
            elif isinstance(s, For):
                declared.add(s.var)
                lines.append(
                    f"{pad}for (int {s.var} = {s.start}; {s.var} < {s.stop}; "
                    f"{s.var}++) {{"
                )
                self._emit(s.body, indent + 1, lines, declared)
                lines.append(f"{pad}}}")
            elif isinstance(s, Store):
                target = f"{s.array}[{self.linear_index(s.array, s.index)}]"
                lines.append(f"{pad}{target} = {self.expr(s.value)};")
            else:
                raise IRError(f"cannot print statement {s!r}")
