"""Fused kernels: several launches composed into one (WLF at the IR level).

``sac/opt/wlf.py`` folds producer WITH-loops into their consumers at the
AST level, but only within one SaC function.  :class:`FusedKernel` is the
IR-level generalisation both routes share: the optimiser
(:mod:`repro.opt.fusion`) collapses a group of :class:`~repro.ir.program.
LaunchKernel` ops whose only coupling is a single-use, untransferred
intermediate buffer into **one** launch.  The intermediate becomes an
*internal* scratch array of the fused kernel — it no longer needs a device
allocation, transfers or inter-launch synchronisation, which is exactly
what the paper's Figure 9 WLF bars buy on the SaC route.

A fused kernel is kernel-*like*: it exposes ``name``, ``arrays``,
``scalars`` and ``array()`` with the same meaning as
:class:`~repro.ir.kernel.Kernel`, so it flows through
:class:`~repro.ir.program.LaunchKernel`, the dependence scheduler and the
hazard analysis unchanged.  External array parameters are named after the
device buffers they bind (the fused launch binds each parameter to the
buffer of the same name), so every stage's original ``array_args`` still
resolve — against the external parameters or the internal scratch.

Execution charges **one** launch overhead for the whole group while the
issue and memory phases of the stages still run back to back
(:meth:`repro.gpu.executor.GPUExecutor.kernel_breakdown`), so a fused
launch is never modelled as slower than its stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import IRError
from repro.ir.evalvec import evaluate_kernel
from repro.ir.kernel import ArrayParam, IndexSpace
from repro.ir.program import AllocDevice, LaunchKernel
from repro.ir.validate import validate_kernel

__all__ = ["FusedKernel", "make_fused_launch", "evaluate_fused", "validate_fused_kernel"]


@dataclass(frozen=True)
class FusedKernel:
    """A group of kernel launches executing as a single launch.

    Attributes
    ----------
    name:
        Launch label (shows up in profiles and schedules).
    stages:
        The original launches, in program order.  Their ``array_args``
        bind stage parameters to *fused-level* array names — external
        parameters or internal scratch.
    arrays:
        External array parameters.  Each is named after the device buffer
        the fused launch binds it to; intents are aggregated over the
        stages (read-before-write → ``in``/``inout``, else ``out``).
    internal:
        Scratch arrays private to the fused launch — the eliminated
        intermediate buffers.  Zero-initialised per launch, exactly like
        the device allocations they replace.
    """

    name: str
    stages: tuple[LaunchKernel, ...]
    arrays: tuple[ArrayParam, ...]
    internal: tuple[ArrayParam, ...] = ()
    scalars: tuple = ()
    provenance: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "internal", tuple(self.internal))
        if not self.stages:
            raise IRError(f"fused kernel {self.name!r} has no stages")

    @property
    def space(self) -> IndexSpace:
        """The driving index space (of the last stage, the group's output)."""
        return self.stages[-1].kernel.space

    def array(self, name: str) -> ArrayParam:
        for a in self.arrays:
            if a.name == name:
                return a
        for a in self.internal:
            if a.name == name:
                return a
        raise IRError(f"fused kernel {self.name!r} has no array {name!r}")

    @property
    def input_arrays(self) -> tuple[ArrayParam, ...]:
        return tuple(a for a in self.arrays if a.intent in ("in", "inout"))

    @property
    def output_arrays(self) -> tuple[ArrayParam, ...]:
        return tuple(a for a in self.arrays if a.intent in ("out", "inout"))

    @property
    def stage_kernels(self) -> tuple:
        return tuple(st.kernel for st in self.stages)

    @property
    def scratch_nbytes(self) -> int:
        """Transient bytes the fused launch keeps live for its scratch."""
        return sum(p.nbytes for p in self.internal)


def make_fused_launch(
    name: str,
    stages: tuple[LaunchKernel, ...],
    internal_buffers: set[str],
    geometry: dict[str, AllocDevice],
) -> LaunchKernel:
    """Compose ``stages`` into one fused launch.

    ``internal_buffers`` are the eliminated intermediates (they become
    scratch); ``geometry`` maps every referenced buffer to its
    ``AllocDevice``.  Stages that are themselves fused launches are
    flattened, merging their scratch.
    """
    flat: list[LaunchKernel] = []
    internal_params: dict[str, ArrayParam] = {}
    for st in stages:
        if isinstance(st.kernel, FusedKernel):
            flat.extend(st.kernel.stages)
            for p in st.kernel.internal:
                internal_params[p.name] = p
        else:
            flat.append(st)
    for buf in sorted(internal_buffers):
        alloc = geometry[buf]
        internal_params[buf] = ArrayParam(
            buf, alloc.shape, alloc.dtype, intent="out"
        )

    # aggregate external intents over the stage sequence: a buffer read
    # before any stage wrote it consumes pre-launch contents
    order: list[str] = []
    reads_before_write: set[str] = set()
    written: set[str] = set()
    for st in flat:
        for param, buf in st.array_args:
            if buf in internal_params:
                continue
            if buf not in order:
                order.append(buf)
            intent = st.kernel.array(param).intent
            if intent in ("in", "inout") and buf not in written:
                reads_before_write.add(buf)
            if intent in ("out", "inout"):
                written.add(buf)

    external: list[ArrayParam] = []
    for buf in order:
        alloc = geometry[buf]
        if buf in written:
            intent = "inout" if buf in reads_before_write else "out"
        else:
            intent = "in"
        external.append(ArrayParam(buf, alloc.shape, alloc.dtype, intent=intent))

    fused = FusedKernel(
        name=name,
        stages=tuple(flat),
        arrays=tuple(external),
        internal=tuple(internal_params.values()),
        provenance=f"fusion of {', '.join(st.kernel.name for st in flat)}",
    )
    validate_fused_kernel(fused)
    return LaunchKernel(fused, tuple((a.name, a.name) for a in fused.arrays))


def evaluate_fused(
    fused: FusedKernel,
    arrays: dict[str, np.ndarray],
    scalars: dict | None = None,
) -> None:
    """Run every stage in order against ``arrays`` (external bindings).

    Scratch arrays are zero-initialised per call — bit-identical to the
    zero-filled device allocations the fusion removed.
    """
    env: dict[str, np.ndarray] = {}
    for p in fused.arrays:
        if p.name not in arrays:
            raise IRError(f"fused kernel {fused.name!r}: missing array {p.name!r}")
        env[p.name] = arrays[p.name]
    for p in fused.internal:
        env[p.name] = np.zeros(p.shape, dtype=p.dtype)
    for st in fused.stages:
        stage_arrays = {param: env[buf] for param, buf in st.array_args}
        evaluate_kernel(st.kernel, stage_arrays, dict(st.scalar_args))


def validate_fused_kernel(fused: FusedKernel) -> None:
    """Raise :class:`IRError` when ``fused`` is structurally invalid."""
    declared = {a.name: a for a in fused.arrays}
    for p in fused.internal:
        if p.name in declared:
            raise IRError(
                f"fused kernel {fused.name!r}: scratch {p.name!r} shadows an "
                f"external parameter"
            )
        declared[p.name] = p
    for st in fused.stages:
        if isinstance(st.kernel, FusedKernel):
            raise IRError(
                f"fused kernel {fused.name!r}: nested fused stage "
                f"{st.kernel.name!r} (stages must be flattened)"
            )
        validate_kernel(st.kernel)
        bound_to: dict[str, str] = {}
        for param, buf in st.array_args:
            target = declared.get(buf)
            if target is None:
                raise IRError(
                    f"fused kernel {fused.name!r}: stage {st.kernel.name!r} "
                    f"binds unknown array {buf!r}"
                )
            sp = st.kernel.array(param)
            if tuple(target.shape) != tuple(sp.shape):
                raise IRError(
                    f"fused kernel {fused.name!r}: stage {st.kernel.name!r} "
                    f"binds {buf!r} of shape {tuple(target.shape)} to parameter "
                    f"{param!r} of shape {tuple(sp.shape)}"
                )
            if np.dtype(target.dtype) != np.dtype(sp.dtype):
                raise IRError(
                    f"fused kernel {fused.name!r}: stage {st.kernel.name!r} "
                    f"binds {buf!r} of dtype {target.dtype} to parameter "
                    f"{param!r} of dtype {sp.dtype}"
                )
            other = bound_to.get(buf)
            if other is not None:
                intents = {st.kernel.array(other).intent, sp.intent}
                if intents != {"in"}:
                    raise IRError(
                        f"fused kernel {fused.name!r}: stage {st.kernel.name!r} "
                        f"aliases {buf!r} to parameters {other!r} and {param!r} "
                        f"with write intent"
                    )
            bound_to[buf] = param
