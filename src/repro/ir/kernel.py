"""Kernels and index spaces.

A :class:`Kernel` is the unit both backends emit: a statement body executed
once per point of an :class:`IndexSpace`.  Following the paper's CUDA
backend, *one kernel corresponds to one WITH-loop generator* (SaC route) or
*one elementary task* (ArrayOL route).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

import numpy as np

from repro.errors import IRError
from repro.ir.expr import LocalRef, ParamRef, Read, ThreadIdx
from repro.ir.stmt import Assign, For, Stmt, Store, expressions_of, walk_stmts

__all__ = ["IndexSpace", "ArrayParam", "ScalarParam", "Kernel"]


@dataclass(frozen=True)
class IndexSpace:
    """A dense rectangular grid of logical index values.

    Dimension ``d`` enumerates ``lower[d], lower[d]+step[d], ...`` strictly
    below ``upper[d]``.  This mirrors a SaC generator ``(lower <= iv < upper
    step step)`` with width 1, and an ArrayOL repetition space when ``lower``
    is zero and ``step`` one.
    """

    lower: tuple[int, ...]
    upper: tuple[int, ...]
    step: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        lower = tuple(int(x) for x in self.lower)
        upper = tuple(int(x) for x in self.upper)
        step = tuple(int(x) for x in (self.step or (1,) * len(lower)))
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "step", step)
        if not (len(lower) == len(upper) == len(step)):
            raise IRError(
                f"IndexSpace rank mismatch: lower={lower} upper={upper} step={step}"
            )
        if not lower:
            raise IRError("IndexSpace must have rank >= 1")
        for d, (lo, hi, st) in enumerate(zip(lower, upper, step)):
            if st <= 0:
                raise IRError(f"IndexSpace step must be positive (dim {d}: {st})")
            if hi < lo:
                raise IRError(f"IndexSpace has negative extent (dim {d}: [{lo},{hi}))")

    @property
    def rank(self) -> int:
        return len(self.lower)

    @property
    def extent(self) -> tuple[int, ...]:
        """Number of points per dimension."""
        return tuple(
            max(0, -(-(hi - lo) // st))
            for lo, hi, st in zip(self.lower, self.upper, self.step)
        )

    @property
    def size(self) -> int:
        """Total number of points (work-items launched)."""
        return prod(self.extent)

    def is_empty(self) -> bool:
        return self.size == 0

    def index_values(self) -> list[np.ndarray]:
        """Per-dimension logical index values, broadcast over the grid.

        Returns ``rank`` arrays of shape :attr:`extent`; element ``[p]`` of
        array ``d`` is the value of ``iv[d]`` at grid point ``p``.
        """
        axes = [
            np.arange(lo, hi, st, dtype=np.int64)
            for lo, hi, st in zip(self.lower, self.upper, self.step)
        ]
        grids = np.meshgrid(*axes, indexing="ij", sparse=False)
        return list(grids)

    def contains(self, point) -> bool:
        """Whether an integer point is enumerated by this space."""
        pt = tuple(int(x) for x in point)
        if len(pt) != self.rank:
            return False
        return all(
            lo <= v < hi and (v - lo) % st == 0
            for v, lo, hi, st in zip(pt, self.lower, self.upper, self.step)
        )


@dataclass(frozen=True)
class ArrayParam:
    """A device-array parameter of a kernel."""

    name: str
    shape: tuple[int, ...]
    dtype: str = "int32"
    intent: str = "in"  # "in" | "out" | "inout"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(x) for x in self.shape))
        if self.intent not in ("in", "out", "inout"):
            raise IRError(f"ArrayParam intent must be in/out/inout, got {self.intent!r}")
        if any(s <= 0 for s in self.shape):
            raise IRError(f"ArrayParam {self.name!r} has non-positive shape {self.shape}")

    @property
    def size(self) -> int:
        return prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.size * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ScalarParam:
    """A scalar parameter of a kernel."""

    name: str
    dtype: str = "int32"


@dataclass(frozen=True)
class Kernel:
    """A GPU kernel: a statement body over an index space.

    Attributes
    ----------
    name:
        Kernel symbol name (also used in emitted CUDA/OpenCL source).
    space:
        The launch index space; one work-item per point.
    arrays:
        Device array parameters, in signature order.
    scalars:
        Scalar parameters, in signature order.
    body:
        Statements executed per work-item.
    provenance:
        Human-readable origin (e.g. ``"with-loop generator 2 of hfilter"``).
    """

    name: str
    space: IndexSpace
    arrays: tuple[ArrayParam, ...]
    scalars: tuple[ScalarParam, ...] = ()
    body: tuple[Stmt, ...] = ()
    provenance: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "scalars", tuple(self.scalars))
        object.__setattr__(self, "body", tuple(self.body))
        names = [a.name for a in self.arrays] + [s.name for s in self.scalars]
        if len(set(names)) != len(names):
            raise IRError(f"kernel {self.name!r} has duplicate parameter names: {names}")

    # -- lookups -----------------------------------------------------------

    def array(self, name: str) -> ArrayParam:
        for a in self.arrays:
            if a.name == name:
                return a
        raise IRError(f"kernel {self.name!r} has no array parameter {name!r}")

    @property
    def input_arrays(self) -> tuple[ArrayParam, ...]:
        return tuple(a for a in self.arrays if a.intent in ("in", "inout"))

    @property
    def output_arrays(self) -> tuple[ArrayParam, ...]:
        return tuple(a for a in self.arrays if a.intent in ("out", "inout"))

    # -- static summaries (consumed by the cost model) ----------------------

    def reads_per_item(self) -> int:
        """Number of array-element reads one work-item performs."""
        return self._count_per_item(lambda e: isinstance(e, Read))

    def writes_per_item(self) -> int:
        """Number of array-element writes one work-item performs."""
        count = 0
        for s, mult in self._stmts_with_multiplicity():
            if isinstance(s, Store):
                count += mult
        return count

    def flops_per_item(self) -> int:
        """Number of scalar arithmetic operations one work-item performs."""
        from repro.ir.expr import BinOp, Select, UnOp

        return self._count_per_item(lambda e: isinstance(e, (BinOp, UnOp, Select)))

    def _stmts_with_multiplicity(self):
        """Yield (stmt, multiplicity) accounting for enclosing static loops."""

        def go(stmts: tuple[Stmt, ...], mult: int):
            for s in stmts:
                yield s, mult
                if isinstance(s, For):
                    yield from go(s.body, mult * s.trip_count)

        yield from go(self.body, 1)

    def _count_per_item(self, pred) -> int:
        from repro.ir.expr import walk

        count = 0
        for s, mult in self._stmts_with_multiplicity():
            if isinstance(s, Assign):
                count += mult * sum(1 for e in walk(s.value) if pred(e))
            elif isinstance(s, Store):
                here = sum(1 for e in walk(s.value) if pred(e))
                for idx in s.index:
                    here += sum(1 for e in walk(idx) if pred(e))
                count += mult * here
        return count

    def referenced_arrays(self) -> set[str]:
        """Names of array parameters actually read or written by the body."""
        names: set[str] = set()
        for e in expressions_of(self.body):
            if isinstance(e, Read):
                names.add(e.array)
        for s in walk_stmts(self.body):
            if isinstance(s, Store):
                names.add(s.array)
        return names

    def free_locals(self) -> set[str]:
        """Local names used before any binding (should be empty when valid)."""
        bound: set[str] = set()
        free: set[str] = set()

        def exprs_of(s):
            if isinstance(s, Assign):
                yield s.value
            elif isinstance(s, Store):
                yield from s.index
                yield s.value

        def scan(stmts):
            from repro.ir.expr import walk

            for s in stmts:
                for root in exprs_of(s):
                    for e in walk(root):
                        if isinstance(e, LocalRef) and e.name not in bound:
                            free.add(e.name)
                if isinstance(s, Assign):
                    bound.add(s.name)
                elif isinstance(s, For):
                    bound.add(s.var)
                    scan(s.body)

        scan(self.body)
        return free

    def referenced_scalars(self) -> set[str]:
        return {
            e.name for e in expressions_of(self.body) if isinstance(e, ParamRef)
        }

    def max_thread_dim(self) -> int:
        """Highest ThreadIdx dimension used, or -1 when none."""
        dims = [e.dim for e in expressions_of(self.body) if isinstance(e, ThreadIdx)]
        return max(dims, default=-1)
