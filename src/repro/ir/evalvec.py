"""Vectorised functional evaluation of kernels.

The simulated GPU executes a kernel by evaluating its body **once for the
whole index space** with NumPy array semantics: every scalar expression is
mapped to an array over the grid of work-items, static ``For`` loops are
unrolled, and ``Store`` statements become fancy-indexed assignments.

This gives bit-exact results (C-truncating integer division via
:func:`repro.ir.expr.c_div`) at NumPy speed, with the same write-conflict
resolution as :func:`repro.tilers.ops.scatter` (row-major last writer wins —
kernels emitted by the backends never have intra-launch write conflicts,
which :mod:`repro.ir.validate` checks for the downscaler programs).

An optional *observer* receives every evaluated memory access; the
coalescing prober in :mod:`repro.ir.metrics` uses it to measure address
strides without a second evaluator.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import IRError
from repro.ir.expr import (
    BinOp,
    Const,
    Expr,
    LocalRef,
    ParamRef,
    Read,
    Select,
    ThreadIdx,
    UnOp,
    c_div,
    c_mod,
)
from repro.ir.kernel import IndexSpace, Kernel
from repro.ir.stmt import Assign, For, Store

__all__ = ["evaluate_kernel", "KernelEvaluationError", "AccessObserver"]

#: signature: (kind, array_name, index_arrays) with kind in {"read", "store"}
AccessObserver = Callable[[str, str, tuple[np.ndarray, ...]], None]


class KernelEvaluationError(IRError):
    """Raised when a kernel body cannot be evaluated (bad refs, OOB access)."""


class _Evaluator:
    def __init__(
        self,
        kernel: Kernel,
        arrays: dict[str, np.ndarray],
        scalars: dict[str, int | float],
        space: IndexSpace,
        observer: AccessObserver | None,
    ):
        self.kernel = kernel
        self.arrays = arrays
        self.scalars = scalars
        self.idx_values = space.index_values()
        self.env: dict = {}
        self.observer = observer

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: Expr):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ThreadIdx):
            if expr.dim >= len(self.idx_values):
                raise KernelEvaluationError(
                    f"ThreadIdx({expr.dim}) exceeds index space rank "
                    f"{len(self.idx_values)}"
                )
            return self.idx_values[expr.dim]
        if isinstance(expr, LocalRef):
            try:
                return self.env[expr.name]
            except KeyError:
                raise KernelEvaluationError(f"unbound local {expr.name!r}") from None
        if isinstance(expr, ParamRef):
            try:
                return self.scalars[expr.name]
            except KeyError:
                raise KernelEvaluationError(
                    f"unbound scalar parameter {expr.name!r}"
                ) from None
        if isinstance(expr, Read):
            return self._read(expr)
        if isinstance(expr, BinOp):
            return _apply_binop(expr.op, self.eval(expr.lhs), self.eval(expr.rhs))
        if isinstance(expr, UnOp):
            val = self.eval(expr.operand)
            if expr.op == "-":
                return np.negative(val)
            if expr.op == "abs":
                return np.abs(val)
            if expr.op == "!":
                return np.logical_not(val)
            raise KernelEvaluationError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, Select):
            return np.where(
                self.eval(expr.cond), self.eval(expr.if_true), self.eval(expr.if_false)
            )
        raise KernelEvaluationError(f"unknown expression node {type(expr).__name__}")

    def _index_tuple(self, index, shape, array, what):
        if len(index) != len(shape):
            raise KernelEvaluationError(
                f"{what} of {array!r}: index rank {len(index)} != array rank "
                f"{len(shape)}"
            )
        out = []
        for d, e in enumerate(index):
            v = np.asarray(self.eval(e))
            if not np.issubdtype(v.dtype, np.integer):
                raise KernelEvaluationError(
                    f"{what} of {array!r}: index dim {d} is not integral"
                )
            if v.size and (int(v.min()) < 0 or int(v.max()) >= shape[d]):
                raise KernelEvaluationError(
                    f"{what} of {array!r}: index dim {d} out of bounds "
                    f"[{int(v.min())}, {int(v.max())}] for extent {shape[d]}"
                )
            out.append(v)
        return tuple(out)

    def _read(self, expr: Read):
        try:
            buf = self.arrays[expr.array]
        except KeyError:
            raise KernelEvaluationError(
                f"read of unbound array {expr.array!r}"
            ) from None
        idx = self._index_tuple(expr.index, buf.shape, expr.array, "read")
        if self.observer is not None:
            self.observer("read", expr.array, idx)
        val = buf[idx]
        if np.issubdtype(np.asarray(val).dtype, np.integer):
            return np.asarray(val, dtype=np.int64)
        return val

    # -- statements ------------------------------------------------------------

    def exec(self, stmts) -> None:
        for s in stmts:
            if isinstance(s, Assign):
                self.env[s.name] = self.eval(s.value)
            elif isinstance(s, For):
                for v in range(s.start, s.stop):
                    self.env[s.var] = v
                    self.exec(s.body)
            elif isinstance(s, Store):
                try:
                    buf = self.arrays[s.array]
                except KeyError:
                    raise KernelEvaluationError(
                        f"store to unbound array {s.array!r}"
                    ) from None
                idx = self._index_tuple(s.index, buf.shape, s.array, "store")
                if self.observer is not None:
                    self.observer("store", s.array, idx)
                val = self.eval(s.value)
                buf[idx] = val  # cast to buffer dtype; row-major last writer wins
            else:
                raise KernelEvaluationError(
                    f"unknown statement node {type(s).__name__}"
                )


def _apply_binop(op: str, lhs, rhs):
    if op == "+":
        return np.add(lhs, rhs)
    if op == "-":
        return np.subtract(lhs, rhs)
    if op == "*":
        return np.multiply(lhs, rhs)
    if op == "/":
        return c_div(lhs, rhs)
    if op == "%":
        return c_mod(lhs, rhs)
    if op == "min":
        return np.minimum(lhs, rhs)
    if op == "max":
        return np.maximum(lhs, rhs)
    if op == "<":
        return np.less(lhs, rhs)
    if op == "<=":
        return np.less_equal(lhs, rhs)
    if op == ">":
        return np.greater(lhs, rhs)
    if op == ">=":
        return np.greater_equal(lhs, rhs)
    if op == "==":
        return np.equal(lhs, rhs)
    if op == "!=":
        return np.not_equal(lhs, rhs)
    if op == "&&":
        return np.logical_and(lhs, rhs)
    if op == "||":
        return np.logical_or(lhs, rhs)
    raise KernelEvaluationError(f"unknown binary op {op!r}")


def evaluate_kernel(
    kernel: Kernel,
    arrays: dict[str, np.ndarray],
    scalars: dict[str, int | float] | None = None,
    space: IndexSpace | None = None,
    observer: AccessObserver | None = None,
) -> None:
    """Execute ``kernel`` functionally against ``arrays`` (mutated in place).

    ``arrays`` maps array-parameter names to NumPy buffers whose shapes must
    match the declared parameter shapes; ``scalars`` binds scalar
    parameters.  ``space`` overrides the kernel's index space (the metrics
    prober evaluates over a 2-point sub-space); ``observer`` receives every
    memory access as ``(kind, array, index_arrays)``.
    """
    scalars = dict(scalars or {})
    for p in kernel.arrays:
        if p.name not in arrays:
            raise KernelEvaluationError(
                f"kernel {kernel.name!r}: array parameter {p.name!r} not bound"
            )
        if arrays[p.name].shape != p.shape:
            raise KernelEvaluationError(
                f"kernel {kernel.name!r}: buffer for {p.name!r} has shape "
                f"{arrays[p.name].shape}, declared {p.shape}"
            )
    for p in kernel.scalars:
        if p.name not in scalars:
            raise KernelEvaluationError(
                f"kernel {kernel.name!r}: scalar parameter {p.name!r} not bound"
            )
    space = space if space is not None else kernel.space
    if space.is_empty():
        return
    _Evaluator(kernel, arrays, scalars, space, observer).exec(kernel.body)
