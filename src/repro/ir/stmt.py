"""Statement IR for GPU kernels.

A kernel body is a sequence of statements executed once per work-item:

* :class:`Assign` binds a kernel-local scalar;
* :class:`For` is a counted loop with *static* bounds (the only loop form
  GPU kernels in this system need — e.g. the tiler pattern-filling loop of
  the paper's Figure 11).  The vectorised evaluator unrolls it;
* :class:`Store` writes one element of an output array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.expr import Expr, walk

__all__ = ["Stmt", "Assign", "For", "Store", "walk_stmts", "expressions_of"]


class Stmt:
    """Base class of all IR statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """Bind local variable ``name`` to the value of ``value``."""

    name: str
    value: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.value, Expr):
            raise IRError(f"Assign value must be an Expr, got {self.value!r}")


@dataclass(frozen=True)
class For(Stmt):
    """Counted loop ``for (var = start; var < stop; var += 1) body``.

    Bounds are compile-time constants; the loop variable is visible in the
    body as a :class:`~repro.ir.expr.LocalRef`.
    """

    var: str
    start: int
    stop: int
    body: tuple[Stmt, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not isinstance(self.start, int) or not isinstance(self.stop, int):
            raise IRError("For bounds must be compile-time integers")
        if self.stop < self.start:
            raise IRError(f"For has negative trip count: [{self.start}, {self.stop})")
        for s in self.body:
            if not isinstance(s, Stmt):
                raise IRError(f"For body element must be a Stmt, got {s!r}")

    @property
    def trip_count(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class Store(Stmt):
    """Write ``value`` to ``array[index]``."""

    array: str
    index: tuple[Expr, ...]
    value: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "index", tuple(self.index))
        for e in self.index:
            if not isinstance(e, Expr):
                raise IRError(f"Store index component must be an Expr, got {e!r}")
        if not isinstance(self.value, Expr):
            raise IRError(f"Store value must be an Expr, got {self.value!r}")


def walk_stmts(stmts):
    """Yield every statement, depth first, including loop bodies."""
    for s in stmts:
        yield s
        if isinstance(s, For):
            yield from walk_stmts(s.body)


def expressions_of(stmts):
    """Yield every expression appearing in ``stmts`` (including loop bodies),
    each expanded to all of its sub-expressions."""
    for s in walk_stmts(stmts):
        if isinstance(s, Assign):
            yield from walk(s.value)
        elif isinstance(s, Store):
            for e in s.index:
                yield from walk(e)
            yield from walk(s.value)
