"""Static/dynamic access metrics of kernels, consumed by the GPU cost model.

Coalescing on Fermi-class GPUs is determined by the address stride between
*adjacent threads of a warp*.  We measure it by **probing**: the kernel body
is evaluated over a tiny sub-space (two adjacent points along the
fastest-varying index dimension) against zero-filled buffers, while an
observer records the flat address of every read and store.  The address
delta between the two probe points is the per-access stride.  This handles
arbitrary index arithmetic — affine or not — without a symbolic engine.

:func:`unique_read_bytes` estimates the DRAM traffic of a launch: the number
of *distinct* elements the whole grid reads (overlapping windows within one
kernel hit in cache and are not re-fetched, but the same data re-read by a
*different* kernel is — the effect the paper blames for the SaC slowdown in
Section VIII-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.evalvec import evaluate_kernel
from repro.ir.kernel import IndexSpace, Kernel

__all__ = ["AccessProfile", "probe_access_profile", "unique_access_bytes"]


@dataclass(frozen=True)
class AccessProfile:
    """Per-launch memory access summary.

    Attributes
    ----------
    read_strides:
        One entry per dynamic read performed by a work-item: the address
        stride (in elements) between adjacent threads along the
        fastest-varying grid dimension.
    write_strides:
        Likewise for stores.
    reads_per_item / writes_per_item / flops_per_item:
        Static per-work-item operation counts.
    items:
        Grid size.
    """

    read_strides: tuple[int, ...]
    write_strides: tuple[int, ...]
    reads_per_item: int
    writes_per_item: int
    flops_per_item: int
    items: int


def _probe_space(space: IndexSpace) -> IndexSpace:
    """A sub-space of two adjacent points along the last dimension.

    Falls back to a single point when the last dimension has extent 1.
    """
    lower = list(space.lower)
    step = list(space.step)
    upper = [lo + 1 for lo in lower]
    last = space.rank - 1
    if space.extent[last] >= 2:
        upper[last] = lower[last] + 2 * step[last] - (step[last] - 1)
        # enumerate exactly the first two points: lower, lower+step
        upper[last] = lower[last] + step[last] + 1
    return IndexSpace(tuple(lower), tuple(upper), tuple(step))


def _flat_strides(shape: tuple[int, ...]) -> np.ndarray:
    strides = np.ones(len(shape), dtype=np.int64)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return strides


def probe_access_profile(kernel: Kernel) -> AccessProfile:
    """Measure the access strides of ``kernel`` by 2-point probing."""
    shapes = {a.name: a.shape for a in kernel.arrays}
    buffers = {a.name: np.zeros(a.shape, dtype=a.dtype) for a in kernel.arrays}
    scalars = {s.name: 0 for s in kernel.scalars}
    space = _probe_space(kernel.space)
    two_points = space.size == 2

    read_strides: list[int] = []
    write_strides: list[int] = []

    def observer(kind: str, array: str, idx: tuple[np.ndarray, ...]) -> None:
        strides = _flat_strides(shapes[array])
        flat = sum(np.asarray(i, dtype=np.int64) * s for i, s in zip(idx, strides))
        flat = np.asarray(flat).reshape(-1)
        if two_points and flat.size == 2:
            delta = int(flat[1] - flat[0])
        else:
            delta = 0  # uniform access (same address for all threads)
        (read_strides if kind == "read" else write_strides).append(delta)

    evaluate_kernel(kernel, buffers, scalars, space=space, observer=observer)
    return AccessProfile(
        read_strides=tuple(read_strides),
        write_strides=tuple(write_strides),
        reads_per_item=kernel.reads_per_item(),
        writes_per_item=kernel.writes_per_item(),
        flops_per_item=kernel.flops_per_item(),
        items=kernel.space.size,
    )


def unique_access_bytes(kernel: Kernel) -> tuple[int, int]:
    """(unique bytes read, unique bytes written) over the whole launch.

    Evaluates the kernel over its full index space with an observer and
    counts distinct flat addresses per array.  Intended for cost modelling;
    cached by the executor per kernel structure.
    """
    shapes = {a.name: a.shape for a in kernel.arrays}
    dtypes = {a.name: np.dtype(a.dtype) for a in kernel.arrays}
    buffers = {a.name: np.zeros(a.shape, dtype=a.dtype) for a in kernel.arrays}
    scalars = {s.name: 0 for s in kernel.scalars}

    read_sets: dict[str, list[np.ndarray]] = {}
    write_sets: dict[str, list[np.ndarray]] = {}

    def observer(kind: str, array: str, idx: tuple[np.ndarray, ...]) -> None:
        strides = _flat_strides(shapes[array])
        flat = sum(np.asarray(i, dtype=np.int64) * s for i, s in zip(idx, strides))
        flat = np.unique(np.asarray(flat).reshape(-1))
        target = read_sets if kind == "read" else write_sets
        target.setdefault(array, []).append(flat)

    evaluate_kernel(kernel, buffers, scalars, observer=observer)

    def total(sets: dict[str, list[np.ndarray]]) -> int:
        out = 0
        for array, chunks in sets.items():
            uniq = np.unique(np.concatenate(chunks))
            out += int(uniq.size) * dtypes[array].itemsize
        return out

    return total(read_sets), total(write_sets)
