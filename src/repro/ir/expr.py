"""Scalar expression IR for GPU kernels.

Kernels produced by both backends (SaC → CUDA, ArrayOL → OpenCL) share this
representation.  An expression denotes a per-work-item scalar value; the
vectorised evaluator (:mod:`repro.ir.evalvec`) maps it over the whole index
space at once with NumPy.

Integer arithmetic follows **C semantics** — ``/`` truncates towards zero
and ``%`` is the matching remainder — because the paper's filter
(``tmp/6 - tmp%6``) is defined in C terms.  Helpers :func:`c_div` and
:func:`c_mod` implement these semantics for NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IRError

__all__ = [
    "Expr",
    "Const",
    "ThreadIdx",
    "LocalRef",
    "ParamRef",
    "Read",
    "BinOp",
    "UnOp",
    "Select",
    "BINARY_OPS",
    "COMPARISON_OPS",
    "UNARY_OPS",
    "c_div",
    "c_mod",
    "walk",
]

#: Arithmetic binary operators (result has operand dtype).
BINARY_OPS = frozenset({"+", "-", "*", "/", "%", "min", "max"})
#: Comparison operators (result is boolean).
COMPARISON_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
#: Logical operators over booleans.
LOGICAL_OPS = frozenset({"&&", "||"})
#: Unary operators.
UNARY_OPS = frozenset({"-", "abs", "!"})

_ALL_BINOPS = BINARY_OPS | COMPARISON_OPS | LOGICAL_OPS


def c_div(a, b):
    """C integer division (truncation towards zero), elementwise."""
    a = np.asarray(a)
    b = np.asarray(b)
    if np.issubdtype(a.dtype, np.floating) or np.issubdtype(b.dtype, np.floating):
        return a / b
    q = a // b
    r = a - q * b
    # floor division rounded towards -inf; fix up where signs differ
    fix = (r != 0) & ((a < 0) != (b < 0))
    return q + fix


def c_mod(a, b):
    """C remainder (sign of the dividend), elementwise."""
    a = np.asarray(a)
    b = np.asarray(b)
    if np.issubdtype(a.dtype, np.floating) or np.issubdtype(b.dtype, np.floating):
        return np.fmod(a, b)
    return a - c_div(a, b) * b


class Expr:
    """Base class of all IR expressions (immutable value objects)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time constant."""

    value: int | float

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
            raise IRError(f"Const value must be int or float, got {self.value!r}")


@dataclass(frozen=True)
class ThreadIdx(Expr):
    """The logical index value of the work-item along dimension ``dim``.

    This is the *generator index* ``iv[dim]`` — already scaled by the index
    space's lower bound and step, not the raw hardware thread id.
    """

    dim: int

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise IRError(f"ThreadIdx dim must be >= 0, got {self.dim}")


@dataclass(frozen=True)
class LocalRef(Expr):
    """Reference to a kernel-local variable bound by ``Assign`` or ``For``."""

    name: str


@dataclass(frozen=True)
class ParamRef(Expr):
    """Reference to a scalar kernel parameter."""

    name: str


@dataclass(frozen=True)
class Read(Expr):
    """Read one element of a device array parameter."""

    array: str
    index: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "index", tuple(self.index))
        for e in self.index:
            if not isinstance(e, Expr):
                raise IRError(f"Read index component must be an Expr, got {e!r}")


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; see BINARY_OPS / COMPARISON_OPS / LOGICAL_OPS."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _ALL_BINOPS:
            raise IRError(f"unknown binary operator {self.op!r}")
        if not isinstance(self.lhs, Expr) or not isinstance(self.rhs, Expr):
            raise IRError("BinOp operands must be Expr instances")


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation; see UNARY_OPS."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise IRError(f"unknown unary operator {self.op!r}")
        if not isinstance(self.operand, Expr):
            raise IRError("UnOp operand must be an Expr instance")


@dataclass(frozen=True)
class Select(Expr):
    """Ternary select: ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def __post_init__(self) -> None:
        for e in (self.cond, self.if_true, self.if_false):
            if not isinstance(e, Expr):
                raise IRError("Select operands must be Expr instances")


def walk(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth first, pre-order."""
    yield expr
    if isinstance(expr, Read):
        for e in expr.index:
            yield from walk(e)
    elif isinstance(expr, BinOp):
        yield from walk(expr.lhs)
        yield from walk(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from walk(expr.operand)
    elif isinstance(expr, Select):
        yield from walk(expr.cond)
        yield from walk(expr.if_true)
        yield from walk(expr.if_false)
