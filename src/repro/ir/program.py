"""Device programs: the unit both backends hand to an executor.

A :class:`DeviceProgram` is a straight-line sequence of operations —
allocations, host↔device transfers, kernel launches and host compute steps —
exactly the artefact the paper's compilers produce per frame:

* SaC → CUDA inserts ``host2device``/``device2host`` around CUDA-WITH-loops
  and one launch per generator (paper Section VII);
* Gaspard2 → OpenCL produces one launch per elementary task plus the
  corresponding async transfers (paper Section VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import IRError
from repro.ir.kernel import Kernel

__all__ = [
    "Op",
    "AllocDevice",
    "FreeDevice",
    "HostToDevice",
    "DeviceToHost",
    "LaunchKernel",
    "HostWork",
    "HostCompute",
    "DeviceProgram",
    "region_count",
    "region_slices",
]


def _check_region(region, what: str):
    """Normalise a transfer region to ``((start, stop, step), ...)``.

    A region is a per-dimension slice triple selecting the elements the
    transfer actually moves; ``None`` means the whole buffer.  Bounds
    against the buffer shape are checked by ``validate_program`` (the op
    itself does not know the geometry).
    """
    if region is None:
        return None
    out = []
    for dim in region:
        start, stop, step = (int(x) for x in dim)
        if step < 1:
            raise IRError(f"{what}: region step must be >= 1, got {step}")
        if start < 0 or stop <= start:
            raise IRError(
                f"{what}: region dim must satisfy 0 <= start < stop, "
                f"got ({start}, {stop}, {step})"
            )
        out.append((start, stop, step))
    return tuple(out)


def region_slices(region) -> tuple[slice, ...]:
    """The numpy basic-slice view a transfer region selects."""
    return tuple(slice(start, stop, step) for start, stop, step in region)


def region_count(region) -> int:
    """Number of elements a transfer region moves."""
    n = 1
    for start, stop, step in region:
        n *= (stop - start + step - 1) // step
    return n


class Op:
    """Base class of device program operations."""

    __slots__ = ()


@dataclass(frozen=True)
class AllocDevice(Op):
    """Allocate a device buffer."""

    buffer: str
    shape: tuple[int, ...]
    dtype: str = "int32"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(x) for x in self.shape))
        if any(s <= 0 for s in self.shape):
            raise IRError(f"AllocDevice {self.buffer!r}: non-positive shape {self.shape}")

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class FreeDevice(Op):
    """Release a device buffer."""

    buffer: str


@dataclass(frozen=True)
class HostToDevice(Op):
    """Copy a host array into a device buffer (``memcpyHtoDasync`` when
    ``is_async``).

    ``region`` restricts the copy to a strided sub-box of the buffer, one
    ``(start, stop, step)`` slice triple per dimension (``None`` = whole
    buffer) — the static model of ``cudaMemcpy2D``-style tile uploads.
    """

    host: str
    device: str
    is_async: bool = True
    region: tuple[tuple[int, int, int], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "region", _check_region(self.region, f"H2D into {self.device!r}")
        )


@dataclass(frozen=True)
class DeviceToHost(Op):
    """Copy a device buffer into a host array (``memcpyDtoHasync`` when
    ``is_async``).

    ``region`` restricts the copy to a strided sub-box (see
    :class:`HostToDevice`); the untouched host elements keep their prior
    values.
    """

    device: str
    host: str
    is_async: bool = True
    region: tuple[tuple[int, int, int], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "region", _check_region(self.region, f"D2H from {self.device!r}")
        )


@dataclass(frozen=True)
class LaunchKernel(Op):
    """Launch ``kernel`` with array parameters bound to device buffers.

    ``array_args`` maps each kernel array-parameter name to a device buffer
    name; ``scalar_args`` binds scalar parameters to values.
    """

    kernel: Kernel
    array_args: tuple[tuple[str, str], ...]
    scalar_args: tuple[tuple[str, int | float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "array_args", tuple(tuple(p) for p in self.array_args))
        object.__setattr__(self, "scalar_args", tuple(tuple(p) for p in self.scalar_args))
        bound = {p for p, _ in self.array_args}
        declared = {a.name for a in self.kernel.arrays}
        missing = declared - bound
        extra = bound - declared
        if missing:
            raise IRError(
                f"launch of {self.kernel.name!r}: unbound array parameters {sorted(missing)}"
            )
        if extra:
            raise IRError(
                f"launch of {self.kernel.name!r}: unknown array parameters {sorted(extra)}"
            )

    def buffer_for(self, param: str) -> str:
        for p, b in self.array_args:
            if p == param:
                return b
        raise IRError(f"launch of {self.kernel.name!r}: no binding for {param!r}")


@dataclass(frozen=True)
class HostWork:
    """Static cost summary of a host compute step (for the CPU cost model)."""

    items: int
    reads_per_item: int = 1
    writes_per_item: int = 1
    flops_per_item: int = 1

    def __post_init__(self) -> None:
        if self.items < 0:
            raise IRError("HostWork items must be non-negative")


@dataclass(frozen=True)
class HostCompute(Op):
    """A sequential host-side computation over host arrays.

    The paper's *generic* SaC variant executes the output tiler as a
    for-loop nest on the host (Section VIII-A); this op models such steps.
    ``fn`` receives the host environment (a ``dict[str, np.ndarray]``) and
    mutates it; ``work`` is the static summary the CPU cost model charges.
    """

    name: str
    fn: Callable[[dict], None] = field(compare=False)
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    work: HostWork = HostWork(items=0)


@dataclass(frozen=True)
class DeviceProgram:
    """A compiled program: ops plus its host-side interface.

    Attributes
    ----------
    name:
        Program name (used in profiles and reports).
    ops:
        The operation sequence.
    host_inputs:
        Host array names the caller must provide.
    host_outputs:
        Host array names the program produces.
    source_files:
        Mapping of emitted source artefacts (e.g. ``{"kernels.cu": "..."}``)
        so callers can inspect the generated CUDA/OpenCL code.
    pooled:
        Request pooled device allocation: executors serve ``AllocDevice``
        from a free-list of retained blocks so repeated frames reuse slots
        (set by the :mod:`repro.opt` liveness pass).
    """

    name: str
    ops: tuple[Op, ...]
    host_inputs: tuple[str, ...] = ()
    host_outputs: tuple[str, ...] = ()
    source_files: tuple[tuple[str, str], ...] = field(default=(), compare=False)
    pooled: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "host_inputs", tuple(self.host_inputs))
        object.__setattr__(self, "host_outputs", tuple(self.host_outputs))
        for op in self.ops:
            if not isinstance(op, Op):
                raise IRError(f"DeviceProgram op must be an Op, got {op!r}")

    # -- structural queries used by tests and the report layer --------------

    @property
    def kernels(self) -> tuple[Kernel, ...]:
        return tuple(op.kernel for op in self.ops if isinstance(op, LaunchKernel))

    @property
    def launch_count(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, LaunchKernel))

    @property
    def h2d_count(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, HostToDevice))

    @property
    def d2h_count(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, DeviceToHost))

    @property
    def host_compute_count(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, HostCompute))

    def source(self, filename: str) -> str:
        for name, text in self.source_files:
            if name == filename:
                return text
        raise IRError(f"program {self.name!r} has no source file {filename!r}")
