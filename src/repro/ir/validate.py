"""Static validation of kernels and device programs.

The backends run these checks on everything they emit; the test suite also
uses them as invariants for property-based testing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IRError
from repro.ir.kernel import Kernel
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)
from repro.ir.stmt import Store, walk_stmts

__all__ = ["validate_kernel", "validate_program"]


def validate_kernel(kernel: Kernel) -> None:
    """Raise :class:`IRError` when ``kernel`` is structurally invalid."""
    free = kernel.free_locals()
    if free:
        raise IRError(f"kernel {kernel.name!r}: locals used before binding: {sorted(free)}")

    declared_arrays = {a.name: a for a in kernel.arrays}
    declared_scalars = {s.name for s in kernel.scalars}

    used = kernel.referenced_arrays()
    unknown = used - set(declared_arrays)
    if unknown:
        raise IRError(
            f"kernel {kernel.name!r}: undeclared arrays referenced: {sorted(unknown)}"
        )
    unknown_scalars = kernel.referenced_scalars() - declared_scalars
    if unknown_scalars:
        raise IRError(
            f"kernel {kernel.name!r}: undeclared scalars referenced: "
            f"{sorted(unknown_scalars)}"
        )

    max_dim = kernel.max_thread_dim()
    if max_dim >= kernel.space.rank:
        raise IRError(
            f"kernel {kernel.name!r}: ThreadIdx({max_dim}) exceeds index space "
            f"rank {kernel.space.rank}"
        )

    from repro.ir.expr import Read, walk

    for s in walk_stmts(kernel.body):
        if isinstance(s, Store):
            param = declared_arrays.get(s.array)
            if param is not None and param.intent == "in":
                raise IRError(
                    f"kernel {kernel.name!r}: store to read-only array {s.array!r}"
                )
            if param is not None and len(s.index) != len(param.shape):
                raise IRError(
                    f"kernel {kernel.name!r}: store to {s.array!r} with index rank "
                    f"{len(s.index)}, array rank {len(param.shape)}"
                )
        from repro.ir.stmt import Assign

        roots = []
        if isinstance(s, Assign):
            roots = [s.value]
        elif isinstance(s, Store):
            roots = list(s.index) + [s.value]
        for root in roots:
            for e in walk(root):
                if isinstance(e, Read):
                    param = declared_arrays.get(e.array)
                    if param is not None and len(e.index) != len(param.shape):
                        raise IRError(
                            f"kernel {kernel.name!r}: read of {e.array!r} with index "
                            f"rank {len(e.index)}, array rank {len(param.shape)}"
                        )


def validate_program(program: DeviceProgram) -> None:
    """Raise :class:`IRError` when ``program`` is inconsistent.

    Checks performed:

    * every device buffer is allocated before use and not used after free;
    * no double allocation / double free;
    * kernel launches bind parameters to live buffers of matching
      shape/dtype, and never alias one buffer to two parameters when any
      of them is written;
    * transfers reference live device buffers, and a host array moved
      through several transfers keeps a consistent shape/dtype (matching
      each device buffer's ``AllocDevice`` declaration);
    * host arrays consumed by transfers or host steps are program inputs or
      were produced earlier;
    * every declared host output is actually produced.
    """
    live: dict[str, AllocDevice] = {}
    freed: set[str] = set()
    host_defined: set[str] = set(program.host_inputs)
    # host array -> (shape, dtype) inferred from the first transfer touching
    # it; host steps may reshape arrays, so their writes clear the record
    host_geometry: dict[str, tuple[tuple[int, ...], np.dtype]] = {}

    def check_host_geometry(host: str, alloc: AllocDevice, what: str) -> None:
        geom = (tuple(alloc.shape), np.dtype(alloc.dtype))
        known = host_geometry.setdefault(host, geom)
        if known[0] != geom[0]:
            raise IRError(
                f"{what}: host array {host!r} has shape {known[0]}, device "
                f"buffer declares {geom[0]}"
            )
        if known[1] != geom[1]:
            raise IRError(
                f"{what}: host array {host!r} has dtype {known[1]}, device "
                f"buffer declares {geom[1]}"
            )

    def require_live(buffer: str, what: str) -> AllocDevice:
        if buffer in live:
            return live[buffer]
        if buffer in freed:
            raise IRError(f"{what}: device buffer {buffer!r} used after free")
        raise IRError(f"{what}: device buffer {buffer!r} is not allocated")

    def check_region(region, alloc: AllocDevice, what: str) -> None:
        if region is None:
            return
        if len(region) != len(alloc.shape):
            raise IRError(
                f"{what}: region has rank {len(region)}, buffer "
                f"{alloc.buffer!r} has rank {len(alloc.shape)}"
            )
        for d, ((start, stop, _step), n) in enumerate(zip(region, alloc.shape)):
            if stop > n:
                raise IRError(
                    f"{what}: region dim {d} reaches {stop}, buffer "
                    f"{alloc.buffer!r} extends only to {n}"
                )

    for op in program.ops:
        if isinstance(op, AllocDevice):
            if op.buffer in live:
                raise IRError(f"double allocation of device buffer {op.buffer!r}")
            freed.discard(op.buffer)
            live[op.buffer] = op
        elif isinstance(op, FreeDevice):
            if op.buffer not in live:
                raise IRError(f"free of unallocated device buffer {op.buffer!r}")
            del live[op.buffer]
            freed.add(op.buffer)
        elif isinstance(op, HostToDevice):
            what = f"H2D {op.host}->{op.device}"
            alloc = require_live(op.device, what)
            if op.host not in host_defined:
                raise IRError(
                    f"H2D transfer reads undefined host array {op.host!r} "
                    f"(not an input and not produced earlier)"
                )
            check_host_geometry(op.host, alloc, what)
            check_region(op.region, alloc, what)
        elif isinstance(op, DeviceToHost):
            what = f"D2H {op.device}->{op.host}"
            alloc = require_live(op.device, what)
            check_region(op.region, alloc, what)
            # the download (re)defines the host array with the buffer's
            # geometry, so earlier records are replaced, not compared
            host_geometry[op.host] = (tuple(alloc.shape), np.dtype(alloc.dtype))
            host_defined.add(op.host)
        elif isinstance(op, LaunchKernel):
            from repro.ir.fused import FusedKernel, validate_fused_kernel

            if isinstance(op.kernel, FusedKernel):
                validate_fused_kernel(op.kernel)
            else:
                validate_kernel(op.kernel)
            bound_to: dict[str, str] = {}
            for param_name, buffer in op.array_args:
                other = bound_to.get(buffer)
                if other is not None:
                    intents = {
                        op.kernel.array(other).intent,
                        op.kernel.array(param_name).intent,
                    }
                    if intents != {"in"}:
                        raise IRError(
                            f"launch {op.kernel.name!r}: buffer {buffer!r} bound "
                            f"to parameters {other!r} and {param_name!r} with "
                            f"write intent (aliasing)"
                        )
                bound_to[buffer] = param_name
            for param_name, buffer in op.array_args:
                alloc = require_live(buffer, f"launch {op.kernel.name!r}")
                param = op.kernel.array(param_name)
                if tuple(alloc.shape) != tuple(param.shape):
                    raise IRError(
                        f"launch {op.kernel.name!r}: buffer {buffer!r} has shape "
                        f"{alloc.shape}, parameter {param_name!r} declares {param.shape}"
                    )
                if np.dtype(alloc.dtype) != np.dtype(param.dtype):
                    raise IRError(
                        f"launch {op.kernel.name!r}: buffer {buffer!r} has dtype "
                        f"{alloc.dtype}, parameter {param_name!r} declares {param.dtype}"
                    )
            scalar_names = {s.name for s in op.kernel.scalars}
            bound = {name for name, _ in op.scalar_args}
            if scalar_names - bound:
                raise IRError(
                    f"launch {op.kernel.name!r}: unbound scalars "
                    f"{sorted(scalar_names - bound)}"
                )
        elif isinstance(op, HostCompute):
            for name in op.reads:
                if name not in host_defined:
                    raise IRError(
                        f"host step {op.name!r} reads undefined host array {name!r}"
                    )
            host_defined.update(op.writes)
            for name in op.writes:
                host_geometry.pop(name, None)  # host code may reshape
        else:
            raise IRError(f"unknown op {op!r}")

    missing_outputs = set(program.host_outputs) - host_defined
    if missing_outputs:
        raise IRError(
            f"program {program.name!r} never produces declared outputs "
            f"{sorted(missing_outputs)}"
        )
