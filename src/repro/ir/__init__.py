"""Backend-neutral kernel IR shared by the SaC/CUDA and ArrayOL/OpenCL routes.

The IR has three layers:

* scalar **expressions** and **statements** (:mod:`repro.ir.expr`,
  :mod:`repro.ir.stmt`) executed once per work-item;
* **kernels** over rectangular index spaces (:mod:`repro.ir.kernel`);
* **device programs** — transfer/launch/host-step sequences
  (:mod:`repro.ir.program`).

Evaluation is vectorised (:mod:`repro.ir.evalvec`); emission to CUDA-C and
OpenCL-C goes through :mod:`repro.ir.printer`; the GPU cost model consumes
:mod:`repro.ir.metrics`.
"""

from repro.ir.evalvec import KernelEvaluationError, evaluate_kernel
from repro.ir.expr import (
    BinOp,
    Const,
    Expr,
    LocalRef,
    ParamRef,
    Read,
    Select,
    ThreadIdx,
    UnOp,
    c_div,
    c_mod,
)
from repro.ir.fused import (
    FusedKernel,
    evaluate_fused,
    make_fused_launch,
    validate_fused_kernel,
)
from repro.ir.kernel import ArrayParam, IndexSpace, Kernel, ScalarParam
from repro.ir.metrics import AccessProfile, probe_access_profile, unique_access_bytes
from repro.ir.printer import CSourcePrinter, c_dtype
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    LaunchKernel,
    Op,
)
from repro.ir.stmt import Assign, For, Stmt, Store
from repro.ir.validate import validate_kernel, validate_program

__all__ = [
    # expr
    "Expr", "Const", "ThreadIdx", "LocalRef", "ParamRef", "Read", "BinOp",
    "UnOp", "Select", "c_div", "c_mod",
    # stmt
    "Stmt", "Assign", "For", "Store",
    # kernel
    "IndexSpace", "ArrayParam", "ScalarParam", "Kernel",
    # fusion
    "FusedKernel", "make_fused_launch", "evaluate_fused", "validate_fused_kernel",
    # program
    "Op", "AllocDevice", "FreeDevice", "HostToDevice", "DeviceToHost",
    "LaunchKernel", "HostWork", "HostCompute", "DeviceProgram",
    # evaluation & analysis
    "evaluate_kernel", "KernelEvaluationError", "AccessProfile",
    "probe_access_profile", "unique_access_bytes",
    # printing & validation
    "CSourcePrinter", "c_dtype", "validate_kernel", "validate_program",
]
