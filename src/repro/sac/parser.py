"""Recursive-descent parser for the SaC subset.

Produces the AST of :mod:`repro.sac.ast`.  The grammar follows the paper's
WITH-loop syntax (Figure 1) plus the constructs its programs use
(Figures 4-7): functions, C-style for loops, indexed assignment, dot bounds,
destructured generator variables, ``step``/``width`` filters.
"""

from __future__ import annotations

from repro.errors import SacSyntaxError, SourceLocation
from repro.sac import ast
from repro.sac.lexer import Token, tokenize

__all__ = ["parse", "parse_expression"]


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse a SaC program (a sequence of function definitions)."""
    return _Parser(tokenize(source, filename)).program()


def parse_expression(source: str, filename: str = "<string>") -> ast.Expr:
    """Parse a single SaC expression (testing convenience)."""
    p = _Parser(tokenize(source, filename))
    e = p.expression()
    p.expect_eof()
    return e


_BASE_TYPES = ("int", "float", "double", "bool", "void")

# binary operator precedence, loosest first
_BIN_LEVELS = [
    ("||",),
    ("&&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("++",),
    ("+", "-"),
    ("*", "/", "%"),
]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def loc(self) -> SourceLocation:
        return self.cur.loc

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def at_op(self, text: str) -> bool:
        return self.at("op", text)

    def at_kw(self, text: str) -> bool:
        return self.at("kw", text)

    def accept_op(self, text: str) -> bool:
        if self.at_op(text):
            self.advance()
            return True
        return False

    def accept_kw(self, text: str) -> bool:
        if self.at_kw(text):
            self.advance()
            return True
        return False

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise SacSyntaxError(
                f"expected {want!r}, found {self.cur.text or self.cur.kind!r}",
                self.loc(),
            )
        return self.advance()

    def expect_eof(self) -> None:
        if self.cur.kind != "eof":
            raise SacSyntaxError(
                f"unexpected trailing input {self.cur.text!r}", self.loc()
            )

    # -- top level -------------------------------------------------------------

    def program(self) -> ast.Program:
        loc = self.loc()
        funs = []
        while not self.at("eof"):
            funs.append(self.fundef())
        names = [f.name for f in funs]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SacSyntaxError(f"duplicate function definitions: {sorted(dupes)}", loc)
        return ast.Program(functions=tuple(funs), loc=loc)

    def fundef(self) -> ast.FunDef:
        loc = self.loc()
        ret = self.type_spec()
        name = self.expect("id").text
        self.expect("op", "(")
        params = []
        if not self.at_op(")"):
            while True:
                ploc = self.loc()
                ptype = self.type_spec()
                pname = self.expect("id").text
                params.append(ast.Param(type=ptype, name=pname, loc=ploc))
                if not self.accept_op(","):
                    break
        self.expect("op", ")")
        body = self.block()
        return ast.FunDef(ret_type=ret, name=name, params=tuple(params), body=body, loc=loc)

    def type_spec(self) -> ast.TypeSpec:
        loc = self.loc()
        if not (self.cur.kind == "kw" and self.cur.text in _BASE_TYPES):
            raise SacSyntaxError(
                f"expected a type, found {self.cur.text!r}", self.loc()
            )
        base = self.advance().text
        dims: tuple[int | str, ...] | None = None
        if self.accept_op("["):
            entries: list[int | str] = []
            while True:
                if self.accept_op("*"):
                    entries.append("*")
                elif self.accept_op("+"):
                    entries.append("+")
                elif self.accept_op("."):
                    entries.append(".")
                elif self.at("int"):
                    entries.append(int(self.advance().text))
                else:
                    raise SacSyntaxError(
                        f"bad dimension specifier {self.cur.text!r}", self.loc()
                    )
                if not self.accept_op(","):
                    break
            self.expect("op", "]")
            if ("*" in entries or "+" in entries) and len(entries) != 1:
                raise SacSyntaxError(
                    "'*'/'+' dimension specifiers must appear alone", loc
                )
            dims = tuple(entries)
        return ast.TypeSpec(base=base, dims=dims, loc=loc)

    # -- statements ----------------------------------------------------------------

    def block(self) -> tuple[ast.Stmt, ...]:
        self.expect("op", "{")
        stmts = []
        while not self.at_op("}"):
            stmts.append(self.statement())
        self.expect("op", "}")
        return tuple(stmts)

    def statement(self) -> ast.Stmt:
        loc = self.loc()
        if self.at_kw("return"):
            self.advance()
            value = None
            if not self.at_op(";"):
                value = self.expression()
            self.expect("op", ";")
            return ast.Return(value=value, loc=loc)
        if self.at_kw("for"):
            return self.for_loop()
        if self.at_kw("if"):
            return self.if_else()
        if self.at_op("{"):
            return ast.Block(stmts=self.block(), loc=loc)
        # assignment: id ('[' expr ']')? '=' expr ';'
        name = self.expect("id").text
        if self.accept_op("["):
            index = self.index_argument()
            self.expect("op", "]")
            self.expect("op", "=")
            value = self.expression()
            self.expect("op", ";")
            return ast.IndexedAssign(name=name, index=index, value=value, loc=loc)
        self.expect("op", "=")
        value = self.expression()
        self.expect("op", ";")
        return ast.Assign(name=name, value=value, loc=loc)

    def for_loop(self) -> ast.ForLoop:
        loc = self.loc()
        self.expect("kw", "for")
        self.expect("op", "(")
        init_loc = self.loc()
        init_name = self.expect("id").text
        self.expect("op", "=")
        init = ast.Assign(name=init_name, value=self.expression(), loc=init_loc)
        self.expect("op", ";")
        cond = self.expression()
        self.expect("op", ";")
        upd_loc = self.loc()
        upd_name = self.expect("id").text
        if self.accept_op("++"):
            update: ast.Stmt = ast.Assign(
                name=upd_name,
                value=ast.BinExpr(
                    op="+",
                    lhs=ast.Var(name=upd_name, loc=upd_loc),
                    rhs=ast.IntLit(value=1, loc=upd_loc),
                    loc=upd_loc,
                ),
                loc=upd_loc,
            )
        else:
            self.expect("op", "=")
            update = ast.Assign(name=upd_name, value=self.expression(), loc=upd_loc)
        self.expect("op", ")")
        body = self.block()
        return ast.ForLoop(init=init, cond=cond, update=update, body=body, loc=loc)

    def if_else(self) -> ast.IfElse:
        loc = self.loc()
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.block()
        orelse: tuple[ast.Stmt, ...] = ()
        if self.accept_kw("else"):
            if self.at_kw("if"):
                orelse = (self.if_else(),)
            else:
                orelse = self.block()
        return ast.IfElse(cond=cond, then=then, orelse=orelse, loc=loc)

    # -- expressions --------------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_BIN_LEVELS):
            return self._unary()
        ops = _BIN_LEVELS[level]
        lhs = self._binary(level + 1)
        while self.cur.kind == "op" and self.cur.text in ops:
            loc = self.loc()
            op = self.advance().text
            rhs = self._binary(level + 1)
            lhs = ast.BinExpr(op=op, lhs=lhs, rhs=rhs, loc=loc)
        return lhs

    def _unary(self) -> ast.Expr:
        loc = self.loc()
        if self.accept_op("-"):
            return ast.UnExpr(op="-", operand=self._unary(), loc=loc)
        if self.accept_op("!"):
            return ast.UnExpr(op="!", operand=self._unary(), loc=loc)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        e = self._primary()
        while self.at_op("["):
            loc = self.loc()
            self.advance()
            index = self.index_argument()
            self.expect("op", "]")
            e = ast.IndexExpr(array=e, index=index, loc=loc)
        return e

    def index_argument(self) -> ast.Expr:
        """The inside of ``a[...]``: an expression or an ``[i,j]`` literal
        (the paper's ``a[[i,j,k]]`` is an ArrayLit index)."""
        return self.expression()

    def _primary(self) -> ast.Expr:
        loc = self.loc()
        if self.at("int"):
            return ast.IntLit(value=int(self.advance().text), loc=loc)
        if self.at("float"):
            return ast.FloatLit(value=float(self.advance().text), loc=loc)
        if self.at_kw("true"):
            self.advance()
            return ast.BoolLit(value=True, loc=loc)
        if self.at_kw("false"):
            self.advance()
            return ast.BoolLit(value=False, loc=loc)
        if self.at_kw("with"):
            return self.with_loop()
        if self.at_kw("genarray") and self.peek().text == "(":
            # array-constructor call form (paper Figure 5:
            # ``tile = genarray(out_pattern, 0);``)
            self.advance()
            self.expect("op", "(")
            args = [self.expression()]
            while self.accept_op(","):
                args.append(self.expression())
            self.expect("op", ")")
            return ast.Call(name="genarray", args=tuple(args), loc=loc)
        if self.at_op("("):
            self.advance()
            e = self.expression()
            self.expect("op", ")")
            return e
        if self.at_op("["):
            self.advance()
            elements = []
            if not self.at_op("]"):
                while True:
                    elements.append(self.expression())
                    if not self.accept_op(","):
                        break
            self.expect("op", "]")
            return ast.ArrayLit(elements=tuple(elements), loc=loc)
        if self.at("id"):
            name = self.advance().text
            if self.accept_op("("):
                args = []
                if not self.at_op(")"):
                    while True:
                        args.append(self.expression())
                        if not self.accept_op(","):
                            break
                self.expect("op", ")")
                return ast.Call(name=name, args=tuple(args), loc=loc)
            return ast.Var(name=name, loc=loc)
        raise SacSyntaxError(
            f"expected an expression, found {self.cur.text or self.cur.kind!r}",
            loc,
        )

    # -- WITH-loops ------------------------------------------------------------------

    def with_loop(self) -> ast.WithLoop:
        loc = self.loc()
        self.expect("kw", "with")
        self.expect("op", "{")
        generators = []
        while not self.at_op("}"):
            generators.append(self.generator())
        self.expect("op", "}")
        if not generators:
            raise SacSyntaxError("WITH-loop needs at least one generator", loc)
        self.expect("op", ":")
        operation = self.operation()
        return ast.WithLoop(generators=tuple(generators), operation=operation, loc=loc)

    def _gen_bound(self) -> ast.Expr:
        loc = self.loc()
        if self.accept_op("."):
            return ast.Dot(loc=loc)
        # bounds must stop before the generator's own '<='/'<' — parse below
        # the comparison precedence level (starting at '++')
        return self._binary(4)

    def _relop(self) -> str:
        if self.accept_op("<="):
            return "<="
        if self.accept_op("<"):
            return "<"
        raise SacSyntaxError(
            f"expected '<=' or '<' in generator, found {self.cur.text!r}", self.loc()
        )

    def generator(self) -> ast.Generator:
        loc = self.loc()
        self.expect("op", "(")
        lower_loc = self.loc()
        lower_expr = self._gen_bound()
        lower_op = self._relop()
        # index variable(s): bare id or destructured [i, j].  The lower bound
        # may itself have parsed an ArrayLit of Vars when destructuring is
        # written without spacing tricks — but our grammar reads the variable
        # position explicitly, so no ambiguity arises here.
        vloc = self.loc()
        if self.accept_op("["):
            names = [self.expect("id").text]
            while self.accept_op(","):
                names.append(self.expect("id").text)
            self.expect("op", "]")
            vars_, destructured = tuple(names), True
        else:
            vars_, destructured = (self.expect("id").text,), False
        if len(set(vars_)) != len(vars_):
            raise SacSyntaxError("duplicate generator index variables", vloc)
        upper_op = self._relop()
        upper_expr = self._gen_bound()
        step = None
        width = None
        if self.accept_kw("step"):
            step = self.expression()
        if self.accept_kw("width"):
            width = self.expression()
        self.expect("op", ")")
        body: tuple[ast.Stmt, ...] = ()
        if self.at_op("{"):
            body = self.block()
        self.expect("op", ":")
        expr = self.expression()
        self.expect("op", ";")
        return ast.Generator(
            lower=ast.GenBound(expr=lower_expr, op=lower_op, loc=lower_loc),
            vars=vars_,
            destructured=destructured,
            upper=ast.GenBound(expr=upper_expr, op=upper_op, loc=loc),
            step=step,
            width=width,
            body=body,
            expr=expr,
            loc=loc,
        )

    def operation(self) -> ast.Operation:
        loc = self.loc()
        if self.accept_kw("genarray"):
            self.expect("op", "(")
            shape = self.expression()
            default = None
            if self.accept_op(","):
                default = self.expression()
            self.expect("op", ")")
            return ast.GenArray(shape=shape, default=default, loc=loc)
        if self.accept_kw("modarray"):
            self.expect("op", "(")
            array = self.expression()
            self.expect("op", ")")
            return ast.ModArray(array=array, loc=loc)
        if self.accept_kw("fold"):
            self.expect("op", "(")
            fun = self.expect("id").text
            self.expect("op", ",")
            neutral = self.expression()
            self.expect("op", ")")
            return ast.Fold(fun=fun, neutral=neutral, loc=loc)
        raise SacSyntaxError(
            f"expected genarray/modarray/fold, found {self.cur.text!r}", loc
        )
