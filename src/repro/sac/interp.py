"""Reference interpreter for the SaC subset.

A straightforward tree walker implementing the language's semantics exactly
as the paper describes them — single-assignment arrays (indexed assignment
is a functional cell update), deterministic WITH-loops with disjoint
generators, C integer arithmetic.  It is the semantic oracle the optimiser
and CUDA backend are tested against.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.errors import SacRuntimeError
from repro.ir.expr import c_div, c_mod
from repro.sac import ast
from repro.sac.builtins import BUILTINS, FOLD_FUNS, call_builtin
from repro.sac.values import (
    BASE_DTYPES,
    Value,
    as_index_vector,
    is_scalar,
    select,
    shape_of,
    to_python,
    with_cell_set,
)

__all__ = ["Interpreter"]

_MAX_CALL_DEPTH = 64
_MAX_LOOP_ITERATIONS = 10_000_000


class _ReturnValue(Exception):
    def __init__(self, value: Value | None):
        self.value = value


class Interpreter:
    """Evaluates SaC programs.

    Parameters
    ----------
    program:
        The parsed (optionally optimised) program.
    check_disjoint:
        Verify that WITH-loop generators never write the same cell twice
        (the determinism condition); costs one byte per result cell.
    """

    def __init__(self, program: ast.Program, check_disjoint: bool = True):
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.check_disjoint = check_disjoint

    # -- public API --------------------------------------------------------------

    def call(self, name: str, args: list[Value] | None = None) -> Value:
        """Call function ``name`` with the given argument values."""
        return self._call(name, list(args or []), depth=0)

    def execute_statements(self, stmts, env: dict[str, Value]) -> dict[str, Value]:
        """Execute a statement list against ``env`` (mutated and returned).

        Used by the CUDA backend's host-compute steps: constructs the
        compiler keeps on the host (for-loop nests, dynamic WITH-loops) run
        under the reference semantics with the surrounding arrays bound in
        ``env``.
        """
        self._exec_block(stmts, env, depth=0)
        return env

    # -- functions ----------------------------------------------------------------

    def _call(self, name: str, args: list[Value], depth: int) -> Value:
        if depth > _MAX_CALL_DEPTH:
            raise SacRuntimeError(f"call depth exceeded calling {name!r}")
        fun = self.functions.get(name)
        if fun is None:
            if name in BUILTINS:
                return call_builtin(name, args)
            raise SacRuntimeError(f"undefined function {name!r}")
        if len(args) != len(fun.params):
            raise SacRuntimeError(
                f"{name!r} expects {len(fun.params)} arguments, got {len(args)}"
            )
        env: dict[str, Value] = {}
        for p, a in zip(fun.params, args):
            env[p.name] = self._coerce_param(p, a)
        try:
            self._exec_block(fun.body, env, depth)
        except _ReturnValue as r:
            return r.value
        if fun.ret_type.base == "void":
            return None
        raise SacRuntimeError(f"function {name!r} finished without returning a value")

    def _coerce_param(self, p: ast.Param, a: Value) -> Value:
        t = p.type
        dtype = BASE_DTYPES.get(t.base)
        if dtype is None:
            raise SacRuntimeError(f"parameter {p.name!r} has unusable type {t}")
        if t.is_scalar:
            if not is_scalar(a):
                raise SacRuntimeError(
                    f"parameter {p.name!r} expects a scalar, got shape {shape_of(a)}"
                )
            return a
        arr = np.asarray(a, dtype=dtype)
        self._check_dims(p.name, t, arr.shape)
        return arr

    @staticmethod
    def _check_dims(name: str, t: ast.TypeSpec, shape: tuple[int, ...]) -> None:
        dims = t.dims
        assert dims is not None
        if dims == ("*",):
            return
        if dims == ("+",):
            if len(shape) < 1:
                raise SacRuntimeError(f"parameter {name!r}: expected rank >= 1")
            return
        if len(dims) != len(shape):
            raise SacRuntimeError(
                f"parameter {name!r}: expected rank {len(dims)}, got shape {shape}"
            )
        for d, (spec, ext) in enumerate(zip(dims, shape)):
            if isinstance(spec, int) and spec != ext:
                raise SacRuntimeError(
                    f"parameter {name!r}: axis {d} expects extent {spec}, got {ext}"
                )

    # -- statements -----------------------------------------------------------------

    def _exec_block(self, stmts, env: dict[str, Value], depth: int) -> None:
        for s in stmts:
            self._exec_stmt(s, env, depth)

    def _exec_stmt(self, s: ast.Stmt, env: dict[str, Value], depth: int) -> None:
        if isinstance(s, ast.Assign):
            env[s.name] = self._eval(s.value, env, depth)
        elif isinstance(s, ast.IndexedAssign):
            if s.name not in env:
                raise SacRuntimeError(f"indexed assignment to undefined {s.name!r}", s.loc)
            idx = self._eval(s.index, env, depth)
            val = self._eval(s.value, env, depth)
            base = env[s.name]
            if is_scalar(base):
                raise SacRuntimeError(f"cannot index scalar {s.name!r}", s.loc)
            env[s.name] = with_cell_set(base, idx, val)
        elif isinstance(s, ast.Block):
            self._exec_block(s.stmts, env, depth)
        elif isinstance(s, ast.ForLoop):
            self._exec_stmt(s.init, env, depth)
            iters = 0
            while self._truthy(self._eval(s.cond, env, depth), s.loc):
                self._exec_block(s.body, env, depth)
                self._exec_stmt(s.update, env, depth)
                iters += 1
                if iters > _MAX_LOOP_ITERATIONS:
                    raise SacRuntimeError("for-loop iteration limit exceeded", s.loc)
        elif isinstance(s, ast.IfElse):
            if self._truthy(self._eval(s.cond, env, depth), s.loc):
                self._exec_block(s.then, env, depth)
            else:
                self._exec_block(s.orelse, env, depth)
        elif isinstance(s, ast.Return):
            raise _ReturnValue(
                None if s.value is None else self._eval(s.value, env, depth)
            )
        else:
            raise SacRuntimeError(f"unknown statement {type(s).__name__}", s.loc)

    @staticmethod
    def _truthy(v: Value, loc) -> bool:
        v = to_python(v)
        if isinstance(v, (bool, np.bool_)):
            return bool(v)
        raise SacRuntimeError(f"condition is not boolean: {v!r}", loc)

    # -- expressions ------------------------------------------------------------------

    def _eval(self, e: ast.Expr, env: dict[str, Value], depth: int) -> Value:
        if isinstance(e, ast.IntLit):
            return e.value
        if isinstance(e, ast.FloatLit):
            return e.value
        if isinstance(e, ast.BoolLit):
            return e.value
        if isinstance(e, ast.Var):
            try:
                return env[e.name]
            except KeyError:
                raise SacRuntimeError(f"undefined variable {e.name!r}", e.loc) from None
        if isinstance(e, ast.ArrayLit):
            vals = [self._eval(x, env, depth) for x in e.elements]
            try:
                arr = np.asarray(vals)
            except ValueError:
                raise SacRuntimeError("ragged array literal", e.loc) from None
            if np.issubdtype(arr.dtype, np.integer):
                arr = arr.astype(np.int32)
            elif np.issubdtype(arr.dtype, np.floating):
                arr = arr.astype(np.float64)
            return arr
        if isinstance(e, ast.IndexExpr):
            arr = self._eval(e.array, env, depth)
            idx = self._eval(e.index, env, depth)
            try:
                return select(arr, idx)
            except SacRuntimeError as err:
                raise SacRuntimeError(str(err), e.loc) from None
        if isinstance(e, ast.BinExpr):
            return self._binop(e, env, depth)
        if isinstance(e, ast.UnExpr):
            v = self._eval(e.operand, env, depth)
            if e.op == "-":
                return to_python(np.negative(v)) if is_scalar(v) else np.negative(v)
            if e.op == "!":
                return to_python(np.logical_not(v)) if is_scalar(v) else np.logical_not(v)
            raise SacRuntimeError(f"unknown unary operator {e.op!r}", e.loc)
        if isinstance(e, ast.Call):
            args = [self._eval(a, env, depth) for a in e.args]
            return self._call(e.name, args, depth + 1)
        if isinstance(e, ast.WithLoop):
            return self._with_loop(e, env, depth)
        if isinstance(e, ast.Dot):
            raise SacRuntimeError("'.' is only valid inside generator bounds", e.loc)
        raise SacRuntimeError(f"unknown expression {type(e).__name__}", e.loc)

    def _binop(self, e: ast.BinExpr, env: dict[str, Value], depth: int) -> Value:
        lhs = self._eval(e.lhs, env, depth)
        # short-circuit logicals on scalars
        if e.op in ("&&", "||") and is_scalar(lhs):
            lb = self._truthy(lhs, e.loc)
            if e.op == "&&" and not lb:
                return False
            if e.op == "||" and lb:
                return True
            return self._truthy(self._eval(e.rhs, env, depth), e.loc)
        rhs = self._eval(e.rhs, env, depth)
        op = e.op
        try:
            if op == "++":
                return call_builtin("CAT", [lhs, rhs])
            if op == "+":
                out = np.add(lhs, rhs)
            elif op == "-":
                out = np.subtract(lhs, rhs)
            elif op == "*":
                out = np.multiply(lhs, rhs)
            elif op == "/":
                out = c_div(np.asarray(lhs), np.asarray(rhs))
            elif op == "%":
                out = c_mod(np.asarray(lhs), np.asarray(rhs))
            elif op == "<":
                out = np.less(lhs, rhs)
            elif op == "<=":
                out = np.less_equal(lhs, rhs)
            elif op == ">":
                out = np.greater(lhs, rhs)
            elif op == ">=":
                out = np.greater_equal(lhs, rhs)
            elif op == "==":
                out = np.equal(lhs, rhs)
            elif op == "!=":
                out = np.not_equal(lhs, rhs)
            elif op == "&&":
                out = np.logical_and(lhs, rhs)
            elif op == "||":
                out = np.logical_or(lhs, rhs)
            else:
                raise SacRuntimeError(f"unknown operator {op!r}", e.loc)
        except ValueError as err:
            raise SacRuntimeError(f"operator {op!r}: {err}", e.loc) from None
        if is_scalar(lhs) and is_scalar(rhs):
            return to_python(out)
        return np.asarray(out)

    # -- WITH-loops -----------------------------------------------------------------

    def _with_loop(self, e: ast.WithLoop, env: dict[str, Value], depth: int) -> Value:
        op = e.operation
        if isinstance(op, ast.GenArray):
            return self._genarray(e, op, env, depth)
        if isinstance(op, ast.ModArray):
            return self._modarray(e, op, env, depth)
        if isinstance(op, ast.Fold):
            return self._fold(e, op, env, depth)
        raise SacRuntimeError(f"unknown WITH-loop operation {type(op).__name__}", e.loc)

    def _genarray(self, e, op: ast.GenArray, env, depth) -> np.ndarray:
        frame_shape = tuple(
            as_index_vector(self._eval(op.shape, env, depth), "genarray shape")
        )
        if any(s < 0 for s in frame_shape):
            raise SacRuntimeError(f"negative genarray shape {frame_shape}", op.loc)
        default = (
            self._eval(op.default, env, depth) if op.default is not None else None
        )

        # determine the cell shape/dtype from the default or the first cell
        first_cell = None
        if default is None:
            first_cell = self._first_cell_value(e, frame_shape, env, depth)
            probe = first_cell if first_cell is not None else 0
        else:
            probe = default
        cell_shape = shape_of(probe)
        dtype = self._cell_dtype(probe)
        result = np.zeros(frame_shape + cell_shape, dtype=dtype)
        if default is not None and np.ndim(default) == 0 and default != 0:
            result[...] = default
        elif default is not None and np.ndim(default) > 0:
            result[...] = default

        seen = (
            np.zeros(frame_shape, dtype=bool)
            if (self.check_disjoint and len(e.generators) > 1)
            else None
        )
        for gen in e.generators:
            self._run_generator(gen, e, frame_shape, result, seen, env, depth)
        return result

    def _modarray(self, e, op: ast.ModArray, env, depth) -> np.ndarray:
        base = self._eval(op.array, env, depth)
        if is_scalar(base):
            raise SacRuntimeError("modarray expects an array", op.loc)
        result = np.array(base, copy=True)
        frame_shape = result.shape
        seen = (
            np.zeros(frame_shape, dtype=bool)
            if (self.check_disjoint and len(e.generators) > 1)
            else None
        )
        for gen in e.generators:
            self._run_generator(gen, e, frame_shape, result, seen, env, depth)
        return result

    def _fold(self, e, op: ast.Fold, env, depth) -> Value:
        if op.fun not in FOLD_FUNS:
            raise SacRuntimeError(
                f"fold function must be one of {sorted(FOLD_FUNS)}, got {op.fun!r}",
                op.loc,
            )
        fn, _ = FOLD_FUNS[op.fun]
        acc = self._eval(op.neutral, env, depth)
        for gen in e.generators:
            lo, hi, step, width = self._resolve_bounds(gen, None, env, depth, e.loc)
            for iv in _enumerate_indices(lo, hi, step, width):
                cell = self._cell_value(gen, iv, env, depth)
                acc = fn(acc, cell)
        return acc

    # -- generator machinery ------------------------------------------------------------

    def _resolve_bounds(self, gen: ast.Generator, frame_shape, env, depth, loc):
        """Resolve one generator's (lower, upper_exclusive, step, width)."""
        rank = None if frame_shape is None else len(frame_shape)

        def resolve(bound: ast.GenBound, which: str):
            if isinstance(bound.expr, ast.Dot):
                if frame_shape is None:
                    raise SacRuntimeError(
                        "'.' bounds need a genarray/modarray frame", bound.loc
                    )
                # '.' denotes the frame's extreme index: 0 below, shape-1
                # above — independent of the relational operator used.
                if which == "lower":
                    zeros = np.zeros(rank, dtype=np.int64)
                    return (zeros if bound.op == "<=" else zeros - 1), bound.op
                top = np.asarray(frame_shape, dtype=np.int64)
                return (top - 1 if bound.op == "<=" else top), bound.op
            v = self._eval(bound.expr, env, depth)
            if is_scalar(v):
                if rank is None:
                    raise SacRuntimeError(
                        "scalar generator bound needs a known frame rank", bound.loc
                    )
                return np.full(rank, int(v), dtype=np.int64), bound.op
            return np.asarray(as_index_vector(v, f"{which} bound"), dtype=np.int64), bound.op

        lo, lo_op = resolve(gen.lower, "lower")
        hi, hi_op = resolve(gen.upper, "upper")
        if lo.shape != hi.shape:
            raise SacRuntimeError(
                f"generator bound ranks differ: {lo.size} vs {hi.size}", loc
            )
        if gen.destructured and len(gen.vars) != lo.size:
            raise SacRuntimeError(
                f"generator destructures {len(gen.vars)} variables but the "
                f"bounds have rank {lo.size}",
                gen.loc,
            )
        if lo_op == "<":
            lo = lo + 1
        if hi_op == "<=":
            hi = hi + 1
        grank = lo.size

        def resolve_filter(expr, default):
            if expr is None:
                return np.full(grank, default, dtype=np.int64)
            v = self._eval(expr, env, depth)
            if is_scalar(v):
                return np.full(grank, int(v), dtype=np.int64)
            vec = np.asarray(as_index_vector(v, "step/width"), dtype=np.int64)
            if vec.size != grank:
                raise SacRuntimeError(
                    f"step/width rank {vec.size} differs from generator rank {grank}",
                    gen.loc,
                )
            return vec

        step = resolve_filter(gen.step, 1)
        width = resolve_filter(gen.width, 1)
        if np.any(step <= 0):
            raise SacRuntimeError(f"generator step must be positive: {step.tolist()}", gen.loc)
        if np.any(width <= 0) or np.any(width > step):
            raise SacRuntimeError(
                f"generator width must be in [1, step]: width {width.tolist()}, "
                f"step {step.tolist()}",
                gen.loc,
            )
        return lo, hi, step, width

    def _bind_index(self, gen: ast.Generator, iv: tuple[int, ...], env) -> dict:
        child = dict(env)
        if gen.destructured:
            for name, val in zip(gen.vars, iv):
                child[name] = int(val)
        else:
            child[gen.var] = np.asarray(iv, dtype=np.int32)
        return child

    def _cell_value(self, gen: ast.Generator, iv, env, depth) -> Value:
        child = self._bind_index(gen, iv, env)
        self._exec_block(gen.body, child, depth)
        return self._eval(gen.expr, child, depth)

    def _first_cell_value(self, e, frame_shape, env, depth):
        """Cell value at the first enumerated index (shape/dtype probe)."""
        for gen in e.generators:
            lo, hi, step, width = self._resolve_bounds(gen, frame_shape, env, depth, e.loc)
            for iv in _enumerate_indices(lo, hi, step, width):
                return self._cell_value(gen, iv, env, depth)
        return None

    @staticmethod
    def _cell_dtype(probe: Value) -> np.dtype:
        if isinstance(probe, np.ndarray):
            return probe.dtype
        if isinstance(probe, bool):
            return np.dtype(bool)
        if isinstance(probe, int):
            return np.dtype("int32")
        return np.dtype("float64")

    def _run_generator(self, gen, e, frame_shape, result, seen, env, depth) -> None:
        lo, hi, step, width = self._resolve_bounds(gen, frame_shape, env, depth, e.loc)
        if lo.size != len(frame_shape):
            raise SacRuntimeError(
                f"generator rank {lo.size} differs from frame rank {len(frame_shape)}",
                gen.loc,
            )
        # the exclusive upper bound may equal the extent; beyond is an error
        if np.any(lo < 0) or np.any(hi > np.asarray(frame_shape)):
            raise SacRuntimeError(
                f"generator range [{lo.tolist()}, {hi.tolist()}) outside frame "
                f"shape {tuple(frame_shape)}",
                gen.loc,
            )
        for iv in _enumerate_indices(lo, hi, step, width):
            if seen is not None:
                if seen[iv]:
                    raise SacRuntimeError(
                        f"generators overlap at index {list(iv)}", gen.loc
                    )
                seen[iv] = True
            cell = self._cell_value(gen, iv, env, depth)
            expected = np.shape(result[iv])
            if shape_of(cell) != expected:
                raise SacRuntimeError(
                    f"cell shape {shape_of(cell)} does not match result cell "
                    f"shape {expected} at {list(iv)}",
                    gen.loc,
                )
            # C integer semantics: stores wrap to the result's width
            result[iv] = np.asarray(cell).astype(result.dtype, casting="unsafe")


def _enumerate_indices(lo, hi, step, width):
    """Enumerate generator indices: base points lo + k*step plus widths."""
    axes = []
    for d in range(lo.size):
        vals = []
        base = int(lo[d])
        while base < int(hi[d]):
            for w in range(int(width[d])):
                v = base + w
                if v < int(hi[d]):
                    vals.append(v)
            base += int(step[d])
        axes.append(vals)
    return product(*axes)
