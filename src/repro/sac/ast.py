"""Abstract syntax of the SaC subset.

The subset covers what the paper's programs (Figures 4-7) exercise, plus
enough generality to write other array programs:

* functions over multidimensional arrays with SaC type patterns
  (``int[*]``, ``int[.]``, ``int[.,.]``, ``int[1080,1920]``, scalars);
* WITH-loops with multiple generators, relational bounds (``<=``/``<``),
  dot bounds, ``step``/``width`` filters and ``genarray``/``modarray``/
  ``fold`` operations;
* C-style ``for`` loops, ``if``/``else``, assignments (including indexed
  assignment sugar), ``return``;
* arithmetic/comparison/logical operators, ``++`` array concatenation,
  array literals, vector indexing (``a[iv]``, ``a[[i,j]]``), calls.

All nodes are immutable dataclasses carrying a source location, so passes
rewrite by reconstruction and errors point at source positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceLocation

__all__ = [
    "Node", "TypeSpec", "Param", "FunDef", "Program",
    "Expr", "IntLit", "FloatLit", "BoolLit", "ArrayLit", "Var", "IndexExpr",
    "BinExpr", "UnExpr", "Call", "WithLoop", "Generator", "GenBound", "Dot",
    "GenArray", "ModArray", "Fold", "Operation",
    "Stmt", "Assign", "IndexedAssign", "ForLoop", "IfElse", "Return", "Block",
]

_NOLOC = SourceLocation(0, 0, "<builtin>")


@dataclass(frozen=True)
class Node:
    """Base of all AST nodes."""

    loc: SourceLocation = field(default=_NOLOC, compare=False, kw_only=True)


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeSpec(Node):
    """A SaC type pattern.

    ``dims`` is ``None`` for scalars; otherwise a tuple whose entries are
    ints (static extents), ``"."`` (one unknown dimension), ``"*"`` (any
    number of dimensions, must be alone) or ``"+"`` (one or more dimensions,
    must be alone).
    """

    base: str  # "int" | "float" | "double" | "bool" | "void"
    dims: tuple[int | str, ...] | None = None

    @property
    def is_scalar(self) -> bool:
        return self.dims is None

    @property
    def is_static(self) -> bool:
        return self.dims is not None and all(isinstance(d, int) for d in self.dims)

    def __str__(self) -> str:
        if self.dims is None:
            return self.base
        return f"{self.base}[{','.join(str(d) for d in self.dims)}]"


@dataclass(frozen=True)
class Param(Node):
    type: TypeSpec = None  # type: ignore[assignment]
    name: str = ""


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base of expressions."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool = False


@dataclass(frozen=True)
class ArrayLit(Expr):
    """``[e0, e1, ...]`` — one-dimensional unless elements are arrays."""

    elements: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Var(Expr):
    name: str = ""


@dataclass(frozen=True)
class IndexExpr(Expr):
    """``array[index]`` — SaC vector selection.

    ``index`` is a single expression evaluating to a scalar (first-axis
    selection) or an index vector selecting along the first ``len`` axes.
    The paper's ``a[[i,j,k]]`` form is this node with an ArrayLit index.
    Chained selection ``a[i][j]`` parses as nested IndexExpr.
    """

    array: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class BinExpr(Expr):
    """Binary operation; ``op`` in + - * / % < <= > >= == != && || ++ min max."""

    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UnExpr(Expr):
    """Unary operation; ``op`` in - !"""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    name: str = ""
    args: tuple[Expr, ...] = ()


# -- WITH-loops ---------------------------------------------------------------


@dataclass(frozen=True)
class Dot(Expr):
    """The ``.`` bound inside a generator (take from operation context)."""


@dataclass(frozen=True)
class GenBound(Node):
    """One side of a generator range: expression + relational operator."""

    expr: Expr = None  # type: ignore[assignment]
    op: str = "<="  # "<=" or "<"


@dataclass(frozen=True)
class Generator(Node):
    """One generator part of a WITH-loop.

    ``vars`` is a single name (vector index variable) or several names
    (destructuring: ``[i,j]``).  ``body`` holds the local statements before
    the ``: expr`` that yields the cell value.
    """

    lower: GenBound = None  # type: ignore[assignment]
    vars: tuple[str, ...] = ()
    destructured: bool = False
    upper: GenBound = None  # type: ignore[assignment]
    step: Expr | None = None
    width: Expr | None = None
    body: tuple["Stmt", ...] = ()
    expr: Expr = None  # type: ignore[assignment]

    @property
    def var(self) -> str:
        """The vector index variable name (only when not destructured)."""
        if self.destructured:
            raise ValueError("generator uses destructured index variables")
        return self.vars[0]


class Operation(Node):
    """Base of WITH-loop operations."""


@dataclass(frozen=True)
class GenArray(Operation):
    """``genarray(shape)`` or ``genarray(shape, default)``."""

    shape: Expr = None  # type: ignore[assignment]
    default: Expr | None = None


@dataclass(frozen=True)
class ModArray(Operation):
    """``modarray(array)`` — start from a copy of ``array``."""

    array: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Fold(Operation):
    """``fold(fun, neutral)`` — reduce cell values with a builtin."""

    fun: str = ""
    neutral: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class WithLoop(Expr):
    generators: tuple[Generator, ...] = ()
    operation: Operation = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base of statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class IndexedAssign(Stmt):
    """``x[idx] = value`` — SaC sugar for a single-cell modarray."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class ForLoop(Stmt):
    """C-style counted loop: ``for (init; cond; update) body``."""

    init: Assign = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]
    update: Stmt = None  # type: ignore[assignment]
    body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class IfElse(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: tuple[Stmt, ...] = ()
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunDef(Node):
    ret_type: TypeSpec = None  # type: ignore[assignment]
    name: str = ""
    params: tuple[Param, ...] = ()
    body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class Program(Node):
    functions: tuple[FunDef, ...] = ()

    def function(self, name: str) -> FunDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)

    def replace_function(self, fun: FunDef) -> "Program":
        funs = tuple(fun if f.name == fun.name else f for f in self.functions)
        return Program(functions=funs, loc=self.loc)
