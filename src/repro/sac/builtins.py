"""Builtin (primitive) functions of the SaC subset.

These are the operations the paper's programs use that the compiler treats
as primitives rather than user code: ``shape``, ``dim``, ``MV``
(matrix-vector product), ``CAT`` (concatenation, also spelled ``++``),
element-wise ``min``/``max``/``abs`` and the ``sum``/``prod`` reductions.
Primitives *may* appear inside CUDA-eligible WITH-loops (the backend lowers
them), unlike user function calls (paper Section VII).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SacRuntimeError
from repro.sac.values import Value, is_scalar, to_python

__all__ = ["BUILTINS", "FOLD_FUNS", "call_builtin", "is_builtin"]


def _shape(a: Value) -> np.ndarray:
    if is_scalar(a):
        return np.zeros(0, dtype=np.int32)
    return np.asarray(a.shape, dtype=np.int32)


def _dim(a: Value) -> int:
    return 0 if is_scalar(a) else int(a.ndim)


def _mv(m: Value, v: Value) -> Value:
    """Matrix-vector product, dimension-driven.

    The paper's tiler (Figure 4) computes ``MV(CAT(paving, fitting),
    rep++pat)`` where the concatenated matrix has one *row* per repetition/
    pattern dimension (the Figure 10 convention), so the product is
    ``v @ m``.  When the vector instead matches the matrix's column count,
    the standard ``m @ v`` applies.  Square matrices resolve to ``v @ m``
    (the tiler convention).
    """
    m = np.asarray(m)
    v = np.asarray(v)
    if m.ndim != 2 or v.ndim != 1:
        raise SacRuntimeError(
            f"MV expects a matrix and a vector, got ranks {m.ndim} and {v.ndim}"
        )
    if m.shape[0] == v.shape[0]:
        return v @ m
    if m.shape[1] == v.shape[0]:
        return m @ v
    raise SacRuntimeError(f"MV shape mismatch: matrix {m.shape} x vector {v.shape}")


def _cat(a: Value, b: Value) -> np.ndarray:
    """Concatenation along the first axis (SaC ``++``).

    Accepts vectors or matrices with matching trailing dimensions — the
    paper's ``CAT(paving, fitting)`` stacks the tiler matrices row-wise.
    """
    av = np.atleast_1d(np.asarray(a))
    bv = np.atleast_1d(np.asarray(b))
    if av.ndim != bv.ndim:
        raise SacRuntimeError(
            f"CAT rank mismatch: {av.ndim} vs {bv.ndim}"
        )
    if av.shape[1:] != bv.shape[1:]:
        raise SacRuntimeError(
            f"CAT trailing-shape mismatch: {av.shape} vs {bv.shape}"
        )
    return np.concatenate([av, bv])


def _minimum(a: Value, b: Value) -> Value:
    return to_python(np.minimum(a, b))


def _maximum(a: Value, b: Value) -> Value:
    return to_python(np.maximum(a, b))


def _abs(a: Value) -> Value:
    return to_python(np.abs(a))


def _sum(a: Value) -> Value:
    return to_python(np.sum(a))


def _prod(a: Value) -> Value:
    return to_python(np.prod(a))


def _genarray(shape: Value, default: Value = 0) -> np.ndarray:
    """Array constructor: ``genarray(shape, default)`` call form."""
    from repro.sac.values import as_index_vector

    shp = as_index_vector(shape, "genarray shape") if not is_scalar(shape) else (int(shape),)
    if any(s < 0 for s in shp):
        raise SacRuntimeError(f"negative genarray shape {shp}")
    if isinstance(default, bool):
        dtype = np.dtype(bool)
    elif isinstance(default, (int, np.integer)):
        dtype = np.dtype("int32")
    elif is_scalar(default):
        dtype = np.dtype("float64")
    else:
        out = np.empty(tuple(shp) + default.shape, dtype=default.dtype)
        out[...] = default
        return out
    return np.full(tuple(shp), default, dtype=dtype)


#: name -> (function, arity)
BUILTINS: dict[str, tuple] = {
    "shape": (_shape, 1),
    "genarray": (_genarray, 2),
    "dim": (_dim, 1),
    "MV": (_mv, 2),
    "CAT": (_cat, 2),
    "min": (_minimum, 2),
    "max": (_maximum, 2),
    "abs": (_abs, 1),
    "sum": (_sum, 1),
    "prod": (_prod, 1),
}

#: binary reducers usable as the ``fold`` operation's function
FOLD_FUNS: dict[str, tuple] = {
    "add": (lambda a, b: to_python(np.add(a, b)), 2),
    "mul": (lambda a, b: to_python(np.multiply(a, b)), 2),
    "min": (_minimum, 2),
    "max": (_maximum, 2),
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def call_builtin(name: str, args: list[Value]) -> Value:
    try:
        fn, arity = BUILTINS[name]
    except KeyError:
        raise SacRuntimeError(f"unknown builtin {name!r}") from None
    if name == "genarray" and len(args) == 1:
        args = [*args, 0]  # default element
    if len(args) != arity:
        raise SacRuntimeError(
            f"builtin {name!r} expects {arity} arguments, got {len(args)}"
        )
    return fn(*args)
