"""Lightweight rank/type inference for SaC programs.

SaC's type patterns constrain *ranks* (``int[.,.]`` is any rank-2 int
array) and sometimes extents (``int[1080,1920]``).  This checker infers a
conservative abstract type — base dtype plus rank when determinable — and
reports violations a parse cannot catch:

* arithmetic mixing booleans with numbers,
* conditions that are not boolean,
* selections deeper than an array's known rank,
* arguments whose known rank contradicts the callee's declared pattern,
* returning a value whose known rank contradicts the declared return type.

Unknown ranks propagate silently (``int[*]`` is always acceptable), so the
checker never rejects a dynamically-correct program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SacTypeError
from repro.sac import ast
__all__ = ["typecheck_program", "typecheck_function", "AType"]


@dataclass(frozen=True)
class AType:
    """Abstract type: base dtype plus optional rank."""

    base: str  # "int" | "float" | "double" | "bool" | "unknown"
    rank: int | None  # None = unknown

    @property
    def is_scalar_known(self) -> bool:
        return self.rank == 0

    def with_rank(self, rank: int | None) -> "AType":
        return AType(self.base, rank)


_UNKNOWN = AType("unknown", None)
_INT = AType("int", 0)
_BOOL = AType("bool", 0)

_NUMERIC = {"int", "float", "double", "unknown"}


def _of_typespec(t: ast.TypeSpec) -> AType:
    if t.is_scalar:
        return AType(t.base, 0)
    if t.dims == ("*",):
        return AType(t.base, None)
    if t.dims == ("+",):
        return AType(t.base, None)
    return AType(t.base, len(t.dims))


def typecheck_program(program: ast.Program) -> None:
    functions = {f.name: f for f in program.functions}
    for f in program.functions:
        typecheck_function(f, functions)


def typecheck_function(fun: ast.FunDef, functions: dict[str, ast.FunDef]) -> None:
    env = {p.name: _of_typespec(p.type) for p in fun.params}
    _Checker(fun, functions).stmts(fun.body, env)


class _Checker:
    def __init__(self, fun, functions):
        self.fun = fun
        self.functions = functions

    def fail(self, msg: str, loc) -> None:
        raise SacTypeError(f"{self.fun.name}: {msg}", loc)

    # -- statements ------------------------------------------------------------

    def stmts(self, body, env: dict[str, AType]) -> None:
        for s in body:
            self.stmt(s, env)

    def stmt(self, s: ast.Stmt, env) -> None:
        if isinstance(s, ast.Assign):
            env[s.name] = self.expr(s.value, env)
        elif isinstance(s, ast.IndexedAssign):
            base = env.get(s.name, _UNKNOWN)
            if base.rank == 0:
                self.fail(f"cannot index-assign scalar {s.name!r}", s.loc)
            self.expr(s.index, env)
            self.expr(s.value, env)
        elif isinstance(s, ast.Block):
            self.stmts(s.stmts, env)
        elif isinstance(s, ast.ForLoop):
            self.stmt(s.init, env)
            cond = self.expr(s.cond, env)
            if cond.base not in ("bool", "unknown"):
                self.fail("for-loop condition must be boolean", s.loc)
            inner = dict(env)
            self.stmts(s.body, inner)
            self.stmt(s.update, inner)
        elif isinstance(s, ast.IfElse):
            cond = self.expr(s.cond, env)
            if cond.base not in ("bool", "unknown"):
                self.fail("condition must be boolean", s.loc)
            then_env = dict(env)
            else_env = dict(env)
            self.stmts(s.then, then_env)
            self.stmts(s.orelse, else_env)
            for name in set(then_env) & set(else_env):
                a, b = then_env[name], else_env[name]
                env[name] = a if a == b else AType(
                    a.base if a.base == b.base else "unknown", None
                )
        elif isinstance(s, ast.Return):
            if s.value is None:
                return
            value = self.expr(s.value, env)
            declared = _of_typespec(self.fun.ret_type)
            if (
                value.rank is not None
                and declared.rank is not None
                and value.rank != declared.rank
            ):
                self.fail(
                    f"returns rank {value.rank}, declared {self.fun.ret_type}",
                    s.loc,
                )

    # -- expressions ---------------------------------------------------------------

    def expr(self, e: ast.Expr, env) -> AType:
        if isinstance(e, ast.IntLit):
            return _INT
        if isinstance(e, ast.FloatLit):
            return AType("double", 0)
        if isinstance(e, ast.BoolLit):
            return _BOOL
        if isinstance(e, ast.Dot):
            return _UNKNOWN
        if isinstance(e, ast.Var):
            return env.get(e.name, _UNKNOWN)
        if isinstance(e, ast.ArrayLit):
            elems = [self.expr(x, env) for x in e.elements]
            inner = elems[0] if elems else _INT
            rank = None if inner.rank is None else inner.rank + 1
            return AType(inner.base, rank)
        if isinstance(e, ast.UnExpr):
            operand = self.expr(e.operand, env)
            if e.op == "!" and operand.base not in ("bool", "unknown"):
                self.fail("'!' needs a boolean operand", e.loc)
            if e.op == "-" and operand.base == "bool":
                self.fail("'-' cannot negate a boolean", e.loc)
            return operand
        if isinstance(e, ast.BinExpr):
            return self.binexpr(e, env)
        if isinstance(e, ast.IndexExpr):
            return self.index(e, env)
        if isinstance(e, ast.Call):
            return self.call(e, env)
        if isinstance(e, ast.WithLoop):
            return self.withloop(e, env)
        return _UNKNOWN

    def binexpr(self, e: ast.BinExpr, env) -> AType:
        lhs = self.expr(e.lhs, env)
        rhs = self.expr(e.rhs, env)
        if e.op in ("&&", "||"):
            for side in (lhs, rhs):
                if side.base not in ("bool", "unknown"):
                    self.fail(f"{e.op!r} needs boolean operands", e.loc)
            return _BOOL
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            return AType("bool", _broadcast_rank(lhs.rank, rhs.rank))
        if e.op == "++":
            base = lhs.base if lhs.base != "unknown" else rhs.base
            rank = lhs.rank if lhs.rank not in (None, 0) else rhs.rank
            return AType(base, rank if rank != 0 else 1)
        # arithmetic
        for side in (lhs, rhs):
            if side.base == "bool":
                self.fail(f"arithmetic {e.op!r} on a boolean", e.loc)
        base = lhs.base if lhs.base != "unknown" else rhs.base
        return AType(base, _broadcast_rank(lhs.rank, rhs.rank))

    def index(self, e: ast.IndexExpr, env) -> AType:
        array = self.expr(e.array, env)
        index = self.expr(e.index, env)
        if array.rank == 0:
            self.fail("cannot select from a scalar", e.loc)
        if index.base == "bool":
            self.fail("array index must be integral", e.loc)
        if array.rank is None:
            return AType(array.base, None)
        if isinstance(e.index, ast.ArrayLit):
            depth = len(e.index.elements)
            if depth > array.rank:
                self.fail(
                    f"selection depth {depth} exceeds array rank {array.rank}",
                    e.loc,
                )
            return AType(array.base, array.rank - depth)
        if index.rank == 0:
            return AType(array.base, array.rank - 1)
        return AType(array.base, None)

    def call(self, e: ast.Call, env) -> AType:
        args = [self.expr(a, env) for a in e.args]
        if e.name == "genarray":
            return AType("int" if len(args) < 2 else args[1].base, None)
        if e.name in ("shape",):
            return AType("int", 1)
        if e.name == "dim":
            return _INT
        if e.name in ("sum", "prod"):
            return AType(args[0].base if args else "unknown", 0)
        if e.name in ("min", "max", "abs"):
            return args[0] if args else _UNKNOWN
        if e.name in ("MV",):
            return AType(args[0].base if args else "unknown", 1)
        if e.name in ("CAT",):
            return AType(args[0].base if args else "unknown", None)
        target = self.functions.get(e.name)
        if target is None:
            return _UNKNOWN
        for arg, param in zip(args, target.params):
            declared = _of_typespec(param.type)
            if (
                arg.rank is not None
                and declared.rank is not None
                and arg.rank != declared.rank
            ):
                self.fail(
                    f"argument {param.name!r} of {e.name!r} expects rank "
                    f"{declared.rank}, got rank {arg.rank}",
                    e.loc,
                )
        return _of_typespec(target.ret_type)

    def withloop(self, e: ast.WithLoop, env) -> AType:
        op = e.operation
        frame_rank: int | None = None
        base = "int"
        if isinstance(op, ast.GenArray):
            shape = self.expr(op.shape, env)
            if isinstance(op.shape, ast.ArrayLit):
                frame_rank = len(op.shape.elements)
            if op.default is not None:
                base = self.expr(op.default, env).base
        elif isinstance(op, ast.ModArray):
            arr = self.expr(op.array, env)
            frame_rank = arr.rank
            base = arr.base
        for g in e.generators:
            inner = dict(env)
            if g.destructured:
                for v in g.vars:
                    inner[v] = _INT
            else:
                inner[g.var] = AType("int", 1)
            self.stmts(g.body, inner)
            cell = self.expr(g.expr, inner)
            if isinstance(op, ast.Fold):
                return AType(cell.base, None)
            if isinstance(op, ast.GenArray) and frame_rank is not None:
                if cell.rank is not None:
                    return AType(
                        cell.base if base == "int" else base, frame_rank + cell.rank
                    )
        return AType(base, frame_rank if isinstance(op, ast.ModArray) else None)


def _broadcast_rank(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return max(a, b)
