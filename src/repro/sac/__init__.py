"""Single Assignment C (SaC) subset: frontend, semantics, optimiser, backends.

The route of the paper's Section VII: parse (``parser``), check
(``semantics``/``typecheck``), interpret (``interp``) or optimise
(``opt`` — inlining, partial evaluation, WITH-loop folding, DCE) and
compile (``backend`` — CUDA kernels with transfer insertion, or the
sequential host target).
"""

from repro.sac.interp import Interpreter
from repro.sac.parser import parse, parse_expression
from repro.sac.semantics import check_program
from repro.sac.typecheck import typecheck_program

__all__ = [
    "parse",
    "parse_expression",
    "Interpreter",
    "check_program",
    "typecheck_program",
]
