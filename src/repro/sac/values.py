"""Runtime value model of the SaC interpreter.

SaC values are multidimensional arrays; scalars are rank-0.  We represent
arrays as NumPy arrays (``int32`` / ``float32`` / ``float64`` / ``bool``)
and scalars as Python ``int`` / ``float`` / ``bool``.  Selection follows
SaC's vector-indexing rule: an index *vector* of length ``k`` selects along
the first ``k`` axes, yielding a scalar when ``k`` equals the rank and a
sub-array otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SacRuntimeError

__all__ = [
    "Value",
    "BASE_DTYPES",
    "is_scalar",
    "shape_of",
    "rank_of",
    "as_index_vector",
    "select",
    "with_cell_set",
    "to_python",
]

Value = int | float | bool | np.ndarray

#: SaC base type -> NumPy dtype
BASE_DTYPES = {
    "int": np.dtype("int32"),
    "float": np.dtype("float32"),
    "double": np.dtype("float64"),
    "bool": np.dtype("bool"),
}


def is_scalar(v: Value) -> bool:
    return not isinstance(v, np.ndarray)


def shape_of(v: Value) -> tuple[int, ...]:
    return v.shape if isinstance(v, np.ndarray) else ()


def rank_of(v: Value) -> int:
    return v.ndim if isinstance(v, np.ndarray) else 0


def to_python(v: Value) -> Value:
    """Collapse NumPy scalars (rank-0 arrays) to Python scalars."""
    if isinstance(v, np.ndarray) and v.ndim == 0:
        v = v[()]
    if isinstance(v, np.generic):
        if isinstance(v, np.bool_):
            return bool(v)
        if np.issubdtype(type(v), np.integer):
            return int(v)
        return float(v)
    return v


def as_index_vector(v: Value, what: str = "index") -> tuple[int, ...]:
    """Coerce a value to an integer index vector (scalars become length-1)."""
    if is_scalar(v):
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise SacRuntimeError(f"{what} must be integral, got {v!r}")
        return (int(v),)
    arr = np.asarray(v)
    if arr.ndim != 1:
        raise SacRuntimeError(f"{what} must be a vector, got rank {arr.ndim}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise SacRuntimeError(f"{what} must be integral, got dtype {arr.dtype}")
    return tuple(int(x) for x in arr)


def select(array: Value, index: Value) -> Value:
    """SaC selection ``array[index]``.

    A scalar index selects along the first axis; an index vector of length
    ``k <= rank`` selects along the first ``k`` axes.
    """
    if is_scalar(array):
        raise SacRuntimeError("cannot index a scalar value")
    idx = _scalar_or_vector_index(index)
    if len(idx) > array.ndim:
        raise SacRuntimeError(
            f"index of length {len(idx)} applied to array of rank {array.ndim}"
        )
    for d, (i, ext) in enumerate(zip(idx, array.shape)):
        if not (0 <= i < ext):
            raise SacRuntimeError(
                f"index {list(idx)} out of bounds for shape {array.shape} (axis {d})"
            )
    out = array[idx]
    return to_python(out) if np.ndim(out) == 0 else out


def with_cell_set(array: np.ndarray, index: Value, value: Value) -> np.ndarray:
    """Functional single-cell update: a copy of ``array`` with
    ``array[index] = value`` (the expansion of SaC's indexed assignment)."""
    if is_scalar(array):
        raise SacRuntimeError("cannot index-assign into a scalar")
    idx = _scalar_or_vector_index(index)
    if len(idx) > array.ndim:
        raise SacRuntimeError(
            f"index of length {len(idx)} applied to array of rank {array.ndim}"
        )
    for d, (i, ext) in enumerate(zip(idx, array.shape)):
        if not (0 <= i < ext):
            raise SacRuntimeError(
                f"index {list(idx)} out of bounds for shape {array.shape} (axis {d})"
            )
    out = array.copy()
    cell = out[idx]
    if np.ndim(cell) == 0:
        if isinstance(value, np.ndarray) and value.ndim > 0:
            raise SacRuntimeError("cannot assign an array into a scalar cell")
    else:
        if shape_of(value) != cell.shape:
            raise SacRuntimeError(
                f"cell assignment shape mismatch: cell {cell.shape}, "
                f"value {shape_of(value)}"
            )
    # C integer semantics: stores wrap to the array's element width
    out[idx] = np.asarray(value).astype(out.dtype, casting="unsafe")
    return out


def _scalar_or_vector_index(index: Value) -> tuple[int, ...]:
    if is_scalar(index):
        if isinstance(index, bool) or not isinstance(index, (int, np.integer)):
            raise SacRuntimeError(f"array index must be integral, got {index!r}")
        return (int(index),)
    return as_index_vector(index)
