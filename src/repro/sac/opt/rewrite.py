"""AST rewriting utilities shared by the optimisation passes.

All passes rewrite by reconstruction (the AST is immutable).  The helpers
here provide generic bottom-up expression mapping, statement mapping,
variable substitution with explicit renaming, free-variable analysis and a
fresh-name supply.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.sac import ast

__all__ = [
    "map_expr",
    "map_stmt_exprs",
    "substitute_vars",
    "rename_locals",
    "free_vars_expr",
    "used_names_stmts",
    "assigned_names_stmts",
    "FreshNames",
]


class FreshNames:
    """Generates names guaranteed not to collide with a reserved set."""

    def __init__(self, reserved=()):
        self.reserved = set(reserved)
        self.counter = 0

    def fresh(self, base: str) -> str:
        while True:
            self.counter += 1
            name = f"_{base}_{self.counter}"
            if name not in self.reserved:
                self.reserved.add(name)
                return name


def map_expr(e: ast.Expr, fn: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    """Rewrite ``e`` bottom-up: children first, then ``fn`` on the node."""
    e2 = _map_children(e, lambda c: map_expr(c, fn))
    return fn(e2)


def _map_children(e: ast.Expr, f: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.Var, ast.Dot)):
        return e
    if isinstance(e, ast.ArrayLit):
        return replace(e, elements=tuple(f(x) for x in e.elements))
    if isinstance(e, ast.IndexExpr):
        return replace(e, array=f(e.array), index=f(e.index))
    if isinstance(e, ast.BinExpr):
        return replace(e, lhs=f(e.lhs), rhs=f(e.rhs))
    if isinstance(e, ast.UnExpr):
        return replace(e, operand=f(e.operand))
    if isinstance(e, ast.Call):
        return replace(e, args=tuple(f(a) for a in e.args))
    if isinstance(e, ast.WithLoop):
        gens = tuple(_map_generator(g, f) for g in e.generators)
        return replace(e, generators=gens, operation=_map_operation(e.operation, f))
    raise TypeError(f"unknown expression node {type(e).__name__}")


def _map_generator(g: ast.Generator, f) -> ast.Generator:
    return replace(
        g,
        lower=replace(g.lower, expr=f(g.lower.expr)),
        upper=replace(g.upper, expr=f(g.upper.expr)),
        step=None if g.step is None else f(g.step),
        width=None if g.width is None else f(g.width),
        body=tuple(map_stmt_exprs(s, f) for s in g.body),
        expr=f(g.expr),
    )


def _map_operation(op: ast.Operation, f) -> ast.Operation:
    if isinstance(op, ast.GenArray):
        return replace(
            op, shape=f(op.shape), default=None if op.default is None else f(op.default)
        )
    if isinstance(op, ast.ModArray):
        return replace(op, array=f(op.array))
    if isinstance(op, ast.Fold):
        return replace(op, neutral=f(op.neutral))
    raise TypeError(f"unknown operation node {type(op).__name__}")


def map_stmt_exprs(s: ast.Stmt, f: Callable[[ast.Expr], ast.Expr]) -> ast.Stmt:
    """Apply ``f`` to every expression in a statement, recursing into
    nested statement lists."""
    if isinstance(s, ast.Assign):
        return replace(s, value=f(s.value))
    if isinstance(s, ast.IndexedAssign):
        return replace(s, index=f(s.index), value=f(s.value))
    if isinstance(s, ast.Block):
        return replace(s, stmts=tuple(map_stmt_exprs(x, f) for x in s.stmts))
    if isinstance(s, ast.ForLoop):
        return replace(
            s,
            init=map_stmt_exprs(s.init, f),
            cond=f(s.cond),
            update=map_stmt_exprs(s.update, f),
            body=tuple(map_stmt_exprs(x, f) for x in s.body),
        )
    if isinstance(s, ast.IfElse):
        return replace(
            s,
            cond=f(s.cond),
            then=tuple(map_stmt_exprs(x, f) for x in s.then),
            orelse=tuple(map_stmt_exprs(x, f) for x in s.orelse),
        )
    if isinstance(s, ast.Return):
        return replace(s, value=None if s.value is None else f(s.value))
    raise TypeError(f"unknown statement node {type(s).__name__}")


def substitute_vars(e: ast.Expr, mapping: dict[str, ast.Expr]) -> ast.Expr:
    """Replace free ``Var`` occurrences per ``mapping``.

    Names bound inside nested WITH-loop generators shadow the mapping; the
    caller is expected to have renamed locals apart first (see
    :func:`rename_locals`), so only generator index variables need scope
    handling here.
    """

    def subst(expr: ast.Expr, mapping: dict[str, ast.Expr]) -> ast.Expr:
        if isinstance(expr, ast.Var):
            return mapping.get(expr.name, expr)
        if isinstance(expr, ast.WithLoop):
            gens = []
            for g in expr.generators:
                inner = {k: v for k, v in mapping.items() if k not in g.vars}
                # body-local assignments also shadow
                body_defs = assigned_names_stmts(g.body)
                inner = {k: v for k, v in inner.items() if k not in body_defs}
                gens.append(
                    replace(
                        g,
                        lower=replace(g.lower, expr=subst(g.lower.expr, mapping)),
                        upper=replace(g.upper, expr=subst(g.upper.expr, mapping)),
                        step=None if g.step is None else subst(g.step, mapping),
                        width=None if g.width is None else subst(g.width, mapping),
                        body=tuple(
                            map_stmt_exprs(s, lambda x: subst(x, inner)) for s in g.body
                        ),
                        expr=subst(g.expr, inner),
                    )
                )
            return replace(
                expr,
                generators=tuple(gens),
                operation=_map_operation(expr.operation, lambda x: subst(x, mapping)),
            )
        return _map_children(expr, lambda c: subst(c, mapping))

    return subst(e, mapping)


def rename_locals(
    stmts: tuple[ast.Stmt, ...],
    result_expr: ast.Expr,
    fresh: FreshNames,
    keep: frozenset[str] = frozenset(),
    also: frozenset[str] = frozenset(),
) -> tuple[tuple[ast.Stmt, ...], ast.Expr, dict[str, str]]:
    """Alpha-rename every name assigned in ``stmts`` (except ``keep``),
    plus the names in ``also`` (e.g. callee parameters during inlining).

    Returns the renamed statements, the renamed result expression, and the
    mapping applied.  Used when splicing a producer's generator body into a
    consumer (WITH-loop folding) or a callee's body into a caller (inlining).
    """
    assigned = (assigned_names_stmts(stmts) | set(also)) - set(keep)
    mapping = {name: fresh.fresh(name) for name in sorted(assigned)}
    expr_map = {old: ast.Var(name=new) for old, new in mapping.items()}

    def rename_stmt(s: ast.Stmt) -> ast.Stmt:
        s = map_stmt_exprs(s, lambda e: substitute_vars(e, expr_map))
        if isinstance(s, ast.Assign) and s.name in mapping:
            return replace(s, name=mapping[s.name])
        if isinstance(s, ast.IndexedAssign) and s.name in mapping:
            return replace(s, name=mapping[s.name])
        if isinstance(s, ast.ForLoop):
            return replace(
                s,
                init=rename_stmt(s.init),
                update=rename_stmt(s.update),
                body=tuple(rename_stmt(x) for x in s.body),
            )
        if isinstance(s, ast.IfElse):
            return replace(
                s,
                then=tuple(rename_stmt(x) for x in s.then),
                orelse=tuple(rename_stmt(x) for x in s.orelse),
            )
        if isinstance(s, ast.Block):
            return replace(s, stmts=tuple(rename_stmt(x) for x in s.stmts))
        return s

    new_stmts = tuple(rename_stmt(s) for s in stmts)
    new_expr = substitute_vars(result_expr, expr_map)
    return new_stmts, new_expr, mapping


def free_vars_expr(e: ast.Expr) -> set[str]:
    """Free variable names of an expression (generator vars are bound)."""
    out: set[str] = set()

    def go(expr: ast.Expr, bound: frozenset[str]) -> None:
        if isinstance(expr, ast.Var):
            if expr.name not in bound:
                out.add(expr.name)
            return
        if isinstance(expr, ast.WithLoop):
            for g in expr.generators:
                go(g.lower.expr, bound)
                go(g.upper.expr, bound)
                if g.step is not None:
                    go(g.step, bound)
                if g.width is not None:
                    go(g.width, bound)
                inner = bound | set(g.vars) | assigned_names_stmts(g.body)
                for s in g.body:
                    for sub in _stmt_exprs(s):
                        go(sub, inner)
                go(g.expr, inner)
            op = expr.operation
            if isinstance(op, ast.GenArray):
                go(op.shape, bound)
                if op.default is not None:
                    go(op.default, bound)
            elif isinstance(op, ast.ModArray):
                go(op.array, bound)
            elif isinstance(op, ast.Fold):
                go(op.neutral, bound)
            return
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.Dot)):
            return
        if isinstance(expr, ast.ArrayLit):
            for x in expr.elements:
                go(x, bound)
        elif isinstance(expr, ast.IndexExpr):
            go(expr.array, bound)
            go(expr.index, bound)
        elif isinstance(expr, ast.BinExpr):
            go(expr.lhs, bound)
            go(expr.rhs, bound)
        elif isinstance(expr, ast.UnExpr):
            go(expr.operand, bound)
        elif isinstance(expr, ast.Call):
            for a in expr.args:
                go(a, bound)
        else:
            raise TypeError(f"unknown expression node {type(expr).__name__}")

    go(e, frozenset())
    return out


def _stmt_exprs(s: ast.Stmt):
    """Immediate expressions of a statement (recursing into nested stmts)."""
    if isinstance(s, ast.Assign):
        yield s.value
    elif isinstance(s, ast.IndexedAssign):
        yield s.index
        yield s.value
    elif isinstance(s, ast.Block):
        for x in s.stmts:
            yield from _stmt_exprs(x)
    elif isinstance(s, ast.ForLoop):
        yield from _stmt_exprs(s.init)
        yield s.cond
        yield from _stmt_exprs(s.update)
        for x in s.body:
            yield from _stmt_exprs(x)
    elif isinstance(s, ast.IfElse):
        yield s.cond
        for x in s.then:
            yield from _stmt_exprs(x)
        for x in s.orelse:
            yield from _stmt_exprs(x)
    elif isinstance(s, ast.Return):
        if s.value is not None:
            yield s.value
    else:
        raise TypeError(f"unknown statement node {type(s).__name__}")


def used_names_stmts(stmts) -> set[str]:
    """All variable names *read* anywhere in the statements."""
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, ast.IndexedAssign):
            out.add(s.name)  # reads the old array value
        for e in _stmt_exprs(s):
            out |= free_vars_expr(e)
    return out


def assigned_names_stmts(stmts) -> set[str]:
    """All names assigned anywhere in the statements (any nesting)."""
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, ast.Assign):
            out.add(s.name)
        elif isinstance(s, ast.IndexedAssign):
            out.add(s.name)
        elif isinstance(s, ast.Block):
            out |= assigned_names_stmts(s.stmts)
        elif isinstance(s, ast.ForLoop):
            out |= assigned_names_stmts((s.init, s.update))
            out |= assigned_names_stmts(s.body)
        elif isinstance(s, ast.IfElse):
            out |= assigned_names_stmts(s.then)
            out |= assigned_names_stmts(s.orelse)
    return out
