"""High-level SaC optimisations: inlining, partial evaluation, WITH-loop
folding, dead-code elimination — orchestrated by :mod:`pipeline`."""

from repro.sac.opt.constant_fold import fold_function, fold_program
from repro.sac.opt.dce import dce_function, dce_program
from repro.sac.opt.inline import inline_function, inline_program, is_inlinable
from repro.sac.opt.normalize import normalize_function, normalize_program
from repro.sac.opt.pipeline import OptimisationFlags, optimize_function, optimize_program
from repro.sac.opt.wlf import count_withloops, wlf_function, wlf_program
from repro.sac.opt.withinfo import (
    StaticRange,
    const_int_vector,
    generators_cover_frame,
    is_full_coverage_single_generator,
    static_frame_shape,
    static_generator_range,
)

__all__ = [
    "OptimisationFlags", "optimize_program", "optimize_function",
    "inline_program", "inline_function", "is_inlinable",
    "normalize_program", "normalize_function",
    "fold_program", "fold_function",
    "wlf_program", "wlf_function", "count_withloops",
    "dce_program", "dce_function",
    "StaticRange", "const_int_vector", "static_frame_shape",
    "static_generator_range", "is_full_coverage_single_generator",
    "generators_cover_frame",
]
