"""Normalisation: canonicalise selection chains.

``a[i][j]`` (the paper's ``input[rep][0]`` style) is rewritten to a single
selection ``a[i ++ [j]]`` so that later passes (partial evaluation, WLF)
see one index vector per array access.  Scalar index components are wrapped
into singleton vectors before concatenation; concatenations of literal
vectors are flattened immediately.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sac import ast
from repro.sac.opt.rewrite import map_expr, map_stmt_exprs

__all__ = ["normalize_program", "normalize_function", "combine_indices"]


def _as_vector(e: ast.Expr) -> ast.Expr:
    """Wrap an index expression into vector form when it is a scalar literal
    or arithmetic scalar; leave vectors (ArrayLit, Var) untouched."""
    if isinstance(e, ast.ArrayLit):
        return e
    if isinstance(e, (ast.IntLit, ast.BinExpr, ast.UnExpr, ast.IndexExpr)) and _looks_scalar(e):
        return ast.ArrayLit(elements=(e,), loc=e.loc)
    return e


def _looks_scalar(e: ast.Expr) -> bool:
    """Syntactic scalarness: literals and arithmetic over scalars/selections.

    Conservative — variables are assumed to be vectors (SaC index variables
    are), so only unambiguous scalar forms are wrapped.
    """
    if isinstance(e, ast.IntLit):
        return True
    if isinstance(e, ast.BinExpr) and e.op in ("+", "-", "*", "/", "%"):
        return _looks_scalar(e.lhs) and _looks_scalar(e.rhs)
    if isinstance(e, ast.UnExpr) and e.op == "-":
        return _looks_scalar(e.operand)
    if isinstance(e, ast.IndexExpr):
        # a[...] selecting from a vector literal index is scalar when the
        # indexed array is an index variable component like iv[0]
        return isinstance(e.index, (ast.IntLit, ast.ArrayLit))
    return False


def combine_indices(outer: ast.Expr, inner: ast.Expr) -> ast.Expr:
    """Build the combined index vector for ``a[outer][inner]``."""
    o = _as_vector(outer)
    i = _as_vector(inner)
    if isinstance(o, ast.ArrayLit) and isinstance(i, ast.ArrayLit):
        return ast.ArrayLit(elements=o.elements + i.elements, loc=o.loc)
    return ast.BinExpr(op="++", lhs=o, rhs=i, loc=getattr(o, "loc", None) or i.loc)


def _collapse(e: ast.Expr) -> ast.Expr:
    if isinstance(e, ast.IndexExpr) and isinstance(e.array, ast.IndexExpr):
        inner_sel = e.array
        return ast.IndexExpr(
            array=inner_sel.array,
            index=combine_indices(inner_sel.index, e.index),
            loc=e.loc,
        )
    return e


def normalize_function(fun: ast.FunDef) -> ast.FunDef:
    body = tuple(
        map_stmt_exprs(s, lambda e: map_expr(e, _collapse)) for s in fun.body
    )
    return replace(fun, body=body)


def normalize_program(program: ast.Program) -> ast.Program:
    return replace(
        program, functions=tuple(normalize_function(f) for f in program.functions)
    )
