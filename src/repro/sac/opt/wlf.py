"""WITH-Loop Folding (WLF).

The paper's crucial optimisation (Section VII, citing Scholz's original WLF
paper [12]): consecutive WITH-loops in a producer/consumer relationship are
fused so the intermediate array is never materialised — no allocation, no
copy, and on the GPU no extra kernel or device-memory round trip.

Mechanics: for a producer

    X = with { (0 <= iv < shape) { body } : cell; } : genarray(shape);

every later *selection* ``X[[i0, …]]`` is replaced by the producer's cell
computation with ``iv`` bound to the selection index: the (alpha-renamed)
body statements are spliced in front of the consuming statement and the
occurrence becomes the substituted cell expression.  Folding applies when

* the producer is a single, dense generator covering its whole (static)
  frame — multi-generator producers would need generator intersection and
  stay unfolded, which is exactly why the horizontal filter's folded loop
  cannot swallow a *modarray* output tiler of an upstream filter;
* every use of ``X`` is such a selection with a fully scalarised index
  vector of at least the frame rank (run :mod:`constant_fold` first);
* the paper's limitation is reproduced faithfully: constructs other than
  WITH-loops (the generic output tiler's for-loop nest) are never fused —
  selections inside for-loops are not rewritten.

Partial selections deeper than the frame rank select into the cell value;
when the cell is itself computed by a nested WITH-loop the selection is
left as ``tmp[rest]`` over a fresh binding, which the next
fold-WLF-DCE pipeline round reduces.  Run the pipeline to fixpoint.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sac import ast
from repro.sac.opt.rewrite import (
    FreshNames,
    assigned_names_stmts,
    rename_locals,
    substitute_vars,
    used_names_stmts,
)
from repro.sac.opt.withinfo import is_full_coverage_single_generator

__all__ = ["wlf_function", "wlf_program", "count_withloops"]


def wlf_program(program: ast.Program) -> ast.Program:
    return replace(
        program, functions=tuple(wlf_function(f) for f in program.functions)
    )


def wlf_function(fun: ast.FunDef) -> ast.FunDef:
    fresh = FreshNames(
        assigned_names_stmts(fun.body)
        | used_names_stmts(fun.body)
        | {p.name for p in fun.params}
    )
    body = _fold_stmt_list(fun.body, fresh)
    return replace(fun, body=body)


def count_withloops(fun: ast.FunDef) -> int:
    """Number of WITH-loop expressions anywhere in a function (diagnostics)."""
    count = 0

    def visit_expr(e: ast.Expr) -> None:
        nonlocal count
        if isinstance(e, ast.WithLoop):
            count += 1
            for g in e.generators:
                visit_stmts(g.body)
                visit_expr(g.expr)
            op = e.operation
            if isinstance(op, ast.GenArray):
                visit_expr(op.shape)
                if op.default is not None:
                    visit_expr(op.default)
            elif isinstance(op, ast.ModArray):
                visit_expr(op.array)
            elif isinstance(op, ast.Fold):
                visit_expr(op.neutral)
            return
        for child in _children(e):
            visit_expr(child)

    def visit_stmts(stmts) -> None:
        for s in stmts:
            if isinstance(s, ast.Assign):
                visit_expr(s.value)
            elif isinstance(s, ast.IndexedAssign):
                visit_expr(s.index)
                visit_expr(s.value)
            elif isinstance(s, ast.Block):
                visit_stmts(s.stmts)
            elif isinstance(s, ast.ForLoop):
                visit_stmts((s.init, s.update))
                visit_expr(s.cond)
                visit_stmts(s.body)
            elif isinstance(s, ast.IfElse):
                visit_expr(s.cond)
                visit_stmts(s.then)
                visit_stmts(s.orelse)
            elif isinstance(s, ast.Return) and s.value is not None:
                visit_expr(s.value)

    visit_stmts(fun.body)
    return count


def _children(e: ast.Expr):
    if isinstance(e, ast.ArrayLit):
        yield from e.elements
    elif isinstance(e, ast.IndexExpr):
        yield e.array
        yield e.index
    elif isinstance(e, ast.BinExpr):
        yield e.lhs
        yield e.rhs
    elif isinstance(e, ast.UnExpr):
        yield e.operand
    elif isinstance(e, ast.Call):
        yield from e.args


# ---------------------------------------------------------------------------
# producer bookkeeping
# ---------------------------------------------------------------------------


class _Producer:
    def __init__(self, name: str, wl: ast.WithLoop):
        self.name = name
        self.wl = wl
        self.gen = wl.generators[0]
        # frame shape from the genarray shape (static by construction)
        from repro.sac.opt.withinfo import static_frame_shape

        shape = static_frame_shape(wl)
        assert shape is not None
        self.frame_shape = shape

    @property
    def rank(self) -> int:
        return len(self.frame_shape)


def _is_foldable_producer(e: ast.Expr) -> bool:
    return (
        isinstance(e, ast.WithLoop)
        and isinstance(e.operation, ast.GenArray)
        and is_full_coverage_single_generator(e)
    )


def _scalarised_index(e: ast.Expr) -> tuple[ast.Expr, ...] | None:
    """The index as a tuple of scalar component expressions, if available."""
    if isinstance(e, ast.ArrayLit):
        return e.elements
    if isinstance(e, ast.IntLit):
        return (e,)
    return None


# ---------------------------------------------------------------------------
# folding within a statement list
# ---------------------------------------------------------------------------


def _fold_stmt_list(stmts, fresh: FreshNames) -> tuple[ast.Stmt, ...]:
    producers: dict[str, _Producer] = {}
    out: list[ast.Stmt] = []

    def invalidate(name: str) -> None:
        producers.pop(name, None)

    for s in stmts:
        if isinstance(s, ast.Assign):
            pre: list[ast.Stmt] = []
            value = _fold_expr(s.value, producers, pre, fresh)
            out.extend(pre)
            out.append(replace(s, value=value))
            invalidate(s.name)
            if _is_foldable_producer(value):
                producers[s.name] = _Producer(s.name, value)
        elif isinstance(s, ast.IndexedAssign):
            # the base array is mutated: it can no longer be folded from
            pre = []
            index = _fold_expr(s.index, producers, pre, fresh)
            value = _fold_expr(s.value, producers, pre, fresh)
            out.extend(pre)
            out.append(replace(s, index=index, value=value))
            invalidate(s.name)
        elif isinstance(s, ast.Return):
            pre = []
            value = (
                None
                if s.value is None
                else _fold_expr(s.value, producers, pre, fresh)
            )
            out.extend(pre)
            out.append(replace(s, value=value))
        elif isinstance(s, ast.Block):
            out.append(replace(s, stmts=_fold_stmt_list(s.stmts, fresh)))
        elif isinstance(s, ast.ForLoop):
            # the paper: WLF "does not attempt to fuse program constructs
            # other than WITH-loops" — for-loop internals are left alone,
            # and anything they mutate stops being a producer
            for name in assigned_names_stmts((s.init, s.update)) | assigned_names_stmts(
                s.body
            ):
                invalidate(name)
            out.append(replace(s, body=_fold_stmt_list(s.body, fresh)))
        elif isinstance(s, ast.IfElse):
            for name in assigned_names_stmts(s.then) | assigned_names_stmts(s.orelse):
                invalidate(name)
            out.append(
                replace(
                    s,
                    then=_fold_stmt_list(s.then, fresh),
                    orelse=_fold_stmt_list(s.orelse, fresh),
                )
            )
        else:
            out.append(s)
    return tuple(out)


def _fold_expr(e: ast.Expr, producers, pre: list[ast.Stmt], fresh) -> ast.Expr:
    """Rewrite selections from producers inside ``e``.

    ``pre`` collects the spliced producer statements for the current
    statement context.  WITH-loops switch the splice target to their own
    generator bodies.
    """
    if isinstance(e, ast.WithLoop):
        gens = []
        for g in e.generators:
            # names bound by the generator shadow outer producers
            shadowed = {
                k: v
                for k, v in producers.items()
                if k not in g.vars and k not in assigned_names_stmts(g.body)
            }
            body, body_producers = _fold_stmt_list_with(g.body, shadowed, fresh)
            gpre: list[ast.Stmt] = []
            # the cell expression sees producers defined in the body too
            expr = _fold_expr(g.expr, body_producers, gpre, fresh)
            gens.append(replace(g, body=tuple(body) + tuple(gpre), expr=expr))
        op = e.operation
        if isinstance(op, ast.GenArray):
            op = replace(
                op,
                shape=_fold_expr(op.shape, producers, pre, fresh),
                default=None
                if op.default is None
                else _fold_expr(op.default, producers, pre, fresh),
            )
        elif isinstance(op, ast.ModArray):
            op = replace(op, array=_fold_expr(op.array, producers, pre, fresh))
        elif isinstance(op, ast.Fold):
            op = replace(op, neutral=_fold_expr(op.neutral, producers, pre, fresh))
        return replace(e, generators=tuple(gens), operation=op)

    if isinstance(e, ast.IndexExpr):
        array = _fold_expr(e.array, producers, pre, fresh)
        index = _fold_expr(e.index, producers, pre, fresh)
        if isinstance(array, ast.Var) and array.name in producers:
            idx = _scalarised_index(index)
            prod = producers[array.name]
            if idx is not None and len(idx) >= prod.rank:
                return _inline_cell(prod, idx, pre, fresh)
        return replace(e, array=array, index=index)

    if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.Var, ast.Dot)):
        return e
    if isinstance(e, ast.ArrayLit):
        return replace(
            e, elements=tuple(_fold_expr(x, producers, pre, fresh) for x in e.elements)
        )
    if isinstance(e, ast.BinExpr):
        return replace(
            e,
            lhs=_fold_expr(e.lhs, producers, pre, fresh),
            rhs=_fold_expr(e.rhs, producers, pre, fresh),
        )
    if isinstance(e, ast.UnExpr):
        return replace(e, operand=_fold_expr(e.operand, producers, pre, fresh))
    if isinstance(e, ast.Call):
        return replace(
            e, args=tuple(_fold_expr(a, producers, pre, fresh) for a in e.args)
        )
    return e


def _fold_stmt_list_with(stmts, producers, fresh):
    """Fold a generator body: outer producers are visible, and the body's
    own assignments may introduce new (nested) producers.

    Returns ``(statements, producers)`` where the producer map includes the
    body's own definitions (the cell expression folds against it).
    """
    inner = dict(producers)
    out: list[ast.Stmt] = []
    for s in stmts:
        if isinstance(s, ast.Assign):
            pre: list[ast.Stmt] = []
            value = _fold_expr(s.value, inner, pre, fresh)
            out.extend(pre)
            out.append(replace(s, value=value))
            inner.pop(s.name, None)
            if _is_foldable_producer(value):
                inner[s.name] = _Producer(s.name, value)
        elif isinstance(s, ast.IndexedAssign):
            pre = []
            index = _fold_expr(s.index, inner, pre, fresh)
            value = _fold_expr(s.value, inner, pre, fresh)
            out.extend(pre)
            out.append(replace(s, index=index, value=value))
            inner.pop(s.name, None)
        else:
            # loops/conditionals inside generator bodies: same rules as the
            # top level
            folded = _fold_stmt_list((s,), fresh)
            out.extend(folded)
    return tuple(out), inner


def _inline_cell(
    prod: _Producer, idx: tuple[ast.Expr, ...], pre: list[ast.Stmt], fresh
) -> ast.Expr:
    """Substitute the producer's cell computation at a selection index."""
    g = prod.gen
    take = idx[: prod.rank]
    rest = idx[prod.rank:]

    body, cell, _ = rename_locals(g.body, g.expr, fresh)
    if g.destructured:
        mapping = {v: t for v, t in zip(g.vars, take)}
    else:
        mapping = {g.var: ast.ArrayLit(elements=tuple(take), loc=g.loc)}
    body = tuple(
        _subst_stmt(s, mapping) for s in body
    )
    cell = substitute_vars(cell, mapping)

    pre.extend(body)
    if not rest:
        return cell
    if isinstance(cell, ast.Var):
        target = cell
    else:
        tmp = fresh.fresh(f"wlf_{prod.name}")
        pre.append(ast.Assign(name=tmp, value=cell, loc=g.loc))
        target = ast.Var(name=tmp, loc=g.loc)
    return ast.IndexExpr(
        array=target, index=ast.ArrayLit(elements=tuple(rest), loc=g.loc), loc=g.loc
    )


def _subst_stmt(s: ast.Stmt, mapping: dict[str, ast.Expr]) -> ast.Stmt:
    from repro.sac.opt.rewrite import map_stmt_exprs

    return map_stmt_exprs(s, lambda e: substitute_vars(e, mapping))
