"""The SaC high-level optimisation pipeline.

Mirrors the structure the paper describes for the SaC compiler: inline,
then iterate partial evaluation, WITH-loop folding and dead-code
elimination to a fixpoint.  Every pass is semantics-preserving (checked by
the interpreter-equivalence property tests), and each can be disabled for
the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimisationError
from repro.sac import ast
from repro.sac.opt.constant_fold import fold_function
from repro.sac.opt.dce import dce_function
from repro.sac.opt.inline import inline_function
from repro.sac.opt.normalize import normalize_function
from repro.sac.opt.wlf import wlf_function

__all__ = ["OptimisationFlags", "optimize_program", "optimize_function"]

_MAX_ITERATIONS = 24


@dataclass(frozen=True)
class OptimisationFlags:
    """Pass toggles (for ablations; everything on by default)."""

    inline: bool = True
    fold: bool = True
    wlf: bool = True
    dce: bool = True
    trace: bool = False

    @staticmethod
    def none() -> "OptimisationFlags":
        return OptimisationFlags(inline=False, fold=False, wlf=False, dce=False)

    @staticmethod
    def no_wlf() -> "OptimisationFlags":
        """Everything except WITH-loop folding (the paper's key ablation)."""
        return OptimisationFlags(wlf=False)


@dataclass
class _Trace:
    steps: list[str] = field(default_factory=list)

    def note(self, msg: str) -> None:
        self.steps.append(msg)


def optimize_function(
    program: ast.Program,
    name: str,
    flags: OptimisationFlags = OptimisationFlags(),
) -> ast.FunDef:
    """Optimise one function in the context of its program.

    Returns the optimised definition; callers needing a whole program use
    :func:`optimize_program`.
    """
    fun = program.function(name)
    if flags.inline:
        fun = inline_function(program.replace_function(fun), name)
    fun = normalize_function(fun)

    for _ in range(_MAX_ITERATIONS):
        before = fun
        if flags.fold:
            fun = fold_function(fun)
        if flags.wlf:
            fun = wlf_function(fun)
        if flags.fold:
            fun = fold_function(fun)
        if flags.dce:
            fun = dce_function(fun)
        if fun == before:
            return fun
    raise OptimisationError(
        f"optimisation of {name!r} did not reach a fixpoint after "
        f"{_MAX_ITERATIONS} iterations"
    )


def optimize_program(
    program: ast.Program,
    entry: str | None = None,
    flags: OptimisationFlags = OptimisationFlags(),
) -> ast.Program:
    """Optimise every function (or just ``entry``) of a program."""
    if entry is not None:
        return program.replace_function(optimize_function(program, entry, flags))
    out = program
    for f in program.functions:
        out = out.replace_function(optimize_function(out, f.name, flags))
    return out
