"""Dead code elimination.

Removes assignments whose targets are never read afterwards — in particular
the producer WITH-loops left behind by WITH-loop folding, and the unused
tiler-parameter bindings left behind by inlining.  Statements with no
assignment effect are never removed (there are none in this subset: every
statement either assigns or returns).
"""

from __future__ import annotations

from dataclasses import replace

from repro.sac import ast
from repro.sac.opt.rewrite import assigned_names_stmts, free_vars_expr

__all__ = ["dce_program", "dce_function", "dce_stmts"]


def _expr_uses(e: ast.Expr) -> set[str]:
    return free_vars_expr(e)


def dce_stmts(stmts: tuple[ast.Stmt, ...], live: set[str]) -> tuple[ast.Stmt, ...]:
    """Remove dead assignments from a statement list.

    ``live`` is the set of names read *after* this list (data flowing out);
    it is updated in place to the set of names read *before* the list.
    """
    out: list[ast.Stmt] = []
    for s in reversed(stmts):
        if isinstance(s, ast.Assign):
            if s.name not in live:
                continue  # dead
            live.discard(s.name)
            live.update(_expr_uses(s.value))
            # generator bodies may read names too — free_vars_expr covers them
            out.append(_dce_nested_withloops(s))
        elif isinstance(s, ast.IndexedAssign):
            if s.name not in live:
                continue
            # reads the previous array value, so the name stays live
            live.update(_expr_uses(s.index))
            live.update(_expr_uses(s.value))
            live.add(s.name)
            out.append(s)
        elif isinstance(s, ast.Block):
            inner = dce_stmts(s.stmts, live)
            if inner:
                out.append(replace(s, stmts=inner))
        elif isinstance(s, ast.ForLoop):
            # keep loops whose body assigns something live; loop-carried
            # dependences force a fixpoint over the body's reads
            assigned = assigned_names_stmts(s.body) | {s.init.name, s.update.name}
            if not (assigned & live):
                continue  # nothing the loop produces is needed
            body_reads: set[str] = set()
            _collect_stmt_reads(s.body, body_reads)
            live.update(body_reads)
            live.update(_expr_uses(s.cond))
            live.update(_expr_uses(s.update.value))
            live.discard(s.init.name)
            live.update(_expr_uses(s.init.value))
            # conservatively keep every statement inside the loop
            out.append(s)
        elif isinstance(s, ast.IfElse):
            assigned = assigned_names_stmts(s.then) | assigned_names_stmts(s.orelse)
            if not (assigned & live):
                continue
            then_live = set(live)
            else_live = set(live)
            then = dce_stmts(s.then, then_live)
            orelse = dce_stmts(s.orelse, else_live)
            live.clear()
            live.update(then_live | else_live)
            live.update(_expr_uses(s.cond))
            out.append(replace(s, then=then, orelse=orelse))
        elif isinstance(s, ast.Return):
            if s.value is not None:
                live.update(_expr_uses(s.value))
            out.append(s)
        else:
            out.append(s)
    return tuple(reversed(out))


def _collect_stmt_reads(stmts, acc: set[str]) -> None:
    from repro.sac.opt.rewrite import used_names_stmts

    acc |= used_names_stmts(stmts)


def _dce_nested_withloops(s: ast.Assign) -> ast.Assign:
    """Clean dead locals inside WITH-loop generator bodies.

    ``map_expr`` rewrites bottom-up, so nested WITH-loops are cleaned before
    their enclosing ones; each visit only has to prune its own generator
    bodies.
    """
    from repro.sac.opt.rewrite import map_expr

    def clean(e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.WithLoop):
            gens = []
            for g in e.generators:
                live = _expr_uses(g.expr)
                gens.append(replace(g, body=dce_stmts(g.body, live)))
            return replace(e, generators=tuple(gens))
        return e

    return replace(s, value=map_expr(s.value, clean))


def dce_function(fun: ast.FunDef) -> ast.FunDef:
    live: set[str] = set()
    body = dce_stmts(fun.body, live)
    return replace(fun, body=body)


def dce_program(program: ast.Program) -> ast.Program:
    return replace(
        program, functions=tuple(dce_function(f) for f in program.functions)
    )
