"""Function inlining.

WITH-loops containing user function invocations cannot become CUDA kernels
(paper Section VII), and WITH-loop folding needs producers and consumers in
the same statement list — so the pipeline first inlines every user call.

A function is *inlinable* when its body is straight-line (assignments,
loops, conditionals) ending in a single ``return expr``.  Calls are first
**lifted**: any user call nested inside an expression becomes a fresh
temporary assignment just before the enclosing statement (or at the head of
a generator body for calls in the cell expression); then direct
``x = f(args)`` assignments are expanded by splicing the alpha-renamed body.
Non-inlinable calls (early returns, recursion) are left in place — the
interpreter still handles them; the CUDA backend will keep such loops on the
host.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import OptimisationError
from repro.sac import ast
from repro.sac.builtins import is_builtin
from repro.sac.opt.rewrite import (
    FreshNames,
    assigned_names_stmts,
    rename_locals,
    used_names_stmts,
)

__all__ = ["inline_program", "inline_function", "is_inlinable"]

_MAX_ROUNDS = 32


def is_inlinable(fun: ast.FunDef) -> bool:
    """Straight-line body with exactly one trailing return."""
    if not fun.body or not isinstance(fun.body[-1], ast.Return):
        return False
    if fun.body[-1].value is None:
        return False

    def has_return(stmts) -> bool:
        for s in stmts:
            if isinstance(s, ast.Return):
                return True
            if isinstance(s, ast.Block) and has_return(s.stmts):
                return True
            if isinstance(s, ast.ForLoop) and has_return(s.body):
                return True
            if isinstance(s, ast.IfElse) and (
                has_return(s.then) or has_return(s.orelse)
            ):
                return True
        return False

    return not has_return(fun.body[:-1])


def inline_program(program: ast.Program, entry: str | None = None) -> ast.Program:
    """Inline user calls in every function (or just ``entry``)."""
    result = program
    targets = [program.function(entry)] if entry else list(program.functions)
    for fun in targets:
        result = result.replace_function(inline_function(result, fun.name))
    return result


def inline_function(program: ast.Program, name: str) -> ast.FunDef:
    """Return ``name``'s definition with user calls inlined to fixpoint."""
    fun = program.function(name)
    functions = {f.name: f for f in program.functions}
    recursive = _recursive_functions(functions)

    body = fun.body
    for _ in range(_MAX_ROUNDS):
        fresh = FreshNames(assigned_names_stmts(body) | used_names_stmts(body) | {name})
        changed, body = _inline_round(body, functions, name, fresh, recursive)
        if not changed:
            return replace(fun, body=body)
    raise OptimisationError(
        f"inlining {name!r} did not converge after {_MAX_ROUNDS} rounds"
    )


def _recursive_functions(functions: dict[str, ast.FunDef]) -> frozenset[str]:
    """Functions on a call-graph cycle (never inlined)."""
    callees: dict[str, set[str]] = {}
    for name, fun in functions.items():
        called: set[str] = set()

        def collect(e: ast.Expr) -> ast.Expr:
            if isinstance(e, ast.Call) and e.name in functions:
                called.add(e.name)
            return e

        from repro.sac.opt.rewrite import map_expr, map_stmt_exprs

        for s in fun.body:
            map_stmt_exprs(s, lambda x: map_expr(x, collect))
        callees[name] = called

    recursive: set[str] = set()
    for start in functions:
        # DFS: can `start` reach itself?
        stack = list(callees[start])
        seen: set[str] = set()
        while stack:
            cur = stack.pop()
            if cur == start:
                recursive.add(start)
                break
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(callees.get(cur, ()))
    return frozenset(recursive)


def _inline_round(stmts, functions, self_name, fresh, recursive=frozenset()):
    """One lift-then-expand round over a statement list."""
    changed = False
    out: list[ast.Stmt] = []

    def is_user_call(e: ast.Expr) -> bool:
        return (
            isinstance(e, ast.Call)
            and not is_builtin(e.name)
            and e.name != "genarray"
            and e.name in functions
            and e.name != self_name
            and e.name not in recursive
            and is_inlinable(functions[e.name])
        )

    def lift(e: ast.Expr, pre: list[ast.Stmt]) -> ast.Expr:
        """Replace nested user calls with temporaries assigned in ``pre``.

        WITH-loops are a scope boundary: calls inside generator internals
        may depend on index variables, so they lift into the generator's
        own body via :func:`_lift_in_expr`, never into the outer ``pre``.
        """
        nonlocal changed
        if isinstance(e, ast.WithLoop):
            return _lift_in_expr(e, pre, lift, process_stmts)
        if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.Var, ast.Dot)):
            return e
        if isinstance(e, ast.ArrayLit):
            return replace(e, elements=tuple(lift(x, pre) for x in e.elements))
        if isinstance(e, ast.IndexExpr):
            return replace(e, array=lift(e.array, pre), index=lift(e.index, pre))
        if isinstance(e, ast.BinExpr):
            return replace(e, lhs=lift(e.lhs, pre), rhs=lift(e.rhs, pre))
        if isinstance(e, ast.UnExpr):
            return replace(e, operand=lift(e.operand, pre))
        if isinstance(e, ast.Call):
            e = replace(e, args=tuple(lift(a, pre) for a in e.args))
            if is_user_call(e):
                tmp = fresh.fresh(f"call_{e.name}")
                pre.append(ast.Assign(name=tmp, value=e, loc=e.loc))
                changed = True
                return ast.Var(name=tmp, loc=e.loc)
            return e
        raise OptimisationError(f"cannot lift calls in {type(e).__name__}")

    def expand_call(target: str, call: ast.Call, loc) -> list[ast.Stmt]:
        """Splice the callee body for ``target = f(args)``."""
        nonlocal changed
        changed = True
        callee = functions[call.name]
        if len(call.args) != len(callee.params):
            raise OptimisationError(
                f"call to {call.name!r} with {len(call.args)} arguments, "
                f"expected {len(callee.params)}"
            )
        ret = callee.body[-1]
        assert isinstance(ret, ast.Return) and ret.value is not None
        # rename locals *and* parameters apart (parameters may be reassigned
        # in the body — the paper's tilers rebind their output parameter)
        param_names = frozenset(p.name for p in callee.params)
        body, ret_expr, mapping = rename_locals(
            callee.body[:-1], ret.value, fresh, also=param_names
        )
        param_stmts: list[ast.Stmt] = [
            ast.Assign(name=mapping[p.name], value=a, loc=loc)
            for p, a in zip(callee.params, call.args)
        ]
        return [*param_stmts, *body, ast.Assign(name=target, value=ret_expr, loc=loc)]

    def process_stmt(s: ast.Stmt) -> list[ast.Stmt]:
        nonlocal changed
        pre: list[ast.Stmt] = []
        if isinstance(s, ast.Assign):
            if is_user_call(s.value):
                return expand_call(s.name, s.value, s.loc)
            value = _lift_in_expr(s.value, pre, lift, process_stmts)
            return [*pre, replace(s, value=value)]
        if isinstance(s, ast.IndexedAssign):
            index = lift(s.index, pre)
            value = _lift_in_expr(s.value, pre, lift, process_stmts)
            return [*pre, replace(s, index=index, value=value)]
        if isinstance(s, ast.Return):
            if s.value is None:
                return [s]
            value = _lift_in_expr(s.value, pre, lift, process_stmts)
            return [*pre, replace(s, value=value)]
        if isinstance(s, ast.Block):
            return [replace(s, stmts=tuple(process_stmts(s.stmts)))]
        if isinstance(s, ast.ForLoop):
            # calls in loop bodies are handled recursively; calls in the
            # condition/update would need per-iteration lifting — inline
            # them in place only if direct statement form appears inside.
            return [replace(s, body=tuple(process_stmts(s.body)))]
        if isinstance(s, ast.IfElse):
            cond = lift(s.cond, pre)
            return [
                *pre,
                replace(
                    s,
                    cond=cond,
                    then=tuple(process_stmts(s.then)),
                    orelse=tuple(process_stmts(s.orelse)),
                ),
            ]
        return [s]

    def process_stmts(stmts) -> list[ast.Stmt]:
        result: list[ast.Stmt] = []
        for s in stmts:
            result.extend(process_stmt(s))
        return result

    out = process_stmts(stmts)
    return changed, tuple(out)


def _lift_in_expr(e: ast.Expr, pre: list[ast.Stmt], lift, process_stmts) -> ast.Expr:
    """Lift calls in ``e``; WITH-loop generator internals lift into the
    generator's own body (they may depend on the index variable)."""
    if isinstance(e, ast.WithLoop):
        gens = []
        for g in e.generators:
            gpre: list[ast.Stmt] = []
            body = process_stmts(g.body)
            expr = lift(g.expr, gpre)
            gens.append(replace(g, body=tuple(body + gpre), expr=expr))
        op = e.operation
        if isinstance(op, ast.GenArray):
            op = replace(
                op,
                shape=lift(op.shape, pre),
                default=None if op.default is None else lift(op.default, pre),
            )
        elif isinstance(op, ast.ModArray):
            op = replace(op, array=lift(op.array, pre))
        elif isinstance(op, ast.Fold):
            op = replace(op, neutral=lift(op.neutral, pre))
        return replace(e, generators=tuple(gens), operation=op)
    return lift(e, pre)
