"""Static analysis of WITH-loops shared by WLF and the CUDA backend.

Extracts compile-time constant generator ranges, genarray shapes and
coverage information from (partially evaluated) WITH-loop ASTs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sac import ast

__all__ = [
    "StaticRange",
    "const_int_vector",
    "static_frame_shape",
    "static_generator_range",
    "is_full_coverage_single_generator",
    "generators_cover_frame",
]


@dataclass(frozen=True)
class StaticRange:
    """A generator's index set, fully resolved: lower inclusive, upper
    exclusive, step, width."""

    lower: tuple[int, ...]
    upper: tuple[int, ...]
    step: tuple[int, ...]
    width: tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.lower)

    def is_dense(self) -> bool:
        return all(s == 1 for s in self.step)

    def points(self) -> int:
        total = 1
        for lo, hi, st, w in zip(self.lower, self.upper, self.step, self.width):
            if hi <= lo:
                return 0
            full, rem = divmod(hi - lo, st)
            count = full * w + min(rem, w)
            total *= count
        return total

    def point_mask(self, frame_shape: tuple[int, ...]) -> np.ndarray:
        """Boolean mask of covered frame cells (small frames only)."""
        mask = np.zeros(frame_shape, dtype=bool)
        grids = []
        for lo, hi, st, w in zip(self.lower, self.upper, self.step, self.width):
            vals = []
            base = lo
            while base < hi:
                for k in range(w):
                    if base + k < hi:
                        vals.append(base + k)
                base += st
            grids.append(vals)
        if any(len(g) == 0 for g in grids):
            return mask
        mesh = np.meshgrid(*grids, indexing="ij")
        mask[tuple(m.reshape(-1) for m in mesh)] = True
        return mask


def const_int_vector(e: ast.Expr) -> tuple[int, ...] | None:
    """Extract a constant integer vector from a (folded) expression."""
    if isinstance(e, ast.ArrayLit):
        out = []
        for x in e.elements:
            if isinstance(x, ast.IntLit):
                out.append(x.value)
            elif isinstance(x, ast.UnExpr) and x.op == "-" and isinstance(
                x.operand, ast.IntLit
            ):
                out.append(-x.operand.value)
            else:
                return None
        return tuple(out)
    if isinstance(e, ast.IntLit):
        return (e.value,)
    return None


def static_frame_shape(wl: ast.WithLoop, env_shape=None) -> tuple[int, ...] | None:
    """The result frame shape of a genarray/modarray WITH-loop, if static.

    For modarray the caller may pass the base array's known shape via
    ``env_shape``.
    """
    op = wl.operation
    if isinstance(op, ast.GenArray):
        return const_int_vector(op.shape)
    if isinstance(op, ast.ModArray):
        return env_shape
    return None


def static_generator_range(
    gen: ast.Generator, frame_shape: tuple[int, ...] | None
) -> StaticRange | None:
    """Resolve a generator's range when all bounds are compile-time constant.

    Dot bounds need ``frame_shape``.  Returns ``None`` when anything is
    dynamic.
    """

    def bound(b: ast.GenBound, which: str) -> tuple[int, ...] | None:
        if isinstance(b.expr, ast.Dot):
            if frame_shape is None:
                return None
            if which == "lower":
                lo = tuple(0 for _ in frame_shape)
                return lo if b.op == "<=" else tuple(-1 for _ in frame_shape)
            return (
                tuple(s - 1 for s in frame_shape)
                if b.op == "<="
                else tuple(frame_shape)
            )
        return const_int_vector(b.expr)

    lo = bound(gen.lower, "lower")
    hi = bound(gen.upper, "upper")
    if lo is None or hi is None:
        return None
    if len(lo) == 1 and len(hi) > 1:
        lo = lo * len(hi)
    if len(hi) == 1 and len(lo) > 1:
        hi = hi * len(lo)
    if len(lo) != len(hi):
        return None
    if gen.lower.op == "<":
        lo = tuple(x + 1 for x in lo)
    if gen.upper.op == "<=":
        hi = tuple(x + 1 for x in hi)
    rank = len(lo)

    def filt(e: ast.Expr | None, default: int) -> tuple[int, ...] | None:
        if e is None:
            return tuple(default for _ in range(rank))
        v = const_int_vector(e)
        if v is None:
            return None
        if len(v) == 1 and rank > 1:
            v = v * rank
        return v if len(v) == rank else None

    step = filt(gen.step, 1)
    width = filt(gen.width, 1)
    if step is None or width is None:
        return None
    if any(s <= 0 for s in step) or any(w <= 0 or w > s for w, s in zip(width, step)):
        return None
    return StaticRange(lower=lo, upper=hi, step=step, width=width)


def is_full_coverage_single_generator(
    wl: ast.WithLoop, frame_shape: tuple[int, ...] | None = None
) -> bool:
    """True for a single-generator WITH-loop densely covering its frame —
    the producer form WITH-loop folding can substitute from."""
    shape = static_frame_shape(wl, frame_shape)
    if shape is None or len(wl.generators) != 1:
        return False
    rng = static_generator_range(wl.generators[0], shape)
    if rng is None or rng.rank != len(shape):
        return False
    return (
        rng.lower == tuple(0 for _ in shape)
        and rng.upper == tuple(shape)
        and rng.is_dense()
    )


def generators_cover_frame(
    wl: ast.WithLoop, frame_shape: tuple[int, ...]
) -> bool | None:
    """Whether the generators together cover every frame cell.

    Returns ``None`` when any generator is dynamic.  Uses closed-form
    point counting (ranges are disjoint by language semantics), falling
    back to an explicit mask for small frames when counts alone cannot
    decide.
    """
    total = int(np.prod(frame_shape))
    count = 0
    ranges = []
    for gen in wl.generators:
        rng = static_generator_range(gen, frame_shape)
        if rng is None or rng.rank != len(frame_shape):
            return None
        ranges.append(rng)
        count += rng.points()
    if count != total:
        return False
    # counts match; since semantics guarantee disjointness, this is coverage
    return True
