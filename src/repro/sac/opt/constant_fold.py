"""Partial evaluation: constant folding and small-vector scalarisation.

This pass is what lets the *generic* tiler abstractions of the paper
(Figure 4/6) compile to static GPU kernels: after inlining, the tiler's
origin/fitting/paving arguments are literal arrays, so

* ``shape(in_frame)`` folds to a constant vector (from static parameter
  types or known genarray shapes),
* ``MV(CAT(paving, fitting), rep++pat)`` is scalarised into per-component
  affine expressions of the index variables,
* ``tile = genarray(out_pattern, 0); tile[0] = e; ...`` turns into a
  symbolic vector whose elements are expressions — which WITH-loop folding
  can then select from, and
* WITH-loop bounds and genarray shapes become literal vectors the CUDA
  backend can translate into static launch index spaces.

The abstract domain tracks, per variable: a fully known value, a symbolic
vector of scalar expressions, a known shape, and scalarness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import OptimisationError
from repro.ir.expr import c_div, c_mod
from repro.sac import ast
from repro.sac.builtins import BUILTINS
from repro.sac.values import BASE_DTYPES

__all__ = ["fold_program", "fold_function", "AVal"]

#: arrays up to this many elements are literalised / tracked element-wise
SMALL_ARRAY = 64


@dataclass(frozen=True)
class AVal:
    """Abstract value: what is statically known about an expression."""

    value: object | None = None  # fully known NumPy/Python value
    elements: tuple | None = None  # symbolic vector elements (ast.Expr)
    shape: tuple[int, ...] | None = None  # known shape
    scalar: bool | None = None  # known scalarness

    @staticmethod
    def const(v) -> "AVal":
        arr = np.asarray(v)
        return AVal(value=v, shape=arr.shape, scalar=arr.ndim == 0)

    @staticmethod
    def vec(elements) -> "AVal":
        return AVal(elements=tuple(elements), shape=(len(elements),), scalar=False)

    @staticmethod
    def shaped(shape) -> "AVal":
        shape = tuple(int(s) for s in shape)
        return AVal(shape=shape, scalar=len(shape) == 0)

    @staticmethod
    def scalar_unknown() -> "AVal":
        return AVal(scalar=True, shape=())

    @staticmethod
    def top() -> "AVal":
        return AVal()

_TOP = AVal.top()


def _literal(value, loc) -> ast.Expr | None:
    """Re-literalise a known value as an AST expression (None if too big)."""
    if isinstance(value, (bool, np.bool_)):
        return ast.BoolLit(value=bool(value), loc=loc)
    if isinstance(value, (int, np.integer)):
        return ast.IntLit(value=int(value), loc=loc)
    if isinstance(value, (float, np.floating)):
        return ast.FloatLit(value=float(value), loc=loc)
    arr = np.asarray(value)
    if arr.ndim == 0:
        return _literal(arr[()], loc)
    if arr.size > SMALL_ARRAY:
        return None
    return ast.ArrayLit(
        elements=tuple(_literal(row, loc) for row in arr), loc=loc
    )


def _is_const_zero(aval: AVal) -> bool:
    return aval.value is not None and np.ndim(aval.value) == 0 and aval.value == 0


def _is_const_one(aval: AVal) -> bool:
    return aval.value is not None and np.ndim(aval.value) == 0 and aval.value == 1


class _Folder:
    def __init__(self, env: dict[str, AVal], copies: dict[str, str] | None = None):
        self.env = env
        #: flow-sensitive copy propagation: name -> the variable it is a
        #: plain copy of (inlining leaves long ``x = y`` chains behind,
        #: which would otherwise hide producers from WITH-loop folding)
        self.copies: dict[str, str] = dict(copies or {})

    def _invalidate_copies(self, name: str) -> None:
        self.copies.pop(name, None)
        for k in [k for k, v in self.copies.items() if v == name]:
            del self.copies[k]

    # -- expression folding ----------------------------------------------------

    def fold(self, e: ast.Expr) -> tuple[ast.Expr, AVal]:
        if isinstance(e, ast.IntLit):
            return e, AVal.const(e.value)
        if isinstance(e, ast.FloatLit):
            return e, AVal.const(e.value)
        if isinstance(e, ast.BoolLit):
            return e, AVal.const(e.value)
        if isinstance(e, ast.Dot):
            return e, _TOP
        if isinstance(e, ast.Var):
            aval = self.env.get(e.name, _TOP)
            if aval.value is not None:
                lit = _literal(aval.value, e.loc)
                if lit is not None:
                    return lit, aval
            if e.name in self.copies:
                return ast.Var(name=self.copies[e.name], loc=e.loc), aval
            return e, aval
        if isinstance(e, ast.ArrayLit):
            return self._fold_array_lit(e)
        if isinstance(e, ast.BinExpr):
            return self._fold_binexpr(e)
        if isinstance(e, ast.UnExpr):
            return self._fold_unexpr(e)
        if isinstance(e, ast.IndexExpr):
            return self._fold_index(e)
        if isinstance(e, ast.Call):
            return self._fold_call(e)
        if isinstance(e, ast.WithLoop):
            return self._fold_withloop(e)
        raise OptimisationError(f"cannot fold {type(e).__name__}")

    def _fold_array_lit(self, e: ast.ArrayLit):
        folded = [self.fold(x) for x in e.elements]
        exprs = tuple(f for f, _ in folded)
        out = replace(e, elements=exprs)
        avals = [a for _, a in folded]
        if avals and all(a.value is not None for a in avals):
            shapes = {np.shape(a.value) for a in avals}
            if len(shapes) == 1:  # uniform rows: scalars or nested arrays
                arr = np.asarray([np.asarray(a.value) for a in avals])
                if np.issubdtype(arr.dtype, np.integer):
                    arr = arr.astype(np.int32)
                return out, AVal.const(arr)
        if all(a.scalar for a in avals):
            return out, AVal.vec(exprs)
        # vector of vectors with symbolic entries — only the extent is known
        return out, AVal(shape=None, scalar=False)

    def _vector_form(self, expr: ast.Expr, aval: AVal) -> tuple | None:
        """Elements of a known-length vector as scalar expressions."""
        if aval.elements is not None:
            return aval.elements
        if (
            aval.value is not None
            and np.ndim(aval.value) == 1
            and np.asarray(aval.value).size <= SMALL_ARRAY
        ):
            return tuple(_literal(v, expr.loc) for v in np.asarray(aval.value))
        if (
            isinstance(expr, ast.Var)
            and aval.shape is not None
            and len(aval.shape) == 1
            and aval.shape[0] <= SMALL_ARRAY
        ):
            # an opaque index vector of known length (e.g. a generator
            # variable): expand to component selections
            return tuple(
                ast.IndexExpr(
                    array=expr,
                    index=ast.ArrayLit(elements=(ast.IntLit(value=k, loc=expr.loc),),
                                       loc=expr.loc),
                    loc=expr.loc,
                )
                for k in range(aval.shape[0])
            )
        return None

    def _fold_binexpr(self, e: ast.BinExpr):
        lhs, la = self.fold(e.lhs)
        rhs, ra = self.fold(e.rhs)
        op = e.op

        # fully constant
        if la.value is not None and ra.value is not None:
            val = _apply_op(op, la.value, ra.value, e.loc)
            lit = _literal(val, e.loc)
            if lit is not None:
                return lit, AVal.const(val)

        if op == "++":
            lv = self._vector_form(lhs, la)
            rv = self._vector_form(rhs, ra)
            if lv is not None and rv is not None:
                out = ast.ArrayLit(elements=lv + rv, loc=e.loc)
                return out, AVal.vec(lv + rv)
            return replace(e, lhs=lhs, rhs=rhs), _TOP

        # scalar identities
        if la.scalar and ra.scalar:
            if op == "+" and _is_const_zero(la):
                return rhs, ra
            if op in ("+", "-") and _is_const_zero(ra):
                return lhs, la
            if op == "*" and _is_const_one(la):
                return rhs, ra
            if op in ("*", "/") and _is_const_one(ra):
                return lhs, la
            if op == "*" and (_is_const_zero(la) or _is_const_zero(ra)):
                return ast.IntLit(value=0, loc=e.loc), AVal.const(0)
            return replace(e, lhs=lhs, rhs=rhs), AVal.scalar_unknown()

        # element-wise over symbolic vectors
        if op in ("+", "-", "*", "/", "%"):
            lv = self._vector_form(lhs, la)
            rv = self._vector_form(rhs, ra)
            if lv is not None and rv is not None and len(lv) == len(rv):
                elems = tuple(
                    self.fold(ast.BinExpr(op=op, lhs=a, rhs=b, loc=e.loc))[0]
                    for a, b in zip(lv, rv)
                )
                return ast.ArrayLit(elements=elems, loc=e.loc), AVal.vec(elems)
            if lv is not None and ra.scalar:
                elems = tuple(
                    self.fold(ast.BinExpr(op=op, lhs=a, rhs=rhs, loc=e.loc))[0]
                    for a in lv
                )
                return ast.ArrayLit(elements=elems, loc=e.loc), AVal.vec(elems)
            if rv is not None and la.scalar:
                elems = tuple(
                    self.fold(ast.BinExpr(op=op, lhs=lhs, rhs=b, loc=e.loc))[0]
                    for b in rv
                )
                return ast.ArrayLit(elements=elems, loc=e.loc), AVal.vec(elems)

        out_aval = _TOP
        if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            if la.scalar and ra.scalar:
                out_aval = AVal.scalar_unknown()
        elif la.shape is not None and ra.scalar:
            out_aval = AVal.shaped(la.shape)
        elif ra.shape is not None and la.scalar:
            out_aval = AVal.shaped(ra.shape)
        elif la.shape is not None and la.shape == ra.shape:
            out_aval = AVal.shaped(la.shape)
        return replace(e, lhs=lhs, rhs=rhs), out_aval

    def _fold_unexpr(self, e: ast.UnExpr):
        operand, aval = self.fold(e.operand)
        if aval.value is not None:
            val = np.negative(aval.value) if e.op == "-" else np.logical_not(aval.value)
            lit = _literal(val, e.loc)
            if lit is not None:
                return lit, AVal.const(val)
        if isinstance(operand, ast.UnExpr) and operand.op == e.op:
            inner, ia = self.fold(operand.operand)
            return inner, ia
        return replace(e, operand=operand), AVal(scalar=aval.scalar, shape=aval.shape)

    def _const_index(self, aval: AVal) -> tuple[int, ...] | None:
        if aval.value is None:
            return None
        v = np.asarray(aval.value)
        if v.ndim == 0:
            return (int(v),)
        if v.ndim == 1 and np.issubdtype(v.dtype, np.integer):
            return tuple(int(x) for x in v)
        return None

    def _fold_index(self, e: ast.IndexExpr):
        array, aa = self.fold(e.array)
        index, ia = self.fold(e.index)
        idx = self._const_index(ia)
        if idx is not None:
            # full constant selection
            if aa.value is not None:
                v = np.asarray(aa.value)
                if len(idx) <= v.ndim and all(
                    0 <= i < s for i, s in zip(idx, v.shape)
                ):
                    sel = v[idx]
                    lit = _literal(sel, e.loc)
                    if lit is not None:
                        return lit, AVal.const(sel)
            # symbolic vector element
            if aa.elements is not None and len(idx) == 1:
                if 0 <= idx[0] < len(aa.elements):
                    return aa.elements[idx[0]], AVal.scalar_unknown()
            # selection from a nested array literal
            if isinstance(array, ast.ArrayLit):
                cur: ast.Expr = array
                consumed = 0
                for i in idx:
                    if isinstance(cur, ast.ArrayLit) and 0 <= i < len(cur.elements):
                        cur = cur.elements[i]
                        consumed += 1
                    else:
                        break
                if consumed == len(idx):
                    return self.fold(cur)
        # canonicalise: index vectors of known length become ArrayLits of
        # scalar component expressions (what WLF substitutes on); scalar
        # indices become singleton vectors (same SaC selection semantics)
        if idx is None and not isinstance(index, ast.ArrayLit):
            vf = self._vector_form(index, ia)
            if vf is not None:
                index = ast.ArrayLit(elements=vf, loc=index.loc)
            elif ia.scalar:
                index = ast.ArrayLit(elements=(index,), loc=index.loc)
        out = replace(e, array=array, index=index)
        # scalarness: selecting with a full-rank index yields a scalar
        if aa.shape is not None and ia.shape is not None and len(ia.shape) == 1:
            if ia.shape[0] == len(aa.shape):
                return out, AVal.scalar_unknown()
            if ia.shape[0] < len(aa.shape):
                return out, AVal.shaped(aa.shape[ia.shape[0]:])
        if aa.shape is not None and ia.scalar and len(aa.shape) >= 1:
            if len(aa.shape) == 1:
                return out, AVal.scalar_unknown()
            return out, AVal.shaped(aa.shape[1:])
        return out, _TOP

    def _fold_call(self, e: ast.Call):
        folded = [self.fold(a) for a in e.args]
        exprs = [f for f, _ in folded]
        avals = [a for _, a in folded]
        out = replace(e, args=tuple(exprs))
        name = e.name

        if name == "shape" and len(avals) == 1:
            if avals[0].shape is not None:
                val = np.asarray(avals[0].shape, dtype=np.int32)
                lit = _literal(val, e.loc)
                if lit is not None:
                    return lit, AVal.const(val)
            return out, _TOP
        if name == "dim" and len(avals) == 1 and avals[0].shape is not None:
            return (
                ast.IntLit(value=len(avals[0].shape), loc=e.loc),
                AVal.const(len(avals[0].shape)),
            )
        if name == "genarray" and len(avals) in (1, 2):
            shp = self._const_index(avals[0])
            default = avals[1].value if len(avals) == 2 else 0
            if shp is not None and default is not None and np.ndim(default) == 0:
                size = int(np.prod(shp))
                if 0 < size <= SMALL_ARRAY:
                    if isinstance(default, (int, np.integer)):
                        arr = np.full(shp, int(default), dtype=np.int32)
                    else:
                        arr = np.full(shp, default)
                    lit = _literal(arr, e.loc)
                    if lit is not None:
                        return lit, AVal.const(arr)
                if size > 0:
                    return out, AVal.shaped(shp)
            return out, _TOP
        if name == "CAT" and len(folded) == 2:
            lv = self._vector_form(exprs[0], avals[0])
            rv = self._vector_form(exprs[1], avals[1])
            if lv is not None and rv is not None:
                elems = lv + rv
                return ast.ArrayLit(elements=elems, loc=e.loc), AVal.vec(elems)
            if avals[0].value is not None and avals[1].value is not None:
                val = BUILTINS["CAT"][0](avals[0].value, avals[1].value)
                lit = _literal(val, e.loc)
                if lit is not None:
                    return lit, AVal.const(val)
            return out, _TOP
        if name == "MV" and len(folded) == 2:
            mat = avals[0].value
            vec = self._vector_form(exprs[1], avals[1])
            if mat is not None and np.ndim(mat) == 2 and vec is not None:
                m = np.asarray(mat)
                if m.shape[0] == len(vec):
                    cols = [
                        [(m[k, d], vec[k]) for k in range(m.shape[0])]
                        for d in range(m.shape[1])
                    ]
                elif m.shape[1] == len(vec):
                    cols = [
                        [(m[d, k], vec[k]) for k in range(m.shape[1])]
                        for d in range(m.shape[0])
                    ]
                else:
                    raise OptimisationError(
                        f"MV shape mismatch: {m.shape} x {len(vec)}"
                    )
                elems = tuple(self._affine_sum(terms, e.loc) for terms in cols)
                return ast.ArrayLit(elements=elems, loc=e.loc), AVal.vec(elems)
            return out, _TOP
        if name in BUILTINS and all(a.value is not None for a in avals):
            fn, arity = BUILTINS[name]
            if len(avals) == arity:
                val = fn(*[a.value for a in avals])
                lit = _literal(val, e.loc)
                if lit is not None:
                    return lit, AVal.const(val)
        return out, _TOP

    def _affine_sum(self, terms, loc) -> ast.Expr:
        """Fold sum(coef * expr) dropping zero and one coefficients."""
        acc: ast.Expr | None = None
        for coef, expr in terms:
            c = int(coef)
            if c == 0:
                continue
            if c == 1:
                term = expr
            else:
                term = self.fold(
                    ast.BinExpr(op="*", lhs=ast.IntLit(value=c, loc=loc), rhs=expr, loc=loc)
                )[0]
            acc = term if acc is None else ast.BinExpr(op="+", lhs=acc, rhs=term, loc=loc)
        return acc if acc is not None else ast.IntLit(value=0, loc=loc)

    # -- WITH-loops ---------------------------------------------------------------

    def _generator_rank(self, gen: ast.Generator, lo_aval, hi_aval, frame_rank):
        if gen.destructured:
            return len(gen.vars)
        for aval in (lo_aval, hi_aval):
            if aval is not None and aval.shape is not None and len(aval.shape) == 1:
                return aval.shape[0]
        return frame_rank

    @staticmethod
    def _resolve_dots(gen: ast.Generator, frame_shape) -> ast.Generator:
        loc = gen.loc
        lower, upper = gen.lower, gen.upper
        if isinstance(lower.expr, ast.Dot):
            base = 0 if lower.op == "<=" else -1
            lower = replace(
                lower,
                expr=ast.ArrayLit(
                    elements=tuple(ast.IntLit(value=base, loc=loc) for _ in frame_shape),
                    loc=loc,
                ),
            )
        if isinstance(upper.expr, ast.Dot):
            off = -1 if upper.op == "<=" else 0
            upper = replace(
                upper,
                expr=ast.ArrayLit(
                    elements=tuple(
                        ast.IntLit(value=s + off, loc=loc) for s in frame_shape
                    ),
                    loc=loc,
                ),
            )
        return replace(gen, lower=lower, upper=upper)

    def _fold_withloop(self, e: ast.WithLoop):
        op = e.operation
        frame_shape: tuple[int, ...] | None = None
        cell_shape: tuple[int, ...] | None = None
        if isinstance(op, ast.GenArray):
            shape_e, shape_a = self.fold(op.shape)
            default_e, default_a = (None, None)
            if op.default is not None:
                default_e, default_a = self.fold(op.default)
            op = replace(op, shape=shape_e, default=default_e)
            shp = self._const_index(shape_a)
            if shp is not None:
                frame_shape = shp
            if op.default is not None and default_a is not None:
                cell_shape = default_a.shape
        elif isinstance(op, ast.ModArray):
            arr_e, arr_a = self.fold(op.array)
            op = replace(op, array=arr_e)
            if arr_a.shape is not None:
                frame_shape = arr_a.shape
                cell_shape = ()
        elif isinstance(op, ast.Fold):
            neutral_e, _ = self.fold(op.neutral)
            op = replace(op, neutral=neutral_e)

        frame_rank = None if frame_shape is None else len(frame_shape)
        gens = []
        first_cell_aval: AVal | None = None
        for gen in e.generators:
            # resolve '.' bounds against a known frame shape so that WLF and
            # the CUDA backend only ever see literal bounds
            if frame_shape is not None:
                gen = self._resolve_dots(gen, frame_shape)
            lo_e, lo_a = self.fold(gen.lower.expr)
            hi_e, hi_a = self.fold(gen.upper.expr)
            step_e = width_e = None
            if gen.step is not None:
                step_e, _ = self.fold(gen.step)
            if gen.width is not None:
                width_e, _ = self.fold(gen.width)
            rank = self._generator_rank(
                gen,
                None if isinstance(gen.lower.expr, ast.Dot) else lo_a,
                None if isinstance(gen.upper.expr, ast.Dot) else hi_a,
                frame_rank,
            )
            child = dict(self.env)
            child_copies = {
                k: v
                for k, v in self.copies.items()
                if k not in gen.vars and v not in gen.vars
            }
            if gen.destructured:
                for v in gen.vars:
                    child[v] = AVal.scalar_unknown()
            elif rank is not None:
                child[gen.var] = AVal.shaped((rank,))
            else:
                child[gen.var] = _TOP
            sub = _Folder(child, child_copies)
            body = sub.fold_stmts(gen.body)
            expr_f, expr_a = sub.fold(gen.expr)
            # expose vector cells structurally (the backend stores each
            # component; DCE then drops the now-dead vector temporary)
            if expr_a.elements is not None and not isinstance(expr_f, ast.ArrayLit):
                expr_f = ast.ArrayLit(elements=expr_a.elements, loc=gen.loc)
            if first_cell_aval is None:
                first_cell_aval = expr_a
            gens.append(
                replace(
                    gen,
                    lower=replace(gen.lower, expr=lo_e),
                    upper=replace(gen.upper, expr=hi_e),
                    step=step_e,
                    width=width_e,
                    body=body,
                    expr=expr_f,
                )
            )

        out = replace(e, generators=tuple(gens), operation=op)
        if isinstance(op, ast.Fold):
            return out, AVal.scalar_unknown()
        if frame_shape is not None:
            if cell_shape is None and first_cell_aval is not None:
                cell_shape = first_cell_aval.shape if not first_cell_aval.scalar else ()
                if first_cell_aval.scalar:
                    cell_shape = ()
            if cell_shape is not None:
                return out, AVal.shaped(tuple(frame_shape) + tuple(cell_shape))
        return out, _TOP

    # -- statements ------------------------------------------------------------------

    def fold_stmts(self, stmts) -> tuple[ast.Stmt, ...]:
        out: list[ast.Stmt] = []
        for s in stmts:
            out.extend(self.fold_stmt(s))
        return tuple(out)

    def fold_stmt(self, s: ast.Stmt) -> list[ast.Stmt]:
        if isinstance(s, ast.Assign):
            value, aval = self.fold(s.value)
            self.env[s.name] = aval
            self._invalidate_copies(s.name)
            if isinstance(value, ast.Var) and value.name != s.name:
                self.copies[s.name] = value.name
            return [replace(s, value=value)]
        if isinstance(s, ast.IndexedAssign):
            self._invalidate_copies(s.name)
            index, ia = self.fold(s.index)
            value, va = self.fold(s.value)
            # canonicalise the index to a vector of scalar components (the
            # host loop-nest vectoriser consumes this form)
            if self._const_index(ia) is None and not isinstance(index, ast.ArrayLit):
                vf = self._vector_form(index, ia)
                if vf is not None:
                    index = ast.ArrayLit(elements=vf, loc=index.loc)
            base = self.env.get(s.name, _TOP)
            idx = self._const_index(ia)
            # known-content single-cell updates turn into plain assignments
            if idx is not None and len(idx) == 1 and va.scalar:
                if (
                    base.value is not None
                    and va.value is not None
                    and np.ndim(base.value) == 1
                    and 0 <= idx[0] < np.asarray(base.value).size
                ):
                    arr = np.array(base.value, copy=True)
                    arr[idx[0]] = va.value
                    self.env[s.name] = AVal.const(arr)
                    lit = _literal(arr, s.loc)
                    if lit is not None:
                        return [ast.Assign(name=s.name, value=lit, loc=s.loc)]
                # symbolic elements: either tracked already, or expandable
                # from a small constant vector
                elems_form = base.elements
                if (
                    elems_form is None
                    and base.value is not None
                    and np.ndim(base.value) == 1
                    and np.asarray(base.value).size <= SMALL_ARRAY
                ):
                    elems_form = tuple(
                        _literal(v, s.loc) for v in np.asarray(base.value)
                    )
                if elems_form is not None and 0 <= idx[0] < len(elems_form):
                    elems = list(elems_form)
                    elems[idx[0]] = value
                    self.env[s.name] = AVal.vec(tuple(elems))
                    return [
                        ast.Assign(
                            name=s.name,
                            value=ast.ArrayLit(elements=tuple(elems), loc=s.loc),
                            loc=s.loc,
                        )
                    ]
            # otherwise: content unknown from here on, but shape survives
            self.env[s.name] = (
                AVal.shaped(base.shape) if base.shape is not None else _TOP
            )
            return [replace(s, index=index, value=value)]
        if isinstance(s, ast.Block):
            return [replace(s, stmts=self.fold_stmts(s.stmts))]
        if isinstance(s, ast.ForLoop):
            return [self._fold_for(s)]
        if isinstance(s, ast.IfElse):
            cond, ca = self.fold(s.cond)
            if ca.value is not None and np.ndim(ca.value) == 0:
                branch = s.then if bool(ca.value) else s.orelse
                return list(self.fold_stmts(branch))
            then_env = dict(self.env)
            else_env = dict(self.env)
            then_folder = _Folder(then_env, dict(self.copies))
            else_folder = _Folder(else_env, dict(self.copies))
            then = then_folder.fold_stmts(s.then)
            orelse = else_folder.fold_stmts(s.orelse)
            self._join(then_env, else_env)
            self.copies = {
                k: v
                for k, v in then_folder.copies.items()
                if else_folder.copies.get(k) == v
            }
            return [replace(s, cond=cond, then=then, orelse=orelse)]
        if isinstance(s, ast.Return):
            if s.value is None:
                return [s]
            value, _ = self.fold(s.value)
            return [replace(s, value=value)]
        raise OptimisationError(f"cannot fold statement {type(s).__name__}")

    def _fold_for(self, s: ast.ForLoop) -> ast.Stmt:
        from repro.sac.opt.rewrite import assigned_names_stmts

        init = self.fold_stmt(s.init)[0]
        # everything assigned inside the loop becomes unknown (we keep the
        # shape when an array variable is only updated element-wise)
        mutated = assigned_names_stmts(s.body) | assigned_names_stmts(
            (s.init, s.update)
        )
        for name in mutated:
            base = self.env.get(name, _TOP)
            self.env[name] = (
                AVal.shaped(base.shape)
                if base.shape is not None and not base.scalar
                else (AVal.scalar_unknown() if base.scalar else _TOP)
            )
            self._invalidate_copies(name)
        cond, _ = self.fold(s.cond)
        update = self.fold_stmt(s.update)[0]
        body = _Folder(dict(self.env), dict(self.copies)).fold_stmts(s.body)
        return replace(s, init=init, cond=cond, update=update, body=body)

    def _join(self, a: dict[str, AVal], b: dict[str, AVal]) -> None:
        """Merge two branch environments into self.env (meet over paths)."""
        names = set(a) | set(b)
        for n in names:
            va = a.get(n, _TOP)
            vb = b.get(n, _TOP)
            if va == vb:
                self.env[n] = va
            elif va.shape is not None and va.shape == vb.shape:
                self.env[n] = AVal.shaped(va.shape)
            else:
                self.env[n] = _TOP


def _apply_op(op: str, a, b, loc):
    try:
        if op == "+":
            return np.add(a, b)
        if op == "-":
            return np.subtract(a, b)
        if op == "*":
            return np.multiply(a, b)
        if op == "/":
            return c_div(np.asarray(a), np.asarray(b))
        if op == "%":
            return c_mod(np.asarray(a), np.asarray(b))
        if op == "<":
            return np.less(a, b)
        if op == "<=":
            return np.less_equal(a, b)
        if op == ">":
            return np.greater(a, b)
        if op == ">=":
            return np.greater_equal(a, b)
        if op == "==":
            return np.equal(a, b)
        if op == "!=":
            return np.not_equal(a, b)
        if op == "&&":
            return np.logical_and(a, b)
        if op == "||":
            return np.logical_or(a, b)
        if op == "++":
            return BUILTINS["CAT"][0](a, b)
    except (ValueError, ZeroDivisionError) as err:
        raise OptimisationError(f"constant folding failed at {loc}: {err}") from None
    raise OptimisationError(f"unknown operator {op!r} at {loc}")


def _param_aval(p: ast.Param) -> AVal:
    t = p.type
    if t.base not in BASE_DTYPES and t.base != "void":
        return _TOP
    if t.is_scalar:
        return AVal.scalar_unknown()
    if t.is_static:
        return AVal.shaped(tuple(d for d in t.dims))  # type: ignore[misc]
    return _TOP


def fold_function(fun: ast.FunDef) -> ast.FunDef:
    env = {p.name: _param_aval(p) for p in fun.params}
    folder = _Folder(env)
    return replace(fun, body=folder.fold_stmts(fun.body))


def fold_program(program: ast.Program) -> ast.Program:
    return replace(
        program, functions=tuple(fold_function(f) for f in program.functions)
    )
