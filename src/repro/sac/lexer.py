"""Tokenizer for the SaC subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SacSyntaxError, SourceLocation

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "int", "float", "double", "bool", "void",
        "with", "genarray", "modarray", "fold", "step", "width",
        "for", "if", "else", "return", "true", "false",
    }
)

# multi-character operators, longest first
_OPERATORS = [
    "++", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "(", ")", "{", "}", "[", "]", ",", ";", ":", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token; ``kind`` is 'int', 'float', 'id', 'kw', 'op' or 'eof'."""

    kind: str
    text: str
    loc: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}, {self.loc})"


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Tokenize SaC source, raising :class:`SacSyntaxError` on bad input.

    Supports ``//`` line comments and ``/* */`` block comments.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(line, col, filename)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start = loc()
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise SacSyntaxError("unterminated block comment", start)
            advance(2)
            continue
        if c.isdigit() or (
            c == "." and i + 1 < n and source[i + 1].isdigit() and _prev_not_numeric(tokens)
        ):
            start = loc()
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            tokens.append(Token("float" if is_float else "int", text, start))
            advance(j - i)
            continue
        if c.isalpha() or c == "_":
            start = loc()
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, start))
            advance(j - i)
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, loc()))
                advance(len(op))
                break
        else:
            raise SacSyntaxError(f"unexpected character {c!r}", loc())

    tokens.append(Token("eof", "", loc()))
    return tokens


def _prev_not_numeric(tokens: list[Token]) -> bool:
    """Heuristic so ``a.5`` is not lexed as a float after an identifier.

    A leading ``.`` starts a float literal only when the previous token
    could not end an expression (e.g. after ``(`` or an operator).
    """
    if not tokens:
        return True
    prev = tokens[-1]
    if prev.kind in ("int", "float", "id"):
        return False
    if prev.kind == "op" and prev.text in (")", "]"):
        return False
    return True
