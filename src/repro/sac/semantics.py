"""Static semantic checks for SaC programs.

Catches what the paper's language rules make illegal before anything runs:

* use of undefined variables (per control-flow path, conservatively),
* calls with wrong arity, or to undefined functions/builtins,
* ``fold`` with an unknown reduction function,
* generator index variables shadowing each other,
* functions whose non-void control flow can fall off the end,
* duplicate parameter names.

The checker is flow-sensitive for straight-line code and joins branches
conservatively (a variable only counts as defined after ``if``/``else``
when both branches define it).
"""

from __future__ import annotations

from repro.errors import SacSemanticError
from repro.sac import ast
from repro.sac.builtins import BUILTINS, FOLD_FUNS

__all__ = ["check_program", "check_function"]


def check_program(program: ast.Program) -> None:
    """Raise :class:`SacSemanticError` on the first violation found."""
    functions = {f.name: f for f in program.functions}
    for f in program.functions:
        check_function(f, functions)


def check_function(fun: ast.FunDef, functions: dict[str, ast.FunDef]) -> None:
    names = [p.name for p in fun.params]
    if len(set(names)) != len(names):
        raise SacSemanticError(
            f"{fun.name}: duplicate parameter names {names}", fun.loc
        )
    checker = _Checker(fun, functions)
    defined = set(names)
    returns = checker.check_stmts(fun.body, defined)
    if fun.ret_type.base != "void" and not returns:
        raise SacSemanticError(
            f"{fun.name}: control flow can reach the end without returning",
            fun.loc,
        )


class _Checker:
    def __init__(self, fun: ast.FunDef, functions: dict[str, ast.FunDef]):
        self.fun = fun
        self.functions = functions

    def check_stmts(self, stmts, defined: set[str]) -> bool:
        """Check a statement list; returns whether it definitely returns."""
        returns = False
        for s in stmts:
            if returns:
                raise SacSemanticError(
                    f"{self.fun.name}: unreachable statement after return", s.loc
                )
            returns = self.check_stmt(s, defined)
        return returns

    def check_stmt(self, s: ast.Stmt, defined: set[str]) -> bool:
        if isinstance(s, ast.Assign):
            self.check_expr(s.value, defined)
            defined.add(s.name)
            return False
        if isinstance(s, ast.IndexedAssign):
            if s.name not in defined:
                raise SacSemanticError(
                    f"{self.fun.name}: indexed assignment to undefined "
                    f"{s.name!r}",
                    s.loc,
                )
            self.check_expr(s.index, defined)
            self.check_expr(s.value, defined)
            return False
        if isinstance(s, ast.Block):
            return self.check_stmts(s.stmts, defined)
        if isinstance(s, ast.ForLoop):
            self.check_stmt(s.init, defined)
            self.check_expr(s.cond, defined)
            # body + update see the loop variable; definitions made inside
            # the body are not guaranteed outside (zero-trip loops)
            inner = set(defined)
            self.check_stmts(s.body, inner)
            self.check_stmt(s.update, inner)
            return False
        if isinstance(s, ast.IfElse):
            self.check_expr(s.cond, defined)
            then_defs = set(defined)
            else_defs = set(defined)
            then_ret = self.check_stmts(s.then, then_defs)
            else_ret = self.check_stmts(s.orelse, else_defs)
            defined |= then_defs & else_defs
            if then_ret and not s.orelse:
                return False
            return then_ret and else_ret
        if isinstance(s, ast.Return):
            if s.value is not None:
                self.check_expr(s.value, defined)
                if self.fun.ret_type.base == "void":
                    raise SacSemanticError(
                        f"{self.fun.name}: void function returns a value", s.loc
                    )
            elif self.fun.ret_type.base != "void":
                raise SacSemanticError(
                    f"{self.fun.name}: non-void function returns nothing", s.loc
                )
            return True
        raise SacSemanticError(
            f"{self.fun.name}: unknown statement {type(s).__name__}", s.loc
        )

    # -- expressions ---------------------------------------------------------

    def check_expr(self, e: ast.Expr, defined: set[str]) -> None:
        if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.Dot)):
            return
        if isinstance(e, ast.Var):
            if e.name not in defined:
                raise SacSemanticError(
                    f"{self.fun.name}: use of undefined variable {e.name!r}",
                    e.loc,
                )
            return
        if isinstance(e, ast.ArrayLit):
            for x in e.elements:
                self.check_expr(x, defined)
            return
        if isinstance(e, ast.IndexExpr):
            self.check_expr(e.array, defined)
            self.check_expr(e.index, defined)
            return
        if isinstance(e, ast.BinExpr):
            self.check_expr(e.lhs, defined)
            self.check_expr(e.rhs, defined)
            return
        if isinstance(e, ast.UnExpr):
            self.check_expr(e.operand, defined)
            return
        if isinstance(e, ast.Call):
            self.check_call(e, defined)
            return
        if isinstance(e, ast.WithLoop):
            self.check_withloop(e, defined)
            return
        raise SacSemanticError(
            f"{self.fun.name}: unknown expression {type(e).__name__}", e.loc
        )

    def check_call(self, e: ast.Call, defined: set[str]) -> None:
        for a in e.args:
            self.check_expr(a, defined)
        if e.name == "genarray":
            if len(e.args) not in (1, 2):
                raise SacSemanticError(
                    f"{self.fun.name}: genarray takes 1 or 2 arguments", e.loc
                )
            return
        if e.name in BUILTINS:
            _, arity = BUILTINS[e.name]
            if len(e.args) != arity:
                raise SacSemanticError(
                    f"{self.fun.name}: builtin {e.name!r} expects {arity} "
                    f"arguments, got {len(e.args)}",
                    e.loc,
                )
            return
        target = self.functions.get(e.name)
        if target is None:
            raise SacSemanticError(
                f"{self.fun.name}: call to undefined function {e.name!r}", e.loc
            )
        if len(e.args) != len(target.params):
            raise SacSemanticError(
                f"{self.fun.name}: {e.name!r} expects {len(target.params)} "
                f"arguments, got {len(e.args)}",
                e.loc,
            )

    def check_withloop(self, e: ast.WithLoop, defined: set[str]) -> None:
        op = e.operation
        if isinstance(op, ast.GenArray):
            self.check_expr(op.shape, defined)
            if op.default is not None:
                self.check_expr(op.default, defined)
        elif isinstance(op, ast.ModArray):
            self.check_expr(op.array, defined)
        elif isinstance(op, ast.Fold):
            if op.fun not in FOLD_FUNS:
                raise SacSemanticError(
                    f"{self.fun.name}: unknown fold function {op.fun!r} "
                    f"(expected one of {sorted(FOLD_FUNS)})",
                    op.loc,
                )
            self.check_expr(op.neutral, defined)
        for g in e.generators:
            if not isinstance(g.lower.expr, ast.Dot):
                self.check_expr(g.lower.expr, defined)
            if not isinstance(g.upper.expr, ast.Dot):
                self.check_expr(g.upper.expr, defined)
            if g.step is not None:
                self.check_expr(g.step, defined)
            if g.width is not None:
                self.check_expr(g.width, defined)
            inner = set(defined) | set(g.vars)
            self.check_stmts(g.body, inner)
            self.check_expr(g.expr, inner)
