"""Lowering of (optimised) SaC expressions and statements to kernel IR.

Operates on the restricted form the optimisation pipeline produces for
CUDA-eligible WITH-loop generators:

* generator index variables are either destructured scalars or appear as
  component selections ``iv[[k]]`` — both become :class:`ThreadIdx`;
* array reads are ``arr[[e0, …, en]]`` selections with scalarised indices;
* locals are scalar assignments; builtins are ``min``/``max``/``abs``.

Anything outside the form raises :class:`LoweringError`, which the driver
catches to keep that WITH-loop on the host (the paper's eligibility rule).
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.ir import expr as ir
from repro.ir import stmt as irs
from repro.sac import ast

__all__ = ["LoweringError", "LoweringContext", "lower_expr", "lower_stmts"]


class LoweringError(BackendError):
    """The construct cannot be expressed as per-work-item kernel code."""


class LoweringContext:
    """Name environment during lowering of one generator.

    Parameters
    ----------
    index_vars:
        Destructured generator variable names, in dimension order
        (``("i", "j")`` maps ``i``/``j`` to ``ThreadIdx(0)``/``ThreadIdx(1)``).
    vector_var:
        Non-destructured generator variable name (``iv``); component
        selections ``iv[[k]]`` lower to ``ThreadIdx(k)``.
    arrays:
        Names that refer to device arrays (reads become :class:`ir.Read`).
    """

    def __init__(
        self,
        index_vars: tuple[str, ...] = (),
        vector_var: str | None = None,
        arrays: frozenset[str] = frozenset(),
    ):
        self.index_vars = index_vars
        self.vector_var = vector_var
        self.arrays = set(arrays)
        self.locals: set[str] = set()


def lower_expr(e: ast.Expr, ctx: LoweringContext) -> ir.Expr:
    if isinstance(e, ast.IntLit):
        return ir.Const(e.value)
    if isinstance(e, ast.FloatLit):
        return ir.Const(e.value)
    if isinstance(e, ast.BoolLit):
        # booleans only appear in Select conditions; encode as 0/1
        return ir.Const(1 if e.value else 0)
    if isinstance(e, ast.Var):
        if e.name in ctx.index_vars:
            return ir.ThreadIdx(ctx.index_vars.index(e.name))
        if e.name in ctx.locals:
            return ir.LocalRef(e.name)
        if e.name in ctx.arrays:
            raise LoweringError(
                f"whole-array value {e.name!r} used as a scalar"
            )
        raise LoweringError(f"unbound name {e.name!r} in kernel expression")
    if isinstance(e, ast.IndexExpr):
        return _lower_selection(e, ctx)
    if isinstance(e, ast.BinExpr):
        if e.op == "++":
            raise LoweringError("vector concatenation survived scalarisation")
        lhs = lower_expr(e.lhs, ctx)
        rhs = lower_expr(e.rhs, ctx)
        return ir.BinOp(e.op, lhs, rhs)
    if isinstance(e, ast.UnExpr):
        if e.op == "-":
            return ir.UnOp("-", lower_expr(e.operand, ctx))
        if e.op == "!":
            return ir.UnOp("!", lower_expr(e.operand, ctx))
        raise LoweringError(f"unary operator {e.op!r} not lowerable")
    if isinstance(e, ast.Call):
        if e.name in ("min", "max") and len(e.args) == 2:
            return ir.BinOp(
                e.name, lower_expr(e.args[0], ctx), lower_expr(e.args[1], ctx)
            )
        if e.name == "abs" and len(e.args) == 1:
            return ir.UnOp("abs", lower_expr(e.args[0], ctx))
        raise LoweringError(f"call to {e.name!r} inside a kernel body")
    if isinstance(e, ast.WithLoop):
        raise LoweringError("nested WITH-loop survived folding")
    if isinstance(e, ast.ArrayLit):
        raise LoweringError("vector value in scalar position")
    raise LoweringError(f"cannot lower {type(e).__name__}")


def _lower_selection(e: ast.IndexExpr, ctx: LoweringContext) -> ir.Expr:
    # iv[[k]] or iv[k] — generator index component
    if isinstance(e.array, ast.Var) and e.array.name == ctx.vector_var:
        idx = e.index
        if isinstance(idx, ast.ArrayLit) and len(idx.elements) == 1:
            idx = idx.elements[0]
        if isinstance(idx, ast.IntLit):
            return ir.ThreadIdx(idx.value)
    if isinstance(e.array, ast.Var) and e.array.name in ctx.arrays:
        idx = e.index
        if isinstance(idx, ast.ArrayLit):
            comps = tuple(lower_expr(x, ctx) for x in idx.elements)
        else:
            # a scalar index expression selects along the first (only) axis
            comps = (lower_expr(idx, ctx),)
        return ir.Read(e.array.name, comps)
    raise LoweringError(
        f"unsupported selection target {type(e.array).__name__}"
    )


def lower_stmts(stmts, ctx: LoweringContext) -> tuple[irs.Stmt, ...]:
    out: list[irs.Stmt] = []
    for s in stmts:
        if isinstance(s, ast.Assign):
            if isinstance(s.value, ast.ArrayLit):
                raise LoweringError(
                    f"vector local {s.name!r} survived scalarisation"
                )
            out.append(irs.Assign(s.name, lower_expr(s.value, ctx)))
            ctx.locals.add(s.name)
        elif isinstance(s, ast.IfElse):
            out.extend(_lower_ifelse(s, ctx))
        else:
            raise LoweringError(
                f"statement {type(s).__name__} inside a kernel body"
            )
    return tuple(out)


def _lower_ifelse(s: ast.IfElse, ctx: LoweringContext) -> list[irs.Stmt]:
    """Predicate a branch into ``Select`` assignments (GPU if-conversion).

    Supported shape: both branches are plain scalar assignments to the same
    set of variables (possibly reading prior locals); each variable becomes
    ``var = cond ? then_value : else_value``.
    """
    cond = lower_expr(s.cond, ctx)

    def branch_bindings(stmts) -> dict[str, ir.Expr]:
        bindings: dict[str, ir.Expr] = {}
        for st in stmts:
            if not isinstance(st, ast.Assign):
                raise LoweringError(
                    "only assignments are supported inside kernel conditionals"
                )
            if st.name in bindings:
                raise LoweringError(
                    f"conditional reassigns {st.name!r}; cannot if-convert"
                )
            bindings[st.name] = lower_expr(st.value, ctx)
        return bindings

    then_b = branch_bindings(s.then)
    else_b = branch_bindings(s.orelse)
    names = list(then_b)
    if set(names) != set(else_b) and s.orelse:
        raise LoweringError(
            "conditional branches assign different variables; cannot if-convert"
        )
    out: list[irs.Stmt] = []
    for name in names:
        if name in else_b:
            alt = else_b[name]
        elif name in ctx.locals:
            alt = ir.LocalRef(name)  # keep the previous value
        else:
            raise LoweringError(
                f"conditional assigns {name!r} in one branch only and it has "
                f"no prior value"
            )
        out.append(irs.Assign(name, ir.Select(cond, then_b[name], alt)))
        ctx.locals.add(name)
    return out
