"""The SaC CUDA/sequential backend driver.

Compiles one (optimised) SaC function into a
:class:`~repro.ir.program.DeviceProgram`, performing the paper's three
backend steps (Section VII):

1. **Eligibility** — each WITH-loop is lowered to kernels when possible;
   everything else (for-loop nests like the generic output tiler, dynamic
   WITH-loops, conditionals) becomes a host-compute step running under the
   reference interpreter.
2. **Transfer insertion** — ``host2device`` is emitted for every array a
   kernel reads that lives on the host, ``device2host`` whenever a host
   step (or the function result) needs an array that lives on the device.
   This reproduces the generic variant's penalty: the host output tiler
   forces the intermediate back across PCIe (Section VIII-A).
3. **Kernel outlining** — one kernel per generator (with optional
   wrap-region splitting, which yields the paper's 5/7 kernel counts).

``target="seq"`` compiles the same program for the host: no transfers,
buffers share the host namespace, and the executor charges sequential
cost — the SAC-Seq bars of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import BackendError
from repro.ir.kernel import ArrayParam, Kernel
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    LaunchKernel,
    Op,
)
from repro.sac import ast
from repro.sac.backend.lower import LoweredLoop, lower_withloop
from repro.sac.backend.lowerexpr import LoweringError
from repro.sac.backend.split import split_loop
from repro.sac.interp import Interpreter
from repro.sac.opt import OptimisationFlags, optimize_program
from repro.sac.backend.estimates import estimate_ops, static_value_shape
from repro.sac.opt.rewrite import used_names_stmts

__all__ = ["CompileOptions", "CompiledFunction", "compile_function"]

#: SaC base types -> simulated buffer dtypes
_BUFFER_DTYPES = {"int": "int32", "float": "float32", "double": "float64"}


def _static_value_dtype(e: ast.Expr, dtypes: dict[str, str]) -> str | None:
    """Buffer dtype of host-computed values, when determinable."""
    if isinstance(e, ast.Call) and e.name == "genarray":
        if len(e.args) == 2 and isinstance(e.args[1], ast.FloatLit):
            return "float64"
        return "int32"
    if isinstance(e, ast.Var):
        return dtypes.get(e.name)
    if isinstance(e, ast.ArrayLit):
        def leaf(x):
            while isinstance(x, ast.ArrayLit) and x.elements:
                x = x.elements[0]
            return x
        return "float64" if isinstance(leaf(e), ast.FloatLit) else "int32"
    return None


@dataclass(frozen=True)
class CompileOptions:
    """Backend configuration."""

    target: str = "cuda"  # "cuda" | "seq"
    opt_flags: OptimisationFlags = OptimisationFlags()
    wrap_split: bool = True
    optimize: bool = True
    #: run the static semantic and rank checks before compiling
    check: bool = True
    #: run the repro.analysis suite over the source AST and the emitted
    #: program; findings land on CompiledFunction.diagnostics
    lint: bool = False
    #: transfer placement: "boundary" keeps arrays device-resident between
    #: WITH-loops; "per_kernel" brackets every WITH-loop with a download
    #: and re-uploads consumer inputs — the literal placement the paper
    #: measures as ~half of total runtime, and the input the
    #: repro.opt transfer-elimination pass is built to clean up
    transfers: str = "boundary"
    #: device-program optimisation (a repro.opt.OptOptions); applied to
    #: cuda programs after emission, results land on
    #: CompiledFunction.opt_report
    opt: object | None = None

    def __post_init__(self) -> None:
        if self.target not in ("cuda", "seq"):
            raise BackendError(f"unknown target {self.target!r}")
        if self.transfers not in ("boundary", "per_kernel"):
            raise BackendError(f"unknown transfer placement {self.transfers!r}")


@dataclass(frozen=True)
class CompiledFunction:
    """Compilation result: the program plus compiler metadata."""

    program: DeviceProgram
    entry: str
    optimized: ast.Program = field(compare=False)
    kernel_count: int = 0
    host_step_count: int = 0
    rejected: tuple[tuple[str, str], ...] = ()  # (with-loop result, reason)
    #: analyzer findings (populated when CompileOptions.lint is set)
    diagnostics: tuple = field(default=(), compare=False)
    #: repro.opt.OptReport (populated when CompileOptions.opt is set)
    opt_report: object = field(default=None, compare=False)


def compile_function(
    program: ast.Program,
    entry: str,
    options: CompileOptions = CompileOptions(),
) -> CompiledFunction:
    """Compile ``entry`` of ``program`` to a device (or host) program."""
    if options.check:
        from repro.sac.semantics import check_program
        from repro.sac.typecheck import typecheck_program

        check_program(program)
        typecheck_program(program)
    source_program = program
    if options.optimize:
        program = optimize_program(program, entry=entry, flags=options.opt_flags)
    fun = program.function(entry)
    builder = _Builder(program, fun, options)
    compiled = builder.build()
    if options.opt is not None and options.target == "cuda":
        from repro.opt import optimize_program as optimize_device_program

        opt_program, opt_report = optimize_device_program(
            compiled.program, options.opt
        )
        compiled = replace(compiled, program=opt_program, opt_report=opt_report)
    if options.lint:
        from repro.analysis import analyze_program, analyze_sac_program

        diagnostics = tuple(
            analyze_sac_program(source_program) + analyze_program(compiled.program)
        )
        compiled = replace(compiled, diagnostics=diagnostics)
    return compiled


class _Builder:
    def __init__(self, program: ast.Program, fun: ast.FunDef, options: CompileOptions):
        self.program = program
        self.fun = fun
        self.options = options
        self.interp = Interpreter(program)
        self.ops: list[Op] = []
        self.shapes: dict[str, tuple[int, ...]] = {}
        self.dtypes: dict[str, str] = {}
        self.on_device: set[str] = set()
        self.host_defined: set[str] = set(p.name for p in fun.params)
        self.rejected: list[tuple[str, str]] = []
        self.kernel_count = 0
        self.host_step_count = 0
        self.kernel_names: set[str] = set()
        self._buffer_aliases: dict[str, str] = {}
        self.allocated: list[str] = []
        self.gpu = options.target == "cuda"

    # -- naming ------------------------------------------------------------

    def buffer(self, var: str) -> str:
        return f"d_{var}" if self.gpu else var

    # -- top level -----------------------------------------------------------

    def build(self) -> CompiledFunction:
        for p in self.fun.params:
            t = p.type
            if t.is_scalar:
                raise BackendError(
                    f"{self.fun.name}: scalar entry parameters are not supported"
                )
            if not t.is_static:
                raise BackendError(
                    f"{self.fun.name}: entry parameter {p.name!r} needs a static "
                    f"shape (got {t})"
                )
            self.shapes[p.name] = tuple(int(d) for d in t.dims)  # type: ignore[arg-type]
            self.dtypes[p.name] = _BUFFER_DTYPES.get(t.base)
            if self.dtypes[p.name] is None:
                raise BackendError(
                    f"{self.fun.name}: unsupported entry array type {t.base!r}"
                )

        result_var: str | None = None
        for s in self.fun.body:
            if isinstance(s, ast.Return):
                if not isinstance(s.value, ast.Var):
                    raise BackendError(
                        f"{self.fun.name}: return value must be a variable after "
                        f"optimisation"
                    )
                result_var = s.value.name
                break
            self.visit(s)
        if result_var is None:
            raise BackendError(f"{self.fun.name}: no return statement")

        if self.gpu and result_var in self.on_device and result_var not in self.host_defined:
            self.ops.append(DeviceToHost(self.resolve_buffer(result_var), result_var))
        elif not self.gpu:
            # unified namespace: materialise the result under its own name
            # when it is an alias of another buffer
            resolved = self.resolve_buffer(result_var)
            if resolved != result_var:
                from repro.ir.program import HostCompute as _HC

                def bind(env, _r=result_var, _s=resolved):
                    env[_r] = env[_s]

                self.ops.append(
                    _HC(name="host:bind_result", fn=bind, reads=(resolved,),
                        writes=(result_var,), work=HostWork(items=0))
                )
        elif result_var not in self.host_defined and result_var not in self.on_device:
            raise BackendError(f"{self.fun.name}: result {result_var!r} never produced")

        # release every device allocation (cudaFree at program end); in the
        # unified sequential namespace the result array itself must survive
        keep = set()
        if not self.gpu:
            keep.add(self.resolve_buffer(result_var))
            keep.add(result_var)
        for buf in self.allocated:
            if buf not in keep:
                self.ops.append(FreeDevice(buf))

        prog = DeviceProgram(
            name=f"{self.fun.name}_{self.options.target}",
            ops=tuple(self.ops),
            host_inputs=tuple(p.name for p in self.fun.params),
            host_outputs=(result_var,),
        )
        if self.gpu:
            from repro.sac.backend.cudagen import cuda_sources

            prog = DeviceProgram(
                name=prog.name,
                ops=prog.ops,
                host_inputs=prog.host_inputs,
                host_outputs=prog.host_outputs,
                source_files=tuple(cuda_sources(prog).items()),
            )
        return CompiledFunction(
            program=prog,
            entry=self.fun.name,
            optimized=self.program,
            kernel_count=self.kernel_count,
            host_step_count=self.host_step_count,
            rejected=tuple(self.rejected),
        )

    # -- statements ----------------------------------------------------------

    def visit(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Assign):
            value = s.value
            if isinstance(value, ast.WithLoop):
                self.visit_withloop(s.name, value, s)
                return
            if isinstance(value, ast.Var):
                self.visit_alias(s.name, value.name, s)
                return
            # any other host-computable expression (constants, genarray
            # calls, arithmetic on host values)
            self.host_step((s,), label=f"host:{s.name}")
            self.record_host_shape(s.name, value)
            return
        if isinstance(s, ast.ForLoop):
            self.visit_host_fornest(s)
            return
        # remaining control flow and indexed updates run on the host
        self.host_step((s,), label=f"host:{type(s).__name__.lower()}")

    def visit_host_fornest(self, s: ast.ForLoop) -> None:
        """A for-loop nest: vectorise when static, else interpret."""
        from repro.ir.evalvec import evaluate_kernel
        from repro.sac.backend.hostloops import lower_host_fornest

        nest = lower_host_fornest(s, self.shapes, self.dtypes)
        if nest is None:
            self.host_step((s,), label="host:forloop")
            return
        touched = tuple(sorted(set(nest.reads) | set(nest.writes)))
        for name in touched:
            self.ensure_on_host(name)
        kernel = nest.kernel

        def fn(env, _k=kernel):
            arrays = {a.name: np.asarray(env[a.name]) for a in _k.arrays}
            evaluate_kernel(_k, arrays)
            for a in _k.arrays:
                if a.intent != "in":
                    env[a.name] = arrays[a.name]

        self.ops.append(
            HostCompute(
                name=f"host:nest_{'_'.join(nest.writes)}",
                fn=fn,
                reads=touched,
                writes=nest.writes,
                work=HostWork(
                    items=kernel.space.size,
                    reads_per_item=kernel.reads_per_item(),
                    writes_per_item=kernel.writes_per_item(),
                    # the naive host compilation of the nest keeps the full
                    # generic tiler index arithmetic per element
                    flops_per_item=max(nest.ops_per_item, kernel.flops_per_item()),
                ),
            )
        )
        self.host_defined.update(nest.writes)
        self.host_step_count += 1
        for name in nest.writes:
            self.on_device.discard(name)

    def visit_alias(self, target: str, source: str, s: ast.Stmt) -> None:
        if source in self.shapes:
            self.shapes[target] = self.shapes[source]
        if source in self.dtypes:
            self.dtypes[target] = self.dtypes[source]
        if source in self.on_device:
            # device-side alias: reuse the buffer under the new name by
            # copying through the host would be wasteful; emit a host step
            # only when actually needed.  We simply track the alias.
            self.on_device.add(target)
            self.alias_buffer(target, source)
        elif source in self.host_defined:
            self.host_step((s,), label=f"host:{target}")

    def alias_buffer(self, target: str, source: str) -> None:
        self._buffer_aliases[target] = self.resolve_buffer(source)

    def resolve_buffer(self, var: str) -> str:
        if var in self._buffer_aliases:
            return self._buffer_aliases[var]
        return self.buffer(var)

    # -- WITH-loops -----------------------------------------------------------

    def visit_withloop(self, target: str, wl: ast.WithLoop, stmt: ast.Stmt) -> None:
        try:
            loop = lower_withloop(wl, target, self.shapes, self.dtypes)
            if loop.kind == "modarray" and not loop.full_coverage:
                raise LoweringError(
                    f"{target}: partial modarray needs its base initialised on "
                    f"the device"
                )
            if loop.default not in (None, 0):
                raise LoweringError(
                    f"{target}: non-zero genarray default needs an init kernel"
                )
        except LoweringError as err:
            self.rejected.append((target, str(err)))
            self.host_withloop(target, wl, stmt)
            return

        if self.options.wrap_split and self.gpu:
            loop = split_loop(loop)

        self.shapes[target] = loop.result_shape
        self.dtypes[target] = loop.result_dtype
        # inputs must be resident
        for name in sorted(loop.reads()):
            if name == target:
                continue
            self.ensure_on_device(name)
        self.ops.append(
            AllocDevice(self.buffer(target), loop.result_shape, loop.result_dtype)
        )
        self.allocated.append(self.buffer(target))
        self.on_device.add(target)

        for g in loop.generators:
            kernel = self.make_kernel(target, loop, g)
            args = tuple(
                (a.name, self.resolve_buffer(a.name)) for a in kernel.arrays
            )
            self.ops.append(LaunchKernel(kernel, args))
            self.kernel_count += 1

        if self.gpu and self.options.transfers == "per_kernel":
            # paper-literal placement: every WITH-loop result returns to
            # the host immediately and consumers re-upload their inputs
            self.ops.append(DeviceToHost(self.buffer(target), target))
            self.host_defined.add(target)
            self.on_device.clear()

    def make_kernel(self, target, loop: LoweredLoop, g) -> Kernel:
        reads = sorted(g.reads() - {target})
        arrays = [
            ArrayParam(name, self.shapes[name], self.dtypes.get(name, "int32"),
                       intent="in")
            for name in reads
        ]
        arrays.append(
            ArrayParam(target, loop.result_shape, loop.result_dtype, intent="out")
        )
        base = f"{self.fun.name}_{target}_k{self.kernel_count}"
        name = base
        n = 0
        while name in self.kernel_names:
            n += 1
            name = f"{base}_{n}"
        self.kernel_names.add(name)
        return Kernel(
            name=name,
            space=g.space,
            arrays=tuple(arrays),
            body=g.body,
            provenance=g.provenance,
        )

    def host_withloop(self, target: str, wl: ast.WithLoop, stmt: ast.Stmt) -> None:
        self.host_step((stmt,), label=f"host:{target}")
        self.record_host_shape(target, wl)

    # -- host steps & transfers ----------------------------------------------

    def ensure_on_device(self, name: str) -> None:
        if not self.gpu:
            # unified namespace: nothing to move, but the value must exist
            return
        if name in self.on_device:
            return
        if name not in self.shapes:
            raise BackendError(f"array {name!r} has unknown shape at transfer time")
        if name not in self.host_defined:
            raise BackendError(f"array {name!r} is not available on the host")
        buf = self.buffer(name)
        if buf not in self.allocated:  # per_kernel mode re-uploads into live buffers
            self.ops.append(
                AllocDevice(buf, self.shapes[name], self.dtypes.get(name, "int32"))
            )
            self.allocated.append(buf)
        self.ops.append(HostToDevice(name, buf))
        self.on_device.add(name)

    def ensure_on_host(self, name: str) -> None:
        if name in self.host_defined:
            return
        if self.gpu and name in self.on_device:
            self.ops.append(DeviceToHost(self.resolve_buffer(name), name))
            self.host_defined.add(name)
            return
        if not self.gpu:
            self.host_defined.add(name)  # unified namespace
            return
        raise BackendError(f"array {name!r} is not available anywhere")

    def host_step(self, stmts: tuple[ast.Stmt, ...], label: str) -> None:
        reads = used_names_stmts(stmts) & (self.host_defined | self.on_device | set(self.shapes))
        for name in sorted(reads):
            self.ensure_on_host(name)
        from repro.sac.opt.rewrite import assigned_names_stmts

        writes = assigned_names_stmts(stmts)
        interp = self.interp

        def fn(env, _stmts=stmts, _interp=interp):
            _interp.execute_statements(list(_stmts), env)

        self.ops.append(
            HostCompute(
                name=label,
                fn=fn,
                reads=tuple(sorted(reads)),
                writes=tuple(sorted(writes)),
                work=HostWork(items=estimate_ops(stmts), reads_per_item=0,
                              writes_per_item=0, flops_per_item=1),
            )
        )
        self.host_defined.update(writes)
        self.host_step_count += 1
        # device copies of rewritten arrays are stale
        for name in writes:
            self.on_device.discard(name)

    def record_host_shape(self, name: str, value: ast.Expr) -> None:
        shape = static_value_shape(value, self.shapes)
        if shape is not None:
            self.shapes[name] = shape
        dtype = _static_value_dtype(value, self.dtypes)
        if dtype is not None:
            self.dtypes[name] = dtype
