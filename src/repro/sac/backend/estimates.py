"""Static work estimates for host-side constructs.

Used by the backend to attach :class:`~repro.ir.program.HostWork` summaries
to host-compute steps.  Estimates count *unoptimised* scalar operations —
the paper's compiler does not partially evaluate non-WITH-loop constructs,
so the generic output tiler pays the full per-element tiler index
arithmetic on the host (the effect behind Figure 9's generic/non-generic
GPU gap).
"""

from __future__ import annotations

import numpy as np

from repro.sac import ast
from repro.sac.opt.withinfo import const_int_vector

__all__ = ["estimate_ops", "expr_ops", "loop_trips", "static_value_shape"]


def static_value_shape(e: ast.Expr, shapes) -> tuple[int, ...] | None:
    """Shape of host-computed values we can determine statically."""
    if isinstance(e, ast.Call) and e.name == "genarray" and e.args:
        shp = const_int_vector(e.args[0])
        if shp is not None:
            return shp
    if isinstance(e, ast.ArrayLit):
        # literal (possibly nested) arrays
        def probe(x) -> tuple[int, ...] | None:
            if isinstance(x, ast.ArrayLit):
                if not x.elements:
                    return (0,)
                inner = probe(x.elements[0])
                return None if inner is None else (len(x.elements),) + inner
            return ()

        return probe(e)
    if isinstance(e, ast.Var):
        return shapes.get(e.name)
    if isinstance(e, ast.WithLoop):
        from repro.sac.opt.withinfo import static_frame_shape

        base_shape = None
        if isinstance(e.operation, ast.ModArray) and isinstance(
            e.operation.array, ast.Var
        ):
            base_shape = shapes.get(e.operation.array.name)
        return static_frame_shape(e, base_shape)
    return None


def expr_ops(e: ast.Expr) -> int:
    """Scalar-operation estimate of one expression evaluation.

    Counts operations (arithmetic, selections, calls, vector construction);
    literals and variable references are free.
    """
    count = 0
    if isinstance(e, (ast.BinExpr, ast.UnExpr, ast.IndexExpr, ast.Call)):
        count = 1
    for name in ("elements", "args"):
        for c in getattr(e, name, ()) or ():
            count += expr_ops(c)
    for name in ("array", "index", "lhs", "rhs", "operand"):
        c = getattr(e, name, None)
        if isinstance(c, ast.Expr):
            count += expr_ops(c)
    if isinstance(e, ast.WithLoop):
        inner = 0
        for g in e.generators:
            inner += sum(expr_ops(s.value) for s in g.body if isinstance(s, ast.Assign))
            inner += expr_ops(g.expr)
        points = 1
        from repro.sac.opt.withinfo import static_frame_shape

        shape = static_frame_shape(e)
        if shape is not None:
            points = int(np.prod(shape))
        count += inner * points
    return count


def loop_trips(s: ast.ForLoop) -> int | None:
    """Trip count of a canonical counted loop (init 0, cond < N, step +1)."""
    if not isinstance(s.init.value, ast.IntLit):
        return None
    start = s.init.value.value
    cond = s.cond
    if not (
        isinstance(cond, ast.BinExpr)
        and cond.op in ("<", "<=")
        and isinstance(cond.lhs, ast.Var)
        and cond.lhs.name == s.init.name
        and isinstance(cond.rhs, ast.IntLit)
    ):
        return None
    stop = cond.rhs.value + (1 if cond.op == "<=" else 0)
    upd = s.update
    if not (
        isinstance(upd, ast.Assign)
        and isinstance(upd.value, ast.BinExpr)
        and upd.value.op == "+"
        and isinstance(upd.value.rhs, ast.IntLit)
    ):
        return None
    step = upd.value.rhs.value
    if step <= 0:
        return None
    return max(0, -(-(stop - start) // step))


def estimate_ops(stmts) -> int:
    """Total scalar operations of a host statement list (static bounds)."""
    total = 0
    for s in stmts:
        if isinstance(s, ast.Assign):
            total += expr_ops(s.value)
        elif isinstance(s, ast.IndexedAssign):
            total += expr_ops(s.index) + expr_ops(s.value) + 1
        elif isinstance(s, ast.Block):
            total += estimate_ops(s.stmts)
        elif isinstance(s, ast.ForLoop):
            trips = loop_trips(s)
            body = estimate_ops(s.body) + expr_ops(s.cond) + 1
            total += body * (trips if trips is not None else 1)
        elif isinstance(s, ast.IfElse):
            total += expr_ops(s.cond) + max(
                estimate_ops(s.then), estimate_ops(s.orelse)
            )
        elif isinstance(s, ast.Return) and s.value is not None:
            total += expr_ops(s.value)
    return total
