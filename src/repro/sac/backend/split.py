"""Wrap-region splitting of lowered generators.

The tiler's modular addressing (``e = (o + F·i) mod shape``) survives WLF
as ``% extent`` operations inside the fused kernels' read indices.  For the
bulk of the index space the modulo is the identity; only the patterns that
overrun the frame edge actually wrap (paper Section IV's toroidal
semantics).

This pass analyses each lowered generator:

* modulos that never wrap anywhere in the generator's space are removed —
  restoring the affine, coalescing-friendly address form;
* when wrapping is confined to an axis-aligned boundary slab, the
  generator is **split** into a large affine bulk kernel and a small edge
  kernel that keeps the modulo.

The split is what produces the paper's kernel counts: the horizontal
filter's 3 folded generators become 3 bulk + 2 edge = 5 kernels, the
vertical's 4 become 4 + 3 = 7 (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.ir import expr as ir
from repro.ir import stmt as irs
from repro.ir.kernel import IndexSpace
from repro.sac.backend.lower import LoweredGenerator, LoweredLoop

__all__ = ["split_wrap_regions", "split_loop"]

_MAX_RECURSION = 8


class _Unanalysable(Exception):
    """Expression depends on memory or unknown locals."""


def _eval_index_expr(e: ir.Expr, idx_values, env) -> np.ndarray:
    """Evaluate an index expression over the whole space (no memory)."""
    if isinstance(e, ir.Const):
        return np.asarray(e.value)
    if isinstance(e, ir.ThreadIdx):
        return idx_values[e.dim]
    if isinstance(e, ir.LocalRef):
        if e.name not in env:
            raise _Unanalysable(e.name)
        return env[e.name]
    if isinstance(e, ir.BinOp):
        lhs = _eval_index_expr(e.lhs, idx_values, env)
        rhs = _eval_index_expr(e.rhs, idx_values, env)
        if e.op == "+":
            return lhs + rhs
        if e.op == "-":
            return lhs - rhs
        if e.op == "*":
            return lhs * rhs
        if e.op == "/":
            return ir.c_div(lhs, rhs)
        if e.op == "%":
            return ir.c_mod(lhs, rhs)
        if e.op == "min":
            return np.minimum(lhs, rhs)
        if e.op == "max":
            return np.maximum(lhs, rhs)
        raise _Unanalysable(e.op)
    if isinstance(e, ir.UnOp) and e.op == "-":
        return -_eval_index_expr(e.operand, idx_values, env)
    if isinstance(e, ir.UnOp) and e.op == "abs":
        return np.abs(_eval_index_expr(e.operand, idx_values, env))
    raise _Unanalysable(type(e).__name__)


def _index_local_env(body, idx_values) -> dict[str, np.ndarray]:
    """Evaluate index-only local assignments (poisoning memory-dependent ones)."""
    env: dict[str, np.ndarray] = {}
    for s in body:
        if isinstance(s, irs.Assign):
            try:
                env[s.name] = _eval_index_expr(s.value, idx_values, env)
            except _Unanalysable:
                env.pop(s.name, None)  # poisoned
    return env


def _collect_mods(body) -> list[ir.BinOp]:
    """All ``E % const`` nodes used inside Read index components."""
    mods: list[ir.BinOp] = []
    seen: set[int] = set()

    def scan(e: ir.Expr) -> None:
        for node in ir.walk(e):
            if isinstance(node, ir.Read):
                for comp in node.index:
                    for sub in ir.walk(comp):
                        if (
                            isinstance(sub, ir.BinOp)
                            and sub.op == "%"
                            and isinstance(sub.rhs, ir.Const)
                            and id(sub) not in seen
                        ):
                            seen.add(id(sub))
                            mods.append(sub)

    for s in irs.walk_stmts(body):
        if isinstance(s, irs.Assign):
            scan(s.value)
        elif isinstance(s, irs.Store):
            for comp in s.index:
                scan(comp)
            scan(s.value)
    return mods


def _replace_exprs(body, mapping: dict[ir.Expr, ir.Expr]):
    """Structural replacement of expressions in a statement list."""

    def rewrite(e: ir.Expr) -> ir.Expr:
        if e in mapping:
            return rewrite(mapping[e])
        if isinstance(e, ir.Read):
            return ir.Read(e.array, tuple(rewrite(x) for x in e.index))
        if isinstance(e, ir.BinOp):
            return ir.BinOp(e.op, rewrite(e.lhs), rewrite(e.rhs))
        if isinstance(e, ir.UnOp):
            return ir.UnOp(e.op, rewrite(e.operand))
        if isinstance(e, ir.Select):
            return ir.Select(rewrite(e.cond), rewrite(e.if_true), rewrite(e.if_false))
        return e

    def rewrite_stmt(s: irs.Stmt) -> irs.Stmt:
        if isinstance(s, irs.Assign):
            return irs.Assign(s.name, rewrite(s.value))
        if isinstance(s, irs.For):
            return irs.For(s.var, s.start, s.stop, tuple(rewrite_stmt(x) for x in s.body))
        if isinstance(s, irs.Store):
            return irs.Store(
                s.array, tuple(rewrite(x) for x in s.index), rewrite(s.value)
            )
        return s

    return tuple(rewrite_stmt(s) for s in body)


def split_wrap_regions(
    gen: LoweredGenerator, depth: int = 0
) -> list[LoweredGenerator]:
    """Split one generator into affine bulk + wrapping edge generators."""
    if gen.space.is_empty():
        return []
    mods = _collect_mods(gen.body)
    if not mods or depth >= _MAX_RECURSION:
        return [gen]

    idx_values = gen.space.index_values()
    env = _index_local_env(gen.body, idx_values)

    clean: dict[ir.Expr, ir.Expr] = {}
    wrap_mask = np.zeros(gen.space.extent, dtype=bool)
    analysable = True
    for mod in mods:
        c = int(mod.rhs.value)
        try:
            val = _eval_index_expr(mod.lhs, idx_values, env)
        except _Unanalysable:
            analysable = False
            continue
        val = np.broadcast_to(np.asarray(val), gen.space.extent)
        wraps = (val < 0) | (val >= c)
        if not wraps.any():
            clean[mod] = mod.lhs
        else:
            wrap_mask |= wraps

    if clean:
        gen = LoweredGenerator(
            space=gen.space,
            body=_replace_exprs(gen.body, clean),
            provenance=gen.provenance,
        )
    if not wrap_mask.any() or not analysable:
        return [gen]

    split = _axis_aligned_split(wrap_mask)
    if split is None:
        return [gen]  # wraps, but not separable: keep the modulo everywhere
    axis, t = split
    lo, hi, st = list(gen.space.lower), list(gen.space.upper), gen.space.step
    cut = lo[axis] + t * st[axis]
    bulk_space = IndexSpace(
        tuple(lo), tuple(cut if d == axis else hi[d] for d in range(len(hi))), st
    )
    edge_space = IndexSpace(
        tuple(cut if d == axis else lo[d] for d in range(len(lo))), tuple(hi), st
    )
    out: list[LoweredGenerator] = []
    if not bulk_space.is_empty():
        out.extend(
            split_wrap_regions(
                LoweredGenerator(bulk_space, gen.body, gen.provenance), depth + 1
            )
        )
    if not edge_space.is_empty():
        out.append(
            LoweredGenerator(
                edge_space, gen.body, gen.provenance + " [wrap edge]"
            )
        )
    return out


def _axis_aligned_split(mask: np.ndarray) -> tuple[int, int] | None:
    """Find (axis, first_true_index) when the mask is a contiguous suffix
    slab along exactly one axis."""
    for axis in range(mask.ndim):
        other = tuple(d for d in range(mask.ndim) if d != axis)
        line_any = mask.any(axis=other) if other else mask
        line_all = mask.all(axis=other) if other else mask
        if not np.array_equal(line_any, line_all):
            continue
        idx = np.flatnonzero(line_any)
        if idx.size == 0:
            continue
        t = int(idx[0])
        if np.array_equal(idx, np.arange(t, mask.shape[axis])):
            if t == 0:
                return None  # whole space wraps; nothing to split
            return axis, t
    return None


def split_loop(loop: LoweredLoop) -> LoweredLoop:
    """Apply wrap splitting to every generator of a lowered WITH-loop."""
    gens: list[LoweredGenerator] = []
    for g in loop.generators:
        gens.extend(split_wrap_regions(g))
    from dataclasses import replace

    return replace(loop, generators=tuple(gens))
