"""Lowering of CUDA-eligible WITH-loops to launchable generator kernels.

One WITH-loop lowers to one :class:`LoweredLoop` holding one
:class:`LoweredGenerator` per source generator (after width expansion) —
the unit the CUDA backend outlines as a kernel, following the paper's
"one kernel function per generator" rule (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.ir import expr as ir
from repro.ir import stmt as irs
from repro.ir.kernel import IndexSpace
from repro.sac import ast
from repro.sac.backend.lowerexpr import LoweringContext, LoweringError, lower_expr, lower_stmts
from repro.sac.opt.withinfo import (
    static_frame_shape,
    static_generator_range,
)

__all__ = ["LoweredGenerator", "LoweredLoop", "lower_withloop"]


@dataclass(frozen=True)
class LoweredGenerator:
    """One generator's kernel-ready form."""

    space: IndexSpace
    body: tuple[irs.Stmt, ...]  # includes the Store statements
    provenance: str = ""

    def reads(self) -> set[str]:
        out: set[str] = set()
        for e in irs.expressions_of(self.body):
            if isinstance(e, ir.Read):
                out.add(e.array)
        return out

    def writes(self) -> set[str]:
        return {
            s.array for s in irs.walk_stmts(self.body) if isinstance(s, irs.Store)
        }


@dataclass(frozen=True)
class LoweredLoop:
    """A whole WITH-loop, lowered."""

    result: str
    result_shape: tuple[int, ...]
    kind: str  # "genarray" | "modarray"
    generators: tuple[LoweredGenerator, ...]
    base: str | None = None  # modarray source variable
    default: int | float | None = None  # genarray default (None -> 0)
    full_coverage: bool = False
    result_dtype: str = "int32"

    def reads(self) -> set[str]:
        out: set[str] = set()
        for g in self.generators:
            out |= g.reads()
        return out


def _literal_array_shape(e: ast.Expr) -> tuple[int, ...] | None:
    """Shape of a (nested) array literal."""
    if isinstance(e, ast.ArrayLit):
        if not e.elements:
            return (0,)
        inner = _literal_array_shape(e.elements[0])
        return None if inner is None else (len(e.elements),) + inner
    if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
        return ()
    return None


def _const_scalar(e: ast.Expr | None):
    if e is None:
        return None
    if isinstance(e, ast.IntLit):
        return e.value
    if isinstance(e, ast.FloatLit):
        return e.value
    if isinstance(e, ast.UnExpr) and e.op == "-" and isinstance(e.operand, ast.IntLit):
        return -e.operand.value
    return None


#: numeric promotion order for result buffers
_PROMOTION = ("int32", "float32", "float64")


def promote_dtypes(dtypes) -> str:
    """Widest dtype of the given set (int32 < float32 < float64)."""
    best = 0
    for d in dtypes:
        if d not in _PROMOTION:
            raise LoweringError(f"unsupported buffer dtype {d!r}")
        best = max(best, _PROMOTION.index(d))
    return _PROMOTION[best]


def lower_withloop(
    wl: ast.WithLoop,
    result: str,
    shapes: dict[str, tuple[int, ...]],
    dtypes: dict[str, str] | None = None,
) -> LoweredLoop:
    """Lower a WITH-loop or raise :class:`LoweringError` (stay on host).

    ``dtypes`` maps known array names to buffer dtypes (default int32);
    the result buffer takes the widest dtype among the arrays the body
    reads, the modarray base, and the genarray default literal.
    """
    dtypes = dtypes or {}
    op = wl.operation
    if isinstance(op, ast.GenArray):
        frame_shape = static_frame_shape(wl)
        if frame_shape is None:
            raise LoweringError(f"{result}: genarray shape is not static")
        kind = "genarray"
        base = None
        default = _const_scalar(op.default) if op.default is not None else 0
        if default is None:
            raise LoweringError(f"{result}: genarray default is not a constant")
    elif isinstance(op, ast.ModArray):
        if isinstance(op.array, ast.Var):
            base = op.array.name
            frame_shape = shapes.get(base)
        else:
            # e.g. a constant-folded literal canvas: usable only when the
            # generators cover every cell (checked below)
            base = None
            frame_shape = _literal_array_shape(op.array)
        if frame_shape is None:
            raise LoweringError(f"{result}: modarray base has unknown shape")
        kind = "modarray"
        default = None
    else:
        raise LoweringError(f"{result}: fold WITH-loops execute on the host")

    cell_shape: tuple[int, ...] | None = None
    lowered: list[LoweredGenerator] = []
    covered_points = 0
    for gi, gen in enumerate(wl.generators):
        rng = static_generator_range(gen, frame_shape)
        if rng is None:
            raise LoweringError(f"{result}: generator {gi} has dynamic bounds")
        if rng.rank != len(frame_shape):
            raise LoweringError(
                f"{result}: generator {gi} rank {rng.rank} != frame rank "
                f"{len(frame_shape)}"
            )
        covered_points += rng.points()

        ctx = LoweringContext(
            index_vars=gen.vars if gen.destructured else (),
            vector_var=None if gen.destructured else gen.var,
            arrays=frozenset(shapes),
        )
        body = list(lower_stmts(gen.body, ctx))

        # the cell: scalar expression or a structural vector (ArrayLit)
        idx = tuple(ir.ThreadIdx(d) for d in range(len(frame_shape)))
        if isinstance(gen.expr, ast.ArrayLit):
            this_cell = (len(gen.expr.elements),)
            for k, elem in enumerate(gen.expr.elements):
                value = lower_expr(elem, ctx)
                body.append(irs.Store(result, idx + (ir.Const(k),), value))
        else:
            this_cell = ()
            value = lower_expr(gen.expr, ctx)
            body.append(irs.Store(result, idx, value))
        if cell_shape is None:
            cell_shape = this_cell
        elif cell_shape != this_cell:
            raise LoweringError(
                f"{result}: generators produce different cell shapes "
                f"{cell_shape} vs {this_cell}"
            )

        # width > 1: expand into one kernel space per width offset
        for offsets in _width_offsets(rng.width):
            lower = tuple(lo + o for lo, o in zip(rng.lower, offsets))
            space = IndexSpace(lower=lower, upper=rng.upper, step=rng.step)
            if space.is_empty():
                continue
            provenance = f"{result} generator {gi}" + (
                f" width-offset {offsets}" if any(offsets) else ""
            )
            lowered.append(
                LoweredGenerator(space=space, body=tuple(body), provenance=provenance)
            )

    assert cell_shape is not None
    result_shape = tuple(frame_shape) + tuple(cell_shape)
    if kind == "modarray" and cell_shape != ():
        raise LoweringError(f"{result}: modarray with non-scalar cells")

    full = covered_points == int(np.prod(frame_shape))
    if kind == "modarray" and base is None and not full:
        raise LoweringError(
            f"{result}: partial modarray over a non-variable base"
        )
    contributing = {dtypes.get(name, "int32") for g in lowered for name in g.reads()}
    if base is not None:
        contributing.add(dtypes.get(base, "int32"))
    if isinstance(default, float):
        contributing.add("float64")
    result_dtype = promote_dtypes(contributing or {"int32"})
    return LoweredLoop(
        result=result,
        result_shape=result_shape,
        kind=kind,
        generators=tuple(lowered),
        base=base,
        default=default,
        full_coverage=full,
        result_dtype=result_dtype,
    )


def _width_offsets(width: tuple[int, ...]):
    """All offset combinations inside a width block."""
    from itertools import product

    return product(*(range(w) for w in width))


def retarget_generator(gen: LoweredGenerator, space: IndexSpace) -> LoweredGenerator:
    """A copy of ``gen`` restricted to a sub-space (used by wrap splitting)."""
    return dc_replace(gen, space=space)
