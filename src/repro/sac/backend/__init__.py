"""SaC CUDA/sequential backend: eligibility, lowering, wrap splitting,
transfer insertion, kernel outlining, CUDA source emission."""

from repro.sac.backend.driver import CompiledFunction, CompileOptions, compile_function
from repro.sac.backend.eligibility import is_cuda_eligible, rejection_reason
from repro.sac.backend.lower import LoweredGenerator, LoweredLoop, lower_withloop
from repro.sac.backend.lowerexpr import LoweringError
from repro.sac.backend.split import split_loop, split_wrap_regions

__all__ = [
    "CompileOptions", "CompiledFunction", "compile_function",
    "is_cuda_eligible", "rejection_reason",
    "lower_withloop", "LoweredLoop", "LoweredGenerator", "LoweringError",
    "split_loop", "split_wrap_regions",
]
