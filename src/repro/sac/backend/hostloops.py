"""Host loop-nest vectorisation.

Constructs the paper's compiler keeps on the host — most importantly the
*generic output tiler*, a for-loop nest (Figure 6) that WLF cannot fold —
still have to execute functionally in the simulator.  A tree-walking
interpretation of a million-iteration nest is prohibitively slow, so the
backend lowers **static counted loop nests** to the same kernel IR used for
device code and executes them with the vectorised evaluator, while the
cost model keeps charging *sequential* host time for them.

A nest qualifies when every level is a canonical counted loop
(``for (v = a; v < b; v += c)`` with literal bounds) over a body of scalar
assignments and indexed assignments with scalarised index vectors.  The
evaluator's row-major store order matches the sequential nest's iteration
order, so overlapping writes resolve identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.kernel import ArrayParam, IndexSpace, Kernel
from repro.ir import expr as ir
from repro.ir import stmt as irs
from repro.sac import ast
from repro.sac.backend.lowerexpr import LoweringContext, LoweringError, lower_expr

__all__ = ["HostLoopNest", "loop_bounds", "lower_host_fornest"]


@dataclass(frozen=True)
class HostLoopNest:
    """A vectorisable host loop nest.

    ``ops_per_item`` is the *unoptimised* per-iteration scalar-operation
    estimate (including the vector index temporaries partial evaluation
    inlined away) — the cost a naive host compilation of the nest pays.
    """

    kernel: Kernel
    reads: tuple[str, ...]
    writes: tuple[str, ...]
    ops_per_item: int = 1


def loop_bounds(s: ast.ForLoop) -> tuple[str, int, int, int] | None:
    """(var, start, stop_exclusive, step) of a canonical counted loop."""
    if not isinstance(s.init.value, ast.IntLit):
        return None
    var = s.init.name
    start = s.init.value.value
    cond = s.cond
    if not (
        isinstance(cond, ast.BinExpr)
        and cond.op in ("<", "<=")
        and isinstance(cond.lhs, ast.Var)
        and cond.lhs.name == var
        and isinstance(cond.rhs, ast.IntLit)
    ):
        return None
    stop = cond.rhs.value + (1 if cond.op == "<=" else 0)
    upd = s.update
    if not (
        isinstance(upd, ast.Assign)
        and upd.name == var
        and isinstance(upd.value, ast.BinExpr)
        and upd.value.op == "+"
        and isinstance(upd.value.lhs, ast.Var)
        and upd.value.lhs.name == var
        and isinstance(upd.value.rhs, ast.IntLit)
        and upd.value.rhs.value > 0
    ):
        return None
    return var, start, stop, upd.value.rhs.value


def lower_host_fornest(
    stmt: ast.ForLoop,
    shapes: dict[str, tuple[int, ...]],
    dtypes: dict[str, str] | None = None,
) -> HostLoopNest | None:
    """Lower a static counted for-nest to a host kernel, or ``None``."""
    dtypes = dtypes or {}
    loops: list[tuple[str, int, int, int]] = []
    cur: ast.Stmt = stmt
    body: tuple[ast.Stmt, ...] | None = None
    while isinstance(cur, ast.ForLoop):
        b = loop_bounds(cur)
        if b is None:
            return None
        loops.append(b)
        inner = [s for s in cur.body if not isinstance(s, ast.Block)] + [
            s2 for s in cur.body if isinstance(s, ast.Block) for s2 in s.stmts
        ]
        if len(inner) == 1 and isinstance(inner[0], ast.ForLoop):
            cur = inner[0]
            continue
        body = tuple(inner)
        break
    if body is None or not loops:
        return None

    # cost estimate from the body as written (vector temporaries included)
    from repro.sac.backend.estimates import estimate_ops

    ops_per_item = max(1, estimate_ops(body))

    # drop vector temporaries whose components were inlined by partial
    # evaluation (``off``/``iv`` in the paper's Figure 6) — only the
    # indexed assignments' effects must survive
    from repro.sac.opt.dce import dce_stmts

    live = {s.name for s in body if isinstance(s, ast.IndexedAssign)}
    body = dce_stmts(body, live)

    space = IndexSpace(
        lower=tuple(b[1] for b in loops),
        upper=tuple(b[2] for b in loops),
        step=tuple(b[3] for b in loops),
    )
    ctx = LoweringContext(
        index_vars=tuple(b[0] for b in loops),
        arrays=frozenset(shapes),
    )

    lowered: list[irs.Stmt] = []
    writes: set[str] = set()
    try:
        for s in body:
            if isinstance(s, ast.Assign):
                lowered.append(irs.Assign(s.name, lower_expr(s.value, ctx)))
                ctx.locals.add(s.name)
            elif isinstance(s, ast.IndexedAssign):
                if s.name not in shapes:
                    return None
                idx = s.index
                if isinstance(idx, ast.ArrayLit):
                    comps = tuple(lower_expr(x, ctx) for x in idx.elements)
                elif isinstance(idx, ast.Var) and idx.name in ctx.locals:
                    # an index vector local that stayed symbolic: give up
                    return None
                else:
                    comps = (lower_expr(idx, ctx),)
                if len(comps) != len(shapes[s.name]):
                    return None
                value = lower_expr(s.value, ctx)
                lowered.append(irs.Store(s.name, comps, value))
                writes.add(s.name)
            else:
                return None
    except LoweringError:
        return None
    if not writes:
        return None

    reads: set[str] = set()
    for e in irs.expressions_of(tuple(lowered)):
        if isinstance(e, ir.Read):
            reads.add(e.array)

    arrays = []
    for name in sorted(reads | writes):
        intent = "inout" if name in writes else "in"
        arrays.append(
            ArrayParam(name, shapes[name], dtypes.get(name, "int32"), intent=intent)
        )
    kernel = Kernel(
        name=f"hostnest_{loops[0][0]}_{id(stmt) & 0xFFFF:x}",
        space=space,
        arrays=tuple(arrays),
        body=tuple(lowered),
        provenance="host loop nest",
    )
    return HostLoopNest(
        kernel=kernel,
        reads=tuple(sorted(reads)),
        writes=tuple(sorted(writes)),
        ops_per_item=ops_per_item,
    )
