"""CUDA eligibility of WITH-loops (paper Section VII).

The backend parallelises only the *outermost* WITH-loops that contain no
user function invocations and whose launch geometry is static.  The
mechanical checks live in :mod:`repro.sac.backend.lower` (anything outside
the lowerable form raises :class:`LoweringError`); this module provides the
query form used by the driver and tests, plus the reason a loop was
rejected.
"""

from __future__ import annotations

from repro.sac import ast
from repro.sac.backend.lower import lower_withloop
from repro.sac.backend.lowerexpr import LoweringError

__all__ = ["is_cuda_eligible", "rejection_reason"]


def rejection_reason(
    wl: ast.WithLoop, result: str, shapes: dict[str, tuple[int, ...]]
) -> str | None:
    """None when the WITH-loop can become CUDA kernels, else the reason."""
    try:
        lower_withloop(wl, result, shapes)
    except LoweringError as err:
        return str(err)
    return None


def is_cuda_eligible(
    wl: ast.WithLoop, result: str, shapes: dict[str, tuple[int, ...]]
) -> bool:
    return rejection_reason(wl, result, shapes) is None
