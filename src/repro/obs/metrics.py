"""Metrics registry: one snapshot/diff interface over the runtime counters.

The runtime grew ad-hoc counters in three places — compile-cache
hit/miss/invalidation (:class:`~repro.runtime.cache.CacheStats`), device
allocator traffic (:class:`~repro.gpu.memory.MemoryManager`), and
schedule engine busy/occupancy (:class:`~repro.runtime.schedule.
PipelineSchedule`).  :class:`MetricsRegistry` absorbs them behind one
labelled counter/gauge/histogram model with

* :meth:`~MetricsRegistry.as_dict` — JSON-ready, stable key order;
* :meth:`~MetricsRegistry.render_text` — Prometheus-style exposition;
* :meth:`~MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.since` —
  point-in-time capture and monotonic-series deltas.

The ``collect_*`` helpers map each runtime object onto stable series
names; ``repro metrics`` drives them from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_cache",
    "collect_memory",
    "collect_schedule",
    "collect_profiler",
    "collect_pipeline_report",
    "collect_serving_report",
]


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def set(self, value: float) -> None:
        """Absorb an externally tracked total (collector use)."""
        self.value = float(value)


@dataclass
class Gauge:
    """A point-in-time value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """A distribution summary: count/sum/min/max plus bucket counts."""

    buckets: tuple[float, ...] = ()
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.min, 6) if self.count else None,
            "max": round(self.max, 6) if self.count else None,
            "mean": round(self.mean, 6),
        }
        if self.buckets:
            out["buckets"] = {
                f"le_{b:g}": c for b, c in zip(self.buckets, self.bucket_counts)
            }
        return out


def _series(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Keeps labelled metric series; creation is get-or-create."""

    def __init__(self) -> None:
        #: (name, sorted-label-items) -> metric object
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: dict, factory):
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known}, not a {kind}"
            )
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, buckets: tuple[float, ...] = (), **labels) -> Histogram:
        return self._get(
            "histogram", name, labels, lambda: Histogram(buckets=buckets)
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def _sorted_items(self):
        return sorted(self._metrics.items(), key=lambda kv: (kv[0][0], kv[0][1]))

    def as_dict(self) -> dict:
        """``{series: value}`` with histogram series expanded to dicts."""
        out: dict = {}
        for (name, labels), metric in self._sorted_items():
            series = _series(name, dict(labels))
            if isinstance(metric, Histogram):
                out[series] = metric.as_dict()
            else:
                out[series] = metric.value
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition."""
        lines: list[str] = []
        last_name = None
        for (name, labels), metric in self._sorted_items():
            kind = self._kinds[name]
            if name != last_name:
                lines.append(f"# TYPE {name} {kind}")
                last_name = name
            series = _series(name, dict(labels))
            if isinstance(metric, Histogram):
                base, braces = name, series[len(name):]
                for i, bound in enumerate(metric.buckets):
                    blabels = dict(labels)
                    blabels["le"] = f"{bound:g}"
                    lines.append(
                        f"{_series(base + '_bucket', blabels)} "
                        f"{metric.bucket_counts[i]}"
                    )
                lines.append(f"{base}_count{braces} {metric.count}")
                lines.append(f"{base}_sum{braces} {metric.total:g}")
            else:
                lines.append(f"{series} {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- snapshot / diff ------------------------------------------------------

    def snapshot(self) -> dict:
        """A deep point-in-time capture (the :meth:`as_dict` document)."""
        return self.as_dict()

    def since(self, earlier: dict) -> dict:
        """Deltas of monotonic series (counters, histogram count/sum)
        relative to an earlier :meth:`snapshot`; gauges report their
        current value unchanged."""
        now = self.as_dict()
        out: dict = {}
        kinds = {
            _series(name, dict(labels)): self._kinds[name]
            for (name, labels) in self._metrics
        }
        for series, value in now.items():
            kind = kinds.get(series, "gauge")
            prev = earlier.get(series)
            if kind == "counter" and isinstance(prev, (int, float)):
                out[series] = value - prev
            elif kind == "histogram" and isinstance(prev, dict):
                out[series] = {
                    "count": value["count"] - prev.get("count", 0),
                    "sum": round(value["sum"] - prev.get("sum", 0.0), 6),
                }
            else:
                out[series] = value
        return out


# -- collectors: absorb the runtime's existing counters -----------------------


def collect_cache(reg: MetricsRegistry, stats, **labels) -> None:
    """Absorb a :class:`~repro.runtime.cache.CacheStats`."""
    reg.counter("repro_compile_cache_hits_total", **labels).set(stats.hits)
    reg.counter("repro_compile_cache_misses_total", **labels).set(stats.misses)
    reg.counter(
        "repro_compile_cache_invalidations_total", **labels
    ).set(stats.invalidations)
    reg.gauge("repro_compile_cache_hit_rate", **labels).set(stats.hit_rate)


def collect_memory(reg: MetricsRegistry, memory, **labels) -> None:
    """Absorb a :class:`~repro.gpu.memory.MemoryManager`'s accounting."""
    reg.counter("repro_device_allocs_total", **labels).set(memory.alloc_count)
    reg.counter("repro_device_frees_total", **labels).set(memory.free_count)
    reg.counter("repro_device_pool_hits_total", **labels).set(memory.pool_hits)
    reg.gauge("repro_device_bytes_in_use", **labels).set(memory.bytes_in_use)
    reg.gauge("repro_device_peak_bytes", **labels).set(memory.peak_bytes)
    reg.gauge("repro_device_pool_bytes", **labels).set(memory.pool_bytes)


def collect_schedule(reg: MetricsRegistry, schedule, **labels) -> None:
    """Absorb a :class:`~repro.runtime.schedule.PipelineSchedule`."""
    reg.gauge("repro_schedule_makespan_us", **labels).set(schedule.makespan_us)
    reg.gauge("repro_schedule_serial_us", **labels).set(schedule.serial_us)
    reg.gauge("repro_schedule_nodes", **labels).set(len(schedule.nodes))
    occupancy = schedule.engine_occupancy()
    for engine in schedule.engines:
        reg.gauge(
            "repro_engine_busy_us", engine=engine, **labels
        ).set(schedule.engine_busy_us(engine))
        reg.gauge(
            "repro_engine_occupancy", engine=engine, **labels
        ).set(occupancy[engine])


def collect_profiler(reg: MetricsRegistry, profiler, **labels) -> None:
    """Absorb a :class:`~repro.gpu.profiler.Profiler`'s per-category totals."""
    times = profiler.total_by_category()
    calls = profiler.calls_by_category()
    for category in sorted(times):
        reg.counter(
            "repro_profiler_time_us_total", category=category, **labels
        ).set(times[category])
        reg.counter(
            "repro_profiler_calls_total", category=category, **labels
        ).set(calls[category])


def collect_pipeline_report(reg: MetricsRegistry, report, **labels) -> None:
    """Absorb a :class:`~repro.runtime.pipeline.PipelineReport` — the
    per-phase totals behind the paper's Figure 9 phase breakdown."""
    reg.gauge("repro_pipeline_frames_per_second", **labels).set(
        report.frames_per_second
    )
    reg.gauge("repro_pipeline_latency_p50_us", **labels).set(report.latency_p50_us)
    reg.gauge("repro_pipeline_latency_p95_us", **labels).set(report.latency_p95_us)
    reg.gauge("repro_pipeline_serial_us", **labels).set(report.serial_us)
    reg.gauge("repro_pipeline_overlapped_us", **labels).set(report.overlapped_us)
    reg.gauge("repro_pipeline_transfer_share_serial", **labels).set(
        report.transfer_share_serial
    )
    reg.counter("repro_pipeline_frames_total", **labels).set(report.frames)
    reg.counter("repro_pipeline_instances_total", **labels).set(report.instances)
    reg.counter("repro_pipeline_validated_total", **labels).set(
        report.validated_instances
    )
    collect_cache(reg, report.cache, **labels)
    if report.schedule is not None:
        collect_schedule(reg, report.schedule, **labels)


def collect_serving_report(reg: MetricsRegistry, report, **labels) -> None:
    """Absorb a :class:`~repro.serve.broker.ServingReport`'s aggregates.

    The broker already streams per-request counters/histograms into its
    own registry as it serves; this collector covers the *end-of-life*
    aggregates (percentiles, goodput, state-machine totals) so a scrape
    of a finished run needs only one registry.
    """
    reg.gauge("repro_serving_goodput_rps", **labels).set(report.goodput_rps)
    reg.gauge("repro_serving_offered_rps", **labels).set(report.offered_rps)
    reg.gauge("repro_serving_latency_p50_us", **labels).set(report.latency_p50_us)
    reg.gauge("repro_serving_latency_p95_us", **labels).set(report.latency_p95_us)
    reg.gauge("repro_serving_latency_p99_us", **labels).set(report.latency_p99_us)
    reg.gauge("repro_serving_batch_size_mean", **labels).set(report.batch_size_mean)
    reg.gauge(
        "repro_serving_queue_depth_high_water", **labels
    ).set(report.queue_depth_high_water)
    reg.counter("repro_serving_offered_total", **labels).set(report.offered)
    reg.counter("repro_serving_ok_total", **labels).set(report.completed_ok)
    reg.counter("repro_serving_missed_total", **labels).set(report.completed_missed)
    reg.counter("repro_serving_rejected_total", **labels).set(report.rejected)
    for reason, count in sorted(report.rejected_by_reason.items()):
        reg.counter(
            "repro_serving_rejected_by_reason_total", reason=reason, **labels
        ).set(count)
    reg.counter("repro_serving_degraded_total", **labels).set(report.degraded_served)
    reg.counter("repro_serving_batches_total", **labels).set(report.batches)
    for device, stats in sorted(getattr(report, "per_device", {}).items()):
        reg.gauge(
            "repro_serving_device_busy_us", device=device, **labels
        ).set(stats["busy_us"])
        reg.gauge(
            "repro_serving_device_utilisation", device=device, **labels
        ).set(stats["utilisation"])
        reg.counter(
            "repro_serving_device_batches_total", device=device, **labels
        ).set(stats["batches"])
        reg.counter(
            "repro_serving_device_frames_total", device=device, **labels
        ).set(stats["frames"])
    reg.counter(
        "repro_serving_degrade_transitions_total", **labels
    ).set(report.degrade_transitions)
    reg.counter("repro_serving_validated_total", **labels).set(report.validated)
