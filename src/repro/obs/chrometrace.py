"""Chrome trace-event export: Perfetto-loadable timelines of a run.

Turns the runtime's two time domains into one ``chrome://tracing`` /
Perfetto JSON document (the trace-event format's JSON-object flavour):

* the **modelled device schedule** — every
  :class:`~repro.runtime.schedule.ScheduledNode` of a
  :class:`~repro.runtime.schedule.PipelineSchedule` becomes one complete
  (``"X"``) event on its engine's track (h2d / compute / d2h / host),
  coloured by frame, with flow (``"s"``/``"f"``) arrows along the
  explicit ``deps`` edges; a fleet schedule gets one track-group
  (process) per device — ``d{k}:*`` engines on pid
  ``FLEET_PID_BASE + k`` — plus a shared host-lane process;
* the **host wall-clock span tree** of a :class:`~repro.obs.span.Tracer`
  — nested ``"B"``/``"E"`` events on a second process, so the
  compile → opt → schedule → execute phases sit next to the modelled
  timeline they produced.

:func:`validate_chrome_trace` is the minimal schema check the tests and
CI run over every emitted artefact; :func:`engine_busy_from_trace`
recovers per-engine busy totals from a document so they can be asserted
against :attr:`~repro.runtime.pipeline.PipelineReport.engine_busy_us`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.obs.span import Tracer

if TYPE_CHECKING:  # avoid a runtime.obs import cycle; hints only
    from repro.runtime.schedule import PipelineSchedule

__all__ = [
    "DEVICE_PID",
    "TRACER_PID",
    "FLEET_PID_BASE",
    "FLEET_HOST_PID",
    "schedule_events",
    "tracer_events",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
    "engine_busy_from_trace",
]

#: pid of the modelled device-schedule tracks
DEVICE_PID = 1
#: pid of the host wall-clock span tree
TRACER_PID = 2
#: pid of the shared host lanes of a fleet schedule (``hl{l}:host``)
FLEET_HOST_PID = 9
#: fleet schedules get one track-group (process) per device: device ``k``'s
#: ``d{k}:h2d|compute|d2h`` engines land on pid ``FLEET_PID_BASE + k``
#: (offset past :data:`TRACER_PID` so the host span tree keeps its pid)
FLEET_PID_BASE = 10

#: fixed track order: one lane per engine, paper-style h2d/compute/d2h
_ENGINE_TIDS = {"h2d": 1, "compute": 2, "d2h": 3, "host": 4}


def _engine_track(engine: str) -> tuple[int, int]:
    """(pid, tid) of one engine's track.

    Legacy engine names (``h2d``/``compute``/``d2h``/``host``) stay on
    :data:`DEVICE_PID`; fleet names (``d2:compute``, ``hl1:host``) spread
    over one pid per device plus a shared host-lane process.
    """
    if ":" in engine:
        prefix, _, kind = engine.partition(":")
        if prefix[:1] == "d" and prefix[1:].isdigit():
            return FLEET_PID_BASE + int(prefix[1:]), _ENGINE_TIDS.get(
                kind, max(_ENGINE_TIDS.values()) + 1
            )
        if prefix[:2] == "hl" and prefix[2:].isdigit():
            return FLEET_HOST_PID, int(prefix[2:]) + 1
    return DEVICE_PID, _ENGINE_TIDS.get(engine, max(_ENGINE_TIDS.values()) + 1)

#: chrome://tracing reserved colour names, cycled per frame
_FRAME_COLOURS = (
    "thread_state_running",
    "thread_state_runnable",
    "thread_state_iowait",
    "rail_animation",
)


def _meta(pid: int, name: str, value, tid: int | None = None) -> dict:
    ev = {"ph": "M", "pid": pid, "name": name, "args": {"name": value}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def schedule_events(
    schedule: PipelineSchedule,
    pid: int = DEVICE_PID,
    frame_batch: int = 1,
    flows: bool = True,
) -> list[dict]:
    """Trace events of one modelled schedule: X slices plus dep flows.

    ``frame_batch`` groups that many consecutive runs into one frame for
    colouring/labelling (e.g. the SaC route's three RGB channel runs).
    """
    if frame_batch <= 0:
        raise ValueError("frame_batch must be positive")
    fleet = getattr(schedule, "devices", 1) > 1 or any(
        ":" in e for e in schedule.engines
    )

    # track resolution: legacy engines collapse onto the caller's pid;
    # fleet engines get one process (track-group) per device plus a
    # shared host-lane process
    def track(engine: str) -> tuple[int, int]:
        fpid, tid = _engine_track(engine)
        return (fpid if fleet else pid), tid

    events: list[dict] = []
    if fleet:
        names: dict[int, str] = {}
        for engine in schedule.engines:
            fpid, _ = _engine_track(engine)
            if fpid == FLEET_HOST_PID:
                names.setdefault(fpid, "host lanes")
            else:
                names.setdefault(
                    fpid,
                    f"device d{fpid - FLEET_PID_BASE}: {schedule.program}",
                )
        for fpid in sorted(names):
            events.append(_meta(fpid, "process_name", names[fpid]))
            events.append(
                {"ph": "M", "pid": fpid, "name": "process_sort_index",
                 "args": {"sort_index": fpid}}
            )
        for engine in schedule.engines:
            fpid, tid = _engine_track(engine)
            events.append(_meta(fpid, "thread_name", engine, tid=tid))
            events.append(
                {"ph": "M", "pid": fpid, "tid": tid,
                 "name": "thread_sort_index", "args": {"sort_index": tid}}
            )
    else:
        events.append(
            _meta(pid, "process_name", f"device schedule: {schedule.program}")
        )
        for engine in (e for e in _ENGINE_TIDS if e in schedule.engines):
            tid = _ENGINE_TIDS[engine]
            events.append(_meta(pid, "thread_name", engine, tid=tid))
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
                 "args": {"sort_index": tid}}
            )

    by_id = {n.id: n for n in schedule.nodes}
    flow_id = 0
    for node in schedule.nodes:
        frame = node.run // frame_batch
        npid, tid = track(node.engine)
        events.append(
            {
                "name": node.name,
                "cat": node.engine,
                "ph": "X",
                "ts": node.start_us,
                "dur": node.duration_us,
                "pid": npid,
                "tid": tid,
                "cname": _FRAME_COLOURS[frame % len(_FRAME_COLOURS)],
                "args": {
                    "node": node.id,
                    "run": node.run,
                    "frame": frame,
                    "device": node.device,
                    "op_index": node.op_index,
                    "deps": list(node.deps),
                },
            }
        )
        if not flows:
            continue
        for dep in node.deps:
            src = by_id.get(dep)
            if src is None:
                continue
            spid, stid = track(src.engine)
            common = {"cat": "dep", "name": "dep", "id": flow_id}
            events.append(
                {**common, "ph": "s", "pid": spid, "tid": stid,
                 "ts": src.end_us}
            )
            events.append(
                {**common, "ph": "f", "bp": "e", "pid": npid, "tid": tid,
                 "ts": max(node.start_us, src.end_us)}
            )
            flow_id += 1
    return events


def tracer_events(tracer: Tracer, pid: int = TRACER_PID) -> list[dict]:
    """Nested B/E events of a tracer's span tree (one host track).

    Spans were opened and closed through a context-manager stack, so
    emitting begins by ``(start, id)`` and ends by ``(end, -id)`` yields
    a properly nested B/E sequence.
    """
    if not tracer.spans:
        return []
    events: list[dict] = [
        _meta(pid, "process_name", "host (wall clock)"),
        _meta(pid, "thread_name", "phases", tid=1),
    ]
    # key: (ts, 1, id) for begins, (ts, 0, -id) for ends — at equal ts an
    # end sorts first, and of two ends the younger (deeper) span closes
    # first.  Zero-duration spans (tracer events, e.g. cache hits) become
    # instant ("i") events: a B/E pair at one timestamp cannot be ordered.
    timeline: list[tuple[tuple, dict]] = []
    for s in tracer.spans:
        args = {k: _jsonable(v) for k, v in s.attrs.items()}
        args["span"] = s.id
        if s.duration_us <= 0:
            instant = {
                "name": s.name, "cat": s.category, "ph": "i", "s": "t",
                "ts": s.start_us, "pid": pid, "tid": 1, "args": args,
            }
            timeline.append(((s.start_us, 1, s.id), instant))
            continue
        begin = {
            "name": s.name, "cat": s.category, "ph": "B",
            "ts": s.start_us, "pid": pid, "tid": 1, "args": args,
        }
        end = {
            "name": s.name, "cat": s.category, "ph": "E",
            "ts": s.end_us, "pid": pid, "tid": 1,
        }
        timeline.append(((s.start_us, 1, s.id), begin))
        timeline.append(((s.end_us, 0, -s.id), end))
    events.extend(ev for _, ev in sorted(timeline, key=lambda kv: kv[0]))
    return events


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace(
    schedule: PipelineSchedule | None = None,
    tracer: Tracer | None = None,
    frame_batch: int = 1,
    name: str = "repro",
) -> dict:
    """The complete trace-event document for a run's two time domains."""
    events: list[dict] = []
    if schedule is not None:
        events.extend(schedule_events(schedule, frame_batch=frame_batch))
    if tracer is not None:
        events.extend(tracer_events(tracer))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"name": name},
    }
    if schedule is not None:
        doc["otherData"].update(
            program=schedule.program,
            runs=schedule.runs,
            depth=schedule.depth,
            serialize=schedule.serialize,
            makespan_us=schedule.makespan_us,
        )
    return doc


def write_chrome_trace(path, doc: dict) -> None:
    """Serialise a trace document to ``path`` (validated first)."""
    assert_valid_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


_PHASES = frozenset("XBEMsfi")


def validate_chrome_trace(doc) -> list[str]:
    """Minimal trace-event schema check; returns problem descriptions.

    Checks the JSON-object flavour: a ``traceEvents`` list whose events
    carry the required fields per phase type, non-negative timestamps and
    durations, per-track B/E stack nesting, and flow ``f`` events bound
    to an ``s`` with the same id.  An empty list means the document is
    accepted.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be a dict with a traceEvents list"]
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as err:
        problems.append(f"document is not JSON-serialisable: {err}")

    stacks: dict[tuple, list[str]] = {}
    flow_starts: set = set()
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "pid" not in ev:
            problems.append(f"{where}: missing pid")
        if ph == "M":
            if "name" not in ev or "args" not in ev:
                problems.append(f"{where}: metadata event needs name and args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if "tid" not in ev:
            problems.append(f"{where}: missing tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: X event dur must be non-negative, got {dur!r}"
                )
            if "name" not in ev:
                problems.append(f"{where}: X event missing name")
        elif ph in "BE":
            track = (ev.get("pid"), ev.get("tid"))
            stack = stacks.setdefault(track, [])
            if ph == "B":
                if "name" not in ev:
                    problems.append(f"{where}: B event missing name")
                stack.append(ev.get("name", ""))
            else:
                if not stack:
                    problems.append(f"{where}: E event with no open B on {track}")
                elif stack[-1] != ev.get("name", stack[-1]):
                    problems.append(
                        f"{where}: E event {ev.get('name')!r} does not close "
                        f"open span {stack[-1]!r}"
                    )
                    stack.pop()
                else:
                    stack.pop()
        elif ph == "s":
            flow_starts.add(ev.get("id"))
        elif ph == "f":
            if ev.get("id") not in flow_starts:
                problems.append(
                    f"{where}: flow finish id {ev.get('id')!r} has no start"
                )
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: unclosed B events {stack}")
    return problems


def assert_valid_chrome_trace(doc) -> None:
    """Raise :class:`~repro.errors.ReproError` when the document fails
    :func:`validate_chrome_trace`."""
    problems = validate_chrome_trace(doc)
    if problems:
        raise ReproError(
            "invalid Chrome trace document: " + "; ".join(problems[:10])
        )


def engine_busy_from_trace(doc: dict, pid: int | None = None) -> dict[str, float]:
    """Per-engine busy totals recovered from a trace's device X slices.

    Only device-schedule slices are ``X`` events (the tracer emits
    B/E/i), so the default sums every device process — required for
    fleet traces, where each device is its own pid.  Pass a pid to
    restrict the totals to one track-group.
    """
    out: dict[str, float] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") == "X" and (pid is None or ev.get("pid") == pid):
            cat = ev.get("cat", "")
            out[cat] = out.get(cat, 0.0) + float(ev.get("dur", 0.0))
    return out
