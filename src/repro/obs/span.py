"""Structured span tracing: where a pipeline run spends its wall time.

A :class:`Tracer` records a tree of named, timed :class:`Span` objects via
a context-manager API::

    with Tracer() as tracer:           # installs as the current tracer
        pipe.run(job, frames=4)        # compile/opt/schedule spans land here
    print(render_span_tree(tracer))

Instrumented components (:class:`~repro.runtime.cache.CompileCache`, the
:mod:`repro.opt` passes, :func:`~repro.runtime.schedule.build_schedule`,
:class:`~repro.gpu.executor.GPUExecutor`) do not take a tracer parameter;
they fetch the ambient one with :func:`current_tracer`, which defaults to
the disabled :data:`NULL_TRACER`.  The disabled path is no-op cheap: a
disabled tracer's :meth:`~Tracer.span` returns one shared null context
manager without allocating, so instrumentation can stay on the hot path
unconditionally.

Span times are host wall-clock microseconds relative to the tracer's
creation (``time.perf_counter``) — the *measurement* domain, distinct
from the modelled device-time domain of
:class:`~repro.runtime.schedule.PipelineSchedule`.  The Chrome exporter
(:mod:`repro.obs.chrometrace`) renders both side by side.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One named, timed region of a traced run."""

    id: int
    name: str
    category: str
    parent_id: int | None
    start_us: float
    end_us: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; chainable inside ``with``."""
        self.attrs.update(attrs)
        return self


class _NullSpan:
    """The shared do-nothing span of a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager opening one live span on enter."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._category, self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.span.attrs.setdefault("error", repr(exc))
        self._tracer._close(self.span)
        return False


class Tracer:
    """Collects a span tree; installable as the ambient current tracer."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: finished spans, in completion order (children before parents)
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._tokens: list = []

    # -- recording -----------------------------------------------------------

    def now_us(self) -> float:
        """Wall-clock microseconds since this tracer was created."""
        return (time.perf_counter() - self._epoch) * 1e6

    def span(self, name: str, category: str = "phase", **attrs):
        """A context manager recording one span (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, category, attrs)

    def event(self, name: str, category: str = "event", **attrs) -> None:
        """Record an instant (zero-duration span) at the current time."""
        if not self.enabled:
            return
        now = self.now_us()
        span = self._open(name, category, attrs)
        span.start_us = span.end_us = now
        self._close(span, at=now)

    def _open(self, name: str, category: str, attrs: dict) -> Span:
        span = Span(
            id=self._next_id,
            name=name,
            category=category,
            parent_id=self._stack[-1].id if self._stack else None,
            start_us=self.now_us(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span, at: float | None = None) -> None:
        span.end_us = self.now_us() if at is None else at
        # tolerate out-of-order exits rather than corrupting the stack
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        self.spans.append(span)

    # -- queries -------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Top-level spans in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id is None),
            key=lambda s: (s.start_us, s.id),
        )

    def children(self, span: Span) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span.id),
            key=lambda s: (s.start_us, s.id),
        )

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total_us(self, category: str | None = None) -> float:
        return sum(
            s.duration_us
            for s in self.spans
            if category is None or s.category == category
        )

    # -- installation as the ambient tracer ----------------------------------

    def __enter__(self) -> "Tracer":
        self._tokens.append(_CURRENT.set(self))
        return self

    def __exit__(self, *exc) -> bool:
        _CURRENT.reset(self._tokens.pop())
        return False


#: the ambient tracer instrumented components report to
_CURRENT: ContextVar[Tracer] = ContextVar("repro-current-tracer")

#: the default: tracing disabled, every span a shared no-op
NULL_TRACER = Tracer(enabled=False)


def current_tracer() -> Tracer:
    """The ambient tracer (the disabled :data:`NULL_TRACER` by default)."""
    return _CURRENT.get(NULL_TRACER)


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
