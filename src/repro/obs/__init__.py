"""repro.obs — end-to-end observability: tracing, metrics, trace export.

The paper's argument is carried by *measured* breakdowns (Figure 9's
per-phase bars, the ``cudaprof`` tables); this package gives the
reproduction the same visibility over its own runtime:

* :mod:`repro.obs.span` — a structured span tracer threaded through
  compile (:class:`~repro.runtime.cache.CompileCache`), every
  :mod:`repro.opt` pass, :func:`~repro.runtime.schedule.build_schedule`
  and the executors; near-zero cost when disabled;
* :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram registry
  absorbing the runtime's ad-hoc counters behind one snapshot/diff
  interface, with JSON and Prometheus-style text export;
* :mod:`repro.obs.chrometrace` — a Chrome trace-event / Perfetto
  exporter for any :class:`~repro.runtime.schedule.PipelineSchedule`
  and span tree, with a minimal schema validator.

``repro trace``, ``repro metrics`` and ``repro pipeline --trace`` drive
it from the CLI.
"""

from repro.obs.chrometrace import (
    DEVICE_PID,
    FLEET_HOST_PID,
    FLEET_PID_BASE,
    TRACER_PID,
    assert_valid_chrome_trace,
    chrome_trace,
    engine_busy_from_trace,
    schedule_events,
    tracer_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_cache,
    collect_memory,
    collect_pipeline_report,
    collect_profiler,
    collect_serving_report,
    collect_schedule,
)
from repro.obs.span import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Span", "Tracer", "NULL_TRACER", "NULL_SPAN", "current_tracer", "use_tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "collect_cache", "collect_memory", "collect_schedule", "collect_profiler",
    "collect_pipeline_report", "collect_serving_report",
    "chrome_trace", "schedule_events", "tracer_events", "write_chrome_trace",
    "validate_chrome_trace", "assert_valid_chrome_trace",
    "engine_busy_from_trace", "DEVICE_PID", "TRACER_PID",
    "FLEET_PID_BASE", "FLEET_HOST_PID",
]
