"""Sequential host execution substrate (the SAC-Seq route of Figure 9)."""

from repro.cpu.executor import CPUExecutor, SeqRunResult

__all__ = ["CPUExecutor", "SeqRunResult"]
