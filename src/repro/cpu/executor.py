"""Sequential host execution of compiled programs.

Runs a ``target="seq"`` :class:`~repro.ir.program.DeviceProgram` — the
SAC-Seq configurations of Figure 9.  All arrays live in one host namespace
(no transfers); WITH-loop "kernels" execute functionally with the
vectorised evaluator while being charged **sequential** cost (items x
per-item operations at the host's scalar rate), and host-compute steps run
under the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceError
from repro.gpu.cost import CostModel
from repro.gpu.profiler import Profiler
from repro.ir.evalvec import evaluate_kernel
from repro.ir.kernel import Kernel
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)

__all__ = ["SeqRunResult", "CPUExecutor"]


@dataclass(frozen=True)
class SeqRunResult:
    """Outcome of one sequential program execution."""

    program: str
    total_us: float
    outputs: dict[str, np.ndarray] = field(compare=False)
    loop_us: float = 0.0
    host_us: float = 0.0


class CPUExecutor:
    """Runs sequential programs, charging the CPU cost model."""

    def __init__(self, cost_model: CostModel, profiler: Profiler | None = None):
        self.cost = cost_model
        self.profiler = profiler if profiler is not None else Profiler()
        self._kernel_time_cache: dict[Kernel, float] = {}

    def kernel_time_us(self, kernel: Kernel) -> float:
        cached = self._kernel_time_cache.get(kernel)
        if cached is None:
            cached = self.cost.sequential_time_us(
                items=kernel.space.size,
                reads=kernel.reads_per_item(),
                writes=kernel.writes_per_item(),
                flops=kernel.flops_per_item(),
            )
            self._kernel_time_cache[kernel] = cached
        return cached

    def run(
        self,
        program: DeviceProgram,
        host_env: dict[str, np.ndarray] | None = None,
        functional: bool = True,
    ) -> SeqRunResult:
        env: dict[str, np.ndarray] = dict(host_env or {})
        if functional:
            missing = [n for n in program.host_inputs if n not in env]
            if missing:
                raise DeviceError(
                    f"program {program.name!r}: missing host inputs {missing}"
                )
        loop_us = host_us = 0.0
        for op in program.ops:
            if isinstance(op, AllocDevice):
                if functional:
                    env[op.buffer] = np.zeros(op.shape, dtype=op.dtype)
            elif isinstance(op, FreeDevice):
                env.pop(op.buffer, None)
            elif isinstance(op, LaunchKernel):
                if functional:
                    arrays = {}
                    for param, buffer in op.array_args:
                        try:
                            arrays[param] = np.asarray(env[buffer])
                        except KeyError:
                            raise DeviceError(
                                f"sequential run: array {buffer!r} undefined"
                            ) from None
                    evaluate_kernel(op.kernel, arrays, dict(op.scalar_args))
                dur = self.kernel_time_us(op.kernel)
                loop_us += dur
                self.profiler.record(op.kernel.name, "host", dur)
            elif isinstance(op, HostCompute):
                if functional:
                    op.fn(env)
                dur = self.cost.host_work_time_us(op.work)
                host_us += dur
                self.profiler.record(op.name, "host", dur)
            elif isinstance(op, (HostToDevice, DeviceToHost)):
                raise DeviceError(
                    f"sequential program contains a transfer op: {op!r}"
                )
            else:
                raise DeviceError(f"sequential executor cannot handle {op!r}")

        outputs = {}
        if functional:
            missing_out = [n for n in program.host_outputs if n not in env]
            if missing_out:
                raise DeviceError(
                    f"program {program.name!r} finished without outputs "
                    f"{missing_out}"
                )
            outputs = {n: np.asarray(env[n]) for n in program.host_outputs}
        return SeqRunResult(
            program=program.name,
            total_us=loop_us + host_us,
            outputs=outputs,
            loop_us=loop_us,
            host_us=host_us,
        )
