"""Command-line driver: ``python -m repro`` / ``repro``.

Subcommands::

    repro compile-sac FILE --entry F [--target cuda|seq] [--emit]
    repro gaspard [--size hd|cif] [--emit]
    repro experiment {table1,table2,figure9,figure12,claims,all}
                     [--frames N] [--size hd|cif]
    repro downscale [--size hd|cif] [--variant nongeneric|generic]
                    [--route sac|gaspard]
    repro overlap [--size hd|cif] [--frames N]
    repro lint [--route sac|gaspard|all] [--size hd|cif]
               [--format text|json] [--baseline FILE]
               [--file SAC_FILE --entry F]

Exit codes (all subcommands):

* ``0`` — success; for ``lint``, no error-severity findings;
* ``1`` — ``lint`` found at least one error-severity diagnostic;
* ``2`` — usage error (argparse);
* ``3`` — a repro error (parse/compile/validation failure).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]

#: documented exit codes
EXIT_OK = 0
EXIT_LINT_ERRORS = 1
EXIT_USAGE = 2
EXIT_REPRO_ERROR = 3


def _size(name: str):
    from repro.apps.downscaler.config import CIF, HD

    return {"hd": HD, "cif": CIF}[name]


def _cmd_compile_sac(args) -> int:
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    with open(args.file, encoding="utf-8") as fh:
        source = fh.read()
    prog = parse(source, filename=args.file)
    cf = compile_function(
        prog, args.entry, CompileOptions(target=args.target)
    )
    print(f"compiled {args.entry!r} for target {args.target}")
    print(f"  kernels: {cf.kernel_count}")
    print(f"  host steps: {cf.host_step_count}")
    for name, reason in cf.rejected:
        print(f"  kept on host: {name}: {reason}")
    for k in cf.program.kernels:
        print(
            f"  kernel {k.name}: space {k.space.lower}..{k.space.upper} "
            f"step {k.space.step} ({k.provenance})"
        )
    if args.emit and args.target == "cuda":
        print()
        print(cf.program.source("kernels.cu"))
    return EXIT_OK


def _cmd_gaspard(args) -> int:
    from repro.apps.downscaler.arrayol_model import (
        downscaler_allocation,
        downscaler_model,
    )
    from repro.arrayol.transform import GaspardContext, standard_chain

    ctx = GaspardContext(
        model=downscaler_model(_size(args.size)), allocation=downscaler_allocation()
    )
    chain = standard_chain()
    ctx = chain.run(ctx)
    print("transformation chain trace:")
    for line in chain.trace:
        print("  " + line)
    print(f"kernels: {[k.name for k in ctx.program.kernels]}")
    if args.emit:
        print()
        print(ctx.program.source("kernels.cl"))
    return EXIT_OK


def _cmd_experiment(args) -> int:
    from repro.apps.downscaler import DownscalerLab
    from repro.report import (
        PAPER_TABLE1,
        PAPER_TABLE2,
        render_comparison,
        render_figure9,
        render_figure12,
        render_operation_table,
    )

    lab = DownscalerLab(size=_size(args.size), frames=args.frames)
    which = args.which

    if which in ("table1", "all"):
        t = lab.table1()
        print(render_operation_table(t))
        print()
        print(render_comparison(t, PAPER_TABLE1, frames=args.frames))
        print()
    if which in ("table2", "all"):
        t = lab.table2()
        print(render_operation_table(t))
        print()
        print(render_comparison(t, PAPER_TABLE2, frames=args.frames))
        print()
    if which in ("figure9", "all"):
        print(render_figure9(lab.figure9()))
    if which in ("figure12", "all"):
        print(render_figure12(lab.figure12()))
    if which in ("claims", "all"):
        print("headline claims (paper: 4.5x / 3x generic slowdown, up to 11x")
        print("GPU speedup, ~50% transfer share, routes within 85%):")
        for k, v in lab.headline_claims().items():
            print(f"  {k:34s} {v:8.2f}")
    return EXIT_OK


def _cmd_downscale(args) -> int:
    from repro.apps.downscaler import DownscalerLab
    from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC

    lab = DownscalerLab(size=_size(args.size), frames=1)
    if args.route == "gaspard":
        ctx, ex, runs = lab.run_gaspard()
        res = runs[0]
    else:
        variant = NONGENERIC if args.variant == "nongeneric" else GENERIC
        cf, ex, runs = lab.run_sac(variant, "cuda")
        res = runs[0]
    print(f"program: {res.program}")
    print(f"  kernels:   {res.kernel_us:10.1f} us")
    print(f"  h2d:       {res.h2d_us:10.1f} us")
    print(f"  d2h:       {res.d2h_us:10.1f} us")
    print(f"  host:      {res.host_us:10.1f} us")
    print(f"  total:     {res.total_us:10.1f} us")
    for name, arr in res.outputs.items():
        arr = np.asarray(arr)
        print(f"  output {name}: shape {arr.shape} checksum {int(arr.sum())}")
    return EXIT_OK


def _cmd_overlap(args) -> int:
    from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC, downscaler_program_source
    from repro.apps.downscaler.video import synthetic_frame
    from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED, overlapped_makespan
    from repro.report import render_gantt
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    size = _size(args.size)
    frame = synthetic_frame(size, 0)[..., 0]
    for variant in (NONGENERIC, GENERIC):
        program = parse(downscaler_program_source(size, variant))
        compiled = compile_function(program, "downscale", CompileOptions(target="cuda"))
        ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
        ex.run(compiled.program, {"frame": frame})
        result = overlapped_makespan(compiled.program, ex, frames=args.frames)
        print(f"=== {variant} variant, {args.frames} frames ===")
        print(render_gantt(result))
        print()
    return EXIT_OK


def _cmd_lint(args) -> int:
    """Run every registered analyzer; exit 1 on error-severity findings."""
    from repro.analysis import (
        apply_baseline,
        has_errors,
        load_baseline,
        render_json,
        render_text,
    )

    diags = []
    titles = []
    if args.file is not None:
        diags += _lint_sac_file(args.file, args.entry, titles)
    else:
        size = _size(args.size)
        if args.route in ("sac", "all"):
            diags += _lint_sac_route(size, titles)
        if args.route in ("gaspard", "all"):
            diags += _lint_gaspard_route(size, titles)

    baseline = load_baseline(args.baseline) if args.baseline else None
    kept, suppressed = apply_baseline(diags, baseline)

    title = "lint: " + ", ".join(titles)
    if args.format == "json":
        print(render_json(kept, title=title))
    else:
        print(render_text(kept, title=title))
        if suppressed:
            print(f"({len(suppressed)} finding(s) suppressed by baseline)")
    return EXIT_LINT_ERRORS if has_errors(kept) else EXIT_OK


def _lint_sac_file(path: str, entry: str | None, titles: list) -> list:
    from repro.analysis import analyze_program, analyze_sac_program
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    prog = parse(source, filename=path)
    diags = list(analyze_sac_program(prog))
    if entry:
        if not any(f.name == entry for f in prog.functions):
            from repro.errors import ReproError

            raise ReproError(f"{path}: no function named {entry!r}")
        cf = compile_function(prog, entry, CompileOptions(target="cuda"))
        diags += analyze_program(cf.program)
        titles.append(f"{path} (entry {entry!r})")
    else:
        titles.append(path)
    return diags


def _lint_sac_route(size, titles: list) -> list:
    from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    prog = parse(downscaler_program_source(size, NONGENERIC))
    cf = compile_function(
        prog, "downscale", CompileOptions(target="cuda", lint=True)
    )
    titles.append(f"SaC non-generic {size.name} ({cf.kernel_count} kernels)")
    return list(cf.diagnostics)


def _lint_gaspard_route(size, titles: list) -> list:
    from repro.apps.downscaler.arrayol_model import (
        downscaler_allocation,
        downscaler_model,
    )
    from repro.arrayol.transform import GaspardContext, standard_chain

    ctx = GaspardContext(
        model=downscaler_model(size), allocation=downscaler_allocation()
    )
    ctx = standard_chain(lint=True).run(ctx)
    titles.append(f"Gaspard2 {size.name} ({ctx.program.launch_count} launches)")
    return list(ctx.diagnostics)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SaC/ArrayOL GPU-compilation reproduction (HIPS 2011)",
        epilog=(
            "exit codes: 0 success (lint: clean), 1 lint found errors, "
            "2 usage error, 3 repro error (parse/compile/validation)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile-sac", help="compile a SaC source file")
    p.add_argument("file")
    p.add_argument("--entry", required=True)
    p.add_argument("--target", choices=("cuda", "seq"), default="cuda")
    p.add_argument("--emit", action="store_true", help="print generated CUDA")
    p.set_defaults(fn=_cmd_compile_sac)

    p = sub.add_parser("gaspard", help="run the Gaspard2 OpenCL chain")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--emit", action="store_true", help="print generated OpenCL")
    p.set_defaults(fn=_cmd_gaspard)

    p = sub.add_parser("experiment", help="regenerate a paper artefact")
    p.add_argument(
        "which",
        choices=("table1", "table2", "figure9", "figure12", "claims", "all"),
    )
    p.add_argument("--frames", type=int, default=300)
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("overlap", help="stream-pipelining what-if experiment")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--frames", type=int, default=12)
    p.set_defaults(fn=_cmd_overlap)

    p = sub.add_parser("downscale", help="downscale one synthetic frame")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--variant", choices=("nongeneric", "generic"), default="nongeneric")
    p.add_argument("--route", choices=("sac", "gaspard"), default="sac")
    p.set_defaults(fn=_cmd_downscale)

    p = sub.add_parser(
        "lint",
        help="run the static-analysis suite (exit 1 on error findings)",
        description=(
            "Runs every registered analyzer (hazards, transfers, bounds, "
            "coalescing, SaC lints, tiler lints) over the compiled downscaler "
            "routes, or over a SaC source file given with --file."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "all"), default="all")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--baseline", help="suppression file (CODE [@ location])")
    p.add_argument("--file", help="lint a SaC source file instead of the routes")
    p.add_argument("--entry", help="with --file: also compile and lint the program")
    p.set_defaults(fn=_cmd_lint)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except Exception as err:
        from repro.errors import ReproError

        if isinstance(err, (ReproError, OSError)):
            print(f"error: {err}", file=sys.stderr)
            return EXIT_REPRO_ERROR
        raise


if __name__ == "__main__":
    sys.exit(main())
