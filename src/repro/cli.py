"""Command-line driver: ``python -m repro`` / ``repro``.

Subcommands::

    repro compile-sac FILE --entry F [--target cuda|seq] [--emit]
    repro gaspard [--size hd|cif] [--emit]
    repro experiment {table1,table2,figure9,figure12,claims,overlap,all}
                     [--frames N] [--size hd|cif] [--json]
    repro downscale [--size hd|cif] [--variant nongeneric|generic]
                    [--route sac|gaspard]
    repro overlap [--size hd|cif] [--frames N]
    repro pipeline [--route sac|gaspard|both] [--size hd|cif] [--frames N]
                   [--variant nongeneric|generic] [--depth D] [--serialize]
                   [--no-validate] [--lint] [--opt] [--trace [FILE]] [--json]
    repro trace [--route sac|gaspard|both] [--size hd|cif] [--frames N]
                [--variant nongeneric|generic] [--depth D] [--serialize]
                [--opt] [--out FILE]
    repro metrics [--route sac|gaspard|both] [--size hd|cif] [--frames N]
                  [--format text|json]
    repro lint [--route sac|gaspard|all] [--app downscaler|convolution]
               [--size hd|cif] [--format text|json] [--baseline FILE]
               [--assert-clean] [--explain CODE]
               [--file SAC_FILE --entry F]
    repro opt [--route sac|gaspard|both] [--size hd|cif]
              [--variant nongeneric|generic]
              [--transfers boundary|per_kernel]
              [--no-dce] [--no-transfer-elim] [--no-fusion]
              [--no-sibling-fusion] [--no-pooling]
              [--no-certify] [--json]
    repro serve [--route sac|gaspard|both] [--size hd|cif] [--depth D]
                [--opt] [--max-batch B] [--slo-ms S] [--requests N]
                [--rate RPS] [--mode open|closed] [--clients C]
                [--tenants T] [--deadline-ms D] [--queue-budget Q]
                [--no-execute] [--json]

Exit codes (all subcommands):

* ``0`` — success; for ``lint``, no error-severity findings;
* ``1`` — ``lint`` found at least one error-severity diagnostic;
* ``2`` — usage error (argparse);
* ``3`` — a repro error (parse/compile/validation failure).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]

#: documented exit codes
EXIT_OK = 0
EXIT_LINT_ERRORS = 1
EXIT_USAGE = 2
EXIT_REPRO_ERROR = 3


def _size(name: str):
    from repro.apps.downscaler.config import CIF, HD

    return {"hd": HD, "cif": CIF}[name]


def _cmd_compile_sac(args) -> int:
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    with open(args.file, encoding="utf-8") as fh:
        source = fh.read()
    prog = parse(source, filename=args.file)
    cf = compile_function(
        prog, args.entry, CompileOptions(target=args.target)
    )
    print(f"compiled {args.entry!r} for target {args.target}")
    print(f"  kernels: {cf.kernel_count}")
    print(f"  host steps: {cf.host_step_count}")
    for name, reason in cf.rejected:
        print(f"  kept on host: {name}: {reason}")
    for k in cf.program.kernels:
        print(
            f"  kernel {k.name}: space {k.space.lower}..{k.space.upper} "
            f"step {k.space.step} ({k.provenance})"
        )
    if args.emit and args.target == "cuda":
        print()
        print(cf.program.source("kernels.cu"))
    return EXIT_OK


def _cmd_gaspard(args) -> int:
    from repro.apps.downscaler.arrayol_model import (
        downscaler_allocation,
        downscaler_model,
    )
    from repro.arrayol.transform import GaspardContext, standard_chain

    ctx = GaspardContext(
        model=downscaler_model(_size(args.size)), allocation=downscaler_allocation()
    )
    chain = standard_chain()
    ctx = chain.run(ctx)
    print("transformation chain trace:")
    for line in chain.trace:
        print("  " + line)
    print(f"kernels: {[k.name for k in ctx.program.kernels]}")
    if args.emit:
        print()
        print(ctx.program.source("kernels.cl"))
    return EXIT_OK


def _table_as_dict(t) -> dict:
    return {
        "title": t.title,
        "total_us": round(t.total_us, 3),
        "rows": [
            {
                "operation": r.operation,
                "calls": r.calls,
                "gpu_time_us": round(r.gpu_time_us, 3),
                "gpu_time_pct": round(r.gpu_time_pct, 3),
            }
            for r in t.rows
        ],
    }


def _overlap_results(size, frames: int) -> list[tuple[str, object]]:
    """``overlapped_makespan`` of both SaC variants (bench_overlap's result)."""
    from repro.apps.downscaler.sac_sources import (
        GENERIC,
        NONGENERIC,
        downscaler_program_source,
    )
    from repro.apps.downscaler.video import synthetic_frame
    from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED, overlapped_makespan
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    frame = synthetic_frame(size, 0)[..., 0]
    results = []
    for variant in (NONGENERIC, GENERIC):
        program = parse(downscaler_program_source(size, variant))
        compiled = compile_function(program, "downscale", CompileOptions(target="cuda"))
        ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
        ex.run(compiled.program, {"frame": frame})
        results.append((variant, overlapped_makespan(compiled.program, ex, frames=frames)))
    return results


def _overlap_as_dict(variant: str, result, frames: int) -> dict:
    return {
        "variant": variant,
        "frames": frames,
        "serial_us": round(result.serial_us, 3),
        "overlapped_us": round(result.overlapped_us, 3),
        "speedup": round(result.speedup, 4),
        "engine_busy_us": {
            e: round(result.engine_busy_us(e), 3) for e in ("h2d", "compute", "d2h")
        },
    }


def _cmd_experiment(args) -> int:
    import json

    from repro.apps.downscaler import DownscalerLab
    from repro.report import (
        PAPER_TABLE1,
        PAPER_TABLE2,
        render_comparison,
        render_figure9,
        render_figure12,
        render_gantt,
        render_operation_table,
    )

    lab = DownscalerLab(size=_size(args.size), frames=args.frames)
    which = args.which
    doc: dict = {"size": args.size, "frames": args.frames}

    if which in ("table1", "all"):
        t = lab.table1()
        if args.json:
            doc["table1"] = _table_as_dict(t)
        else:
            print(render_operation_table(t))
            print()
            print(render_comparison(t, PAPER_TABLE1, frames=args.frames))
            print()
    if which in ("table2", "all"):
        t = lab.table2()
        if args.json:
            doc["table2"] = _table_as_dict(t)
        else:
            print(render_operation_table(t))
            print()
            print(render_comparison(t, PAPER_TABLE2, frames=args.frames))
            print()
    if which in ("figure9", "all"):
        rows = lab.figure9()
        if args.json:
            doc["figure9"] = [
                {
                    "configuration": r.configuration,
                    "hfilter_s": round(r.hfilter_s, 6),
                    "vfilter_s": round(r.vfilter_s, 6),
                }
                for r in rows
            ]
        else:
            print(render_figure9(rows))
    if which in ("figure12", "all"):
        series = lab.figure12()
        if args.json:
            doc["figure12"] = {
                "operations": list(series.operations),
                "sac_s": [round(v, 6) for v in series.sac_s],
                "gaspard_s": [round(v, 6) for v in series.gaspard_s],
            }
        else:
            print(render_figure12(series))
    if which in ("claims", "all"):
        claims = lab.headline_claims()
        if args.json:
            doc["claims"] = {k: round(v, 4) for k, v in claims.items()}
        else:
            print("headline claims (paper: 4.5x / 3x generic slowdown, up to 11x")
            print("GPU speedup, ~50% transfer share, routes within 85%):")
            for k, v in claims.items():
                print(f"  {k:34s} {v:8.2f}")
    if which in ("overlap", "all"):
        results = _overlap_results(_size(args.size), args.frames)
        if args.json:
            doc["overlap"] = [
                _overlap_as_dict(v, r, args.frames) for v, r in results
            ]
        else:
            for variant, result in results:
                print(f"=== {variant} variant, {args.frames} frames ===")
                print(render_gantt(result))
                print()
    if args.json:
        print(json.dumps(doc, indent=2))
    return EXIT_OK


def _cmd_downscale(args) -> int:
    from repro.apps.downscaler import DownscalerLab
    from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC

    lab = DownscalerLab(size=_size(args.size), frames=1)
    if args.route == "gaspard":
        ctx, ex, runs = lab.run_gaspard()
        res = runs[0]
    else:
        variant = NONGENERIC if args.variant == "nongeneric" else GENERIC
        cf, ex, runs = lab.run_sac(variant, "cuda")
        res = runs[0]
    print(f"program: {res.program}")
    print(f"  kernels:   {res.kernel_us:10.1f} us")
    print(f"  h2d:       {res.h2d_us:10.1f} us")
    print(f"  d2h:       {res.d2h_us:10.1f} us")
    print(f"  host:      {res.host_us:10.1f} us")
    print(f"  total:     {res.total_us:10.1f} us")
    for name, arr in res.outputs.items():
        arr = np.asarray(arr)
        print(f"  output {name}: shape {arr.shape} checksum {int(arr.sum())}")
    return EXIT_OK


def _cmd_overlap(args) -> int:
    from repro.report import render_gantt

    for variant, result in _overlap_results(_size(args.size), args.frames):
        print(f"=== {variant} variant, {args.frames} frames ===")
        print(render_gantt(result))
        print()
    return EXIT_OK


def _render_pipeline_report(r) -> str:
    fleet = getattr(r, "devices", 1) > 1
    if fleet:
        # namespaced engines: one h2d/compute/d2h triple per device
        occ = " | ".join(
            f"{name} " + "/".join(
                f"{100 * r.engine_occupancy.get(f'{name}:{e}', 0.0):.0f}%"
                for e in ("h2d", "compute", "d2h")
            )
            for name in sorted(r.per_device)
        )
    else:
        occ = " | ".join(
            f"{e} {100 * r.engine_occupancy.get(e, 0.0):.1f}%"
            for e in ("h2d", "compute", "d2h")
        )
    lines = [
        f"=== pipeline {r.job}: {r.frames} frames x "
        f"{r.instances // max(1, r.frames)} run(s) ({r.program or 'nothing compiled'}) ===",
        f"  compile:    {r.cache.misses} miss(es), {r.cache.hits} hit(s) "
        f"(hit rate {100 * r.cache.hit_rate:.1f}%)",
        f"  serial:     {r.serial_us:12.1f} us",
        f"  overlapped: {r.overlapped_us:12.1f} us  (speedup {r.speedup:.2f}x, "
        f"depth {r.depth}{', serialized' if r.serialize else ''})",
        f"  frames/s:   {r.frames_per_second:12.1f}",
        f"  latency:    p50 {r.latency_p50_us:.1f} us, p95 {r.latency_p95_us:.1f} us",
        f"  engines:    {occ}  (busy/makespan)",
        f"  transfers:  {100 * r.transfer_share_serial:.1f}% of serial time "
        f"(paper claims ~50%)",
        f"  validated:  {r.validated_instances} run(s) bit-exact vs NumPy reference",
    ]
    if fleet:
        shares = ", ".join(
            f"{name} {stats['frames']}f"
            for name, stats in sorted(r.per_device.items())
        )
        mig = (
            f", {r.migrations} migration(s) ({r.migration_us:.1f} us host-staged)"
            if r.migrations else ""
        )
        lines.insert(
            1,
            f"  fleet:      {r.devices} device(s), {r.placement} placement: "
            f"{shares}{mig}",
        )
    return "\n".join(lines)


def _cmd_pipeline(args) -> int:
    import json

    from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC
    from repro.apps.downscaler.serving import downscaler_job
    from repro.obs import (
        MetricsRegistry,
        collect_memory,
        collect_pipeline_report,
        collect_profiler,
    )
    from repro.runtime import FramePipeline, check_pipeline_hazards

    def _metrics_snapshot(pipe, report, route_name: str) -> dict:
        """One registry per served route: the report's aggregates plus a
        snapshot of the shared executor's allocator/profiler state."""
        reg = MetricsRegistry()
        collect_pipeline_report(reg, report, route=route_name)
        collect_memory(reg, pipe.executor.memory, route=route_name)
        collect_profiler(reg, pipe.executor.profiler, route=route_name)
        return reg.as_dict()

    size = _size(args.size)
    variant = NONGENERIC if args.variant == "nongeneric" else GENERIC
    routes = ("sac", "gaspard") if args.route == "both" else (args.route,)
    depth = None if args.depth == 0 else args.depth
    pipe = FramePipeline(
        depth=depth,
        serialize=args.serialize,
        validate="none" if args.no_validate else "first",
        devices=args.devices,
        placement=args.placement,
    )

    doc: dict = {"size": args.size, "frames": args.frames, "routes": []}
    hazard_failures = 0
    for route in routes:
        job = downscaler_job(route, size=size, variant=variant)
        tracer = None
        if args.trace:
            from repro.obs import Tracer

            tracer = Tracer()
            pipe.tracer = tracer
        report = pipe.run(job, frames=args.frames)
        entry = report.as_dict()
        opt_entry = None
        if not args.json:
            print(_render_pipeline_report(report))
        if args.opt:
            from repro.opt import OptOptions

            opt_job = downscaler_job(
                route, size=size, variant=variant, opt=OptOptions()
            )
            opt_report = pipe.run(opt_job, frames=args.frames)
            opt_entry = opt_report.as_dict()
            opt_entry["baseline_job"] = report.job
            opt_entry["fps_speedup_vs_baseline"] = round(
                opt_report.frames_per_second / report.frames_per_second, 4
            )
            if not args.json:
                print(_render_pipeline_report(opt_report))
                print(
                    f"  --opt:      {report.frames_per_second:.1f} -> "
                    f"{opt_report.frames_per_second:.1f} frames/s "
                    f"({opt_entry['fps_speedup_vs_baseline']:.2f}x), "
                    f"p95 latency {report.latency_p95_us:.1f} -> "
                    f"{opt_report.latency_p95_us:.1f} us"
                )
        if args.lint:
            program = job.compile(pipe.cache)
            runs = min(args.frames * job.instances_per_frame, 6)
            haz = check_pipeline_hazards(
                program, pipe.executor, runs=runs,
                depth=depth, serialize=args.serialize,
            )
            hazard_failures += len(haz.unexpected) + len(haz.schedule_violations)
            entry["hazards"] = {
                "runs": haz.runs,
                "unexpected": [d.message for d in haz.unexpected],
                "resolved": len(haz.resolved),
                "schedule_violations": list(haz.schedule_violations),
            }
            if not args.json:
                status = "clean" if haz.clean else "FINDINGS"
                print(
                    f"  hazards:    {status} over {haz.runs} unrolled run(s) "
                    f"({len(haz.resolved)} recycle hazard(s) certified by the "
                    f"schedule, {len(haz.unexpected)} unexpected)"
                )
                for d in haz.unexpected:
                    print(f"    {d.message}")
                for v in haz.schedule_violations:
                    print(f"    schedule: {v}")
        if args.trace:
            from repro.obs import chrome_trace, write_chrome_trace

            path = _trace_path(args.trace, route, multi=len(routes) > 1)
            trace_doc = chrome_trace(
                schedule=report.schedule,
                tracer=tracer,
                frame_batch=job.instances_per_frame,
                name=f"{job.name} ({args.size}, {args.frames} frames)",
            )
            write_chrome_trace(path, trace_doc)
            entry["trace"] = path
            if not args.json:
                print(
                    f"  trace:      wrote {path} "
                    f"({len(trace_doc['traceEvents'])} events)"
                )
        if not args.json:
            print()
        # each route entry pairs the run report with a metrics-registry
        # snapshot, so one `pipeline --json` feeds both a results consumer
        # and a metrics scraper without a second run
        doc["routes"].append({
            "report": entry,
            "metrics": _metrics_snapshot(pipe, report, report.job),
        })
        if opt_entry is not None:
            doc["routes"].append({
                "report": opt_entry,
                "metrics": _metrics_snapshot(pipe, opt_report, opt_report.job),
            })
    if args.json:
        print(json.dumps(doc, indent=2))
    return EXIT_LINT_ERRORS if hazard_failures else EXIT_OK


def _trace_path(out: str, route: str, multi: bool) -> str:
    """Insert the route into the trace filename when serving both routes."""
    if not multi:
        return out
    stem, dot, ext = out.rpartition(".")
    if not dot:
        return f"{out}.{route}"
    return f"{stem}.{route}.{ext}"


def _cmd_trace(args) -> int:
    """Serve a traced pipeline run; write a Chrome/Perfetto trace per route."""
    from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC
    from repro.apps.downscaler.serving import downscaler_job
    from repro.errors import ReproError
    from repro.obs import (
        Tracer,
        chrome_trace,
        engine_busy_from_trace,
        write_chrome_trace,
    )
    from repro.report import render_span_tree
    from repro.runtime import FramePipeline

    size = _size(args.size)
    variant = NONGENERIC if args.variant == "nongeneric" else GENERIC
    routes = ("sac", "gaspard") if args.route == "both" else (args.route,)
    depth = None if args.depth == 0 else args.depth
    opt = None
    if args.opt:
        from repro.opt import OptOptions

        opt = OptOptions()
    for route in routes:
        tracer = Tracer()
        pipe = FramePipeline(depth=depth, serialize=args.serialize, tracer=tracer)
        job = downscaler_job(route, size=size, variant=variant, opt=opt)
        report = pipe.run(job, frames=args.frames)
        doc = chrome_trace(
            schedule=report.schedule,
            tracer=tracer,
            frame_batch=job.instances_per_frame,
            name=f"{job.name} ({args.size}, {args.frames} frames)",
        )
        # the artefact must agree with the report it visualises
        busy = engine_busy_from_trace(doc)
        for engine, want in report.engine_busy_us.items():
            got = busy.get(engine, 0.0)
            if abs(got - want) > 1e-6 * max(1.0, abs(want)):
                raise ReproError(
                    f"trace export of {job.name}: engine {engine} busy "
                    f"{got:.3f} us disagrees with the pipeline report "
                    f"({want:.3f} us)"
                )
        path = _trace_path(args.out, route, multi=len(routes) > 1)
        write_chrome_trace(path, doc)
        print(f"=== trace {job.name} ({args.size}, {args.frames} frames) ===")
        print(
            f"  wrote {path}: {len(doc['traceEvents'])} events, "
            f"modelled makespan {report.overlapped_us:.1f} us"
        )
        busy_line = " | ".join(
            f"{e} {busy.get(e, 0.0):.1f} us"
            for e in ("h2d", "compute", "d2h", "host")
            if e in busy
        )
        print(f"  engine busy (trace == report): {busy_line}")
        print("  open in https://ui.perfetto.dev or chrome://tracing")
        print()
        print(render_span_tree(tracer))
        print()
    return EXIT_OK


def _cmd_metrics(args) -> int:
    """Serve a short run per route; export the metrics registry."""
    from repro.apps.downscaler.serving import downscaler_job
    from repro.obs import (
        MetricsRegistry,
        collect_memory,
        collect_pipeline_report,
        collect_profiler,
    )
    from repro.runtime import FramePipeline

    size = _size(args.size)
    routes = ("sac", "gaspard") if args.route == "both" else (args.route,)
    reg = MetricsRegistry()
    for route in routes:
        pipe = FramePipeline()
        job = downscaler_job(route, size=size)
        report = pipe.run(job, frames=args.frames)
        collect_pipeline_report(reg, report, route=job.name)
        collect_memory(reg, pipe.executor.memory, route=job.name)
        collect_profiler(reg, pipe.executor.profiler, route=job.name)
    if args.format == "json":
        import json

        print(json.dumps(reg.as_dict(), indent=2))
    else:
        print(reg.render_text(), end="")
    return EXIT_OK


def _cmd_serve(args) -> int:
    """Drive the async serving tier over one or both routes."""
    import json

    from repro.apps.downscaler.config import CIF
    from repro.apps.downscaler.sac_sources import GENERIC, NONGENERIC
    from repro.apps.downscaler.serving import downscaler_job
    from repro.obs import MetricsRegistry, collect_serving_report
    from repro.serve import (
        ServeBroker,
        ServeConfig,
        run_closed_loop,
        run_open_loop,
    )

    size = _size(args.size)
    variant = NONGENERIC if args.variant == "nongeneric" else GENERIC
    routes = ("sac", "gaspard") if args.route == "both" else (args.route,)
    opt = None
    if args.opt:
        from repro.opt import OptOptions

        opt = OptOptions()
    depth = None if args.depth == 0 else args.depth
    deadline_us = None if args.deadline_ms is None else args.deadline_ms * 1000.0
    doc: dict = {
        "size": args.size,
        "mode": args.mode,
        "requests": args.requests,
        "routes": [],
    }
    for route in routes:
        job = downscaler_job(route, size=size, variant=variant, opt=opt)
        # graceful degradation target: the same route at CIF size (when
        # already serving CIF there is nothing smaller to degrade to)
        degraded_job = None
        if size is not CIF:
            degraded_job = downscaler_job(route, size=CIF, variant=variant, opt=opt)
        config = ServeConfig(
            max_batch=args.max_batch,
            slo_us=args.slo_ms * 1000.0,
            queue_budget=args.queue_budget,
            depth=depth,
            execute="none" if args.no_execute else "all",
            devices=args.devices,
        )
        reg = MetricsRegistry()
        broker = ServeBroker(job, config, degraded_job=degraded_job, registry=reg)
        if args.mode == "closed":
            _responses, report = run_closed_loop(
                broker,
                clients=args.clients,
                requests_per_client=max(1, args.requests // max(1, args.clients)),
                deadline_us=deadline_us,
            )
        else:
            _responses, report = run_open_loop(
                broker,
                rate_rps=args.rate,
                requests=args.requests,
                tenants=args.tenants,
                deadline_us=deadline_us,
                jitter_seed=args.jitter_seed,
            )
        collect_serving_report(reg, report, route=job.name)
        if args.json:
            doc["routes"].append({
                "report": report.as_dict(),
                "metrics": reg.as_dict(),
            })
        else:
            print(report.render())
            print()
    if args.json:
        print(json.dumps(doc, indent=2))
    return EXIT_OK


def _cmd_opt(args) -> int:
    """Optimise the compiled downscaler routes; print before/after reports."""
    import json

    from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
    from repro.opt import OptOptions, optimize_program

    size = _size(args.size)
    options = OptOptions(
        dce=not args.no_dce,
        transfers=not args.no_transfer_elim,
        fusion=not args.no_fusion,
        sibling_fusion=not args.no_sibling_fusion,
        pooling=not args.no_pooling,
        certify=not args.no_certify,
    )
    routes = ("sac", "gaspard") if args.route == "both" else (args.route,)
    doc: dict = {
        "size": args.size,
        "transfers": args.transfers,
        "passes": list(options.enabled_passes),
        "routes": [],
    }
    for route in routes:
        label, program = _route_program(
            route, size, args.variant, args.transfers
        )
        executor = GPUExecutor(CostModel(GTX480_CALIBRATED))
        _optimized, report = optimize_program(
            program, options, executor=executor
        )
        entry = report.as_dict()
        entry["route"] = label
        doc["routes"].append(entry)
        if not args.json:
            print(
                f"=== {label} ({args.size}, transfers={args.transfers}) ==="
            )
            print(report.render())
            print()
    if args.json:
        print(json.dumps(doc, indent=2))
    return EXIT_OK


def _cmd_tune(args) -> int:
    """Autotune one app x route; print the winner and its provenance."""
    import json

    from repro.apps.downscaler.config import CIF, HD
    from repro.tune import make_subject, tune

    size = HD if args.size == "hd" else CIF
    routes = ("sac", "gaspard") if args.route == "both" else (args.route,)
    doc: dict = {"app": args.app, "size": args.size, "routes": []}
    for route in routes:
        subject = make_subject(args.app, route, size=size)
        result = tune(
            subject,
            budget=args.budget,
            seed=args.seed,
            frames=args.frames,
            devices=args.devices,
        )
        doc["routes"].append(result.as_dict())
        if not args.json:
            d, w = result.default_cost, result.winner_cost
            print(f"=== {args.app}/{route} ({subject.size_name}) ===")
            print(f"candidates visited   {result.candidates}")
            print(f"distinct evaluations {result.evaluations}")
            print(f"certifier rejections {result.rejected}")
            print(f"default   {d.makespan_us:12.1f} us  "
                  f"{d.transferred_bytes:>12} B  {d.launches:>3} launches")
            print(f"winner    {w.makespan_us:12.1f} us  "
                  f"{w.transferred_bytes:>12} B  {w.launches:>3} launches")
            print(f"config    {result.winner.describe()}")
            print(f"improved  {result.improved}   "
                  f"validated bit-exact: {result.validated}")
            print(f"record    {result.record.content[:16]}")
            print()
    if args.json:
        print(json.dumps(doc, indent=2))
    return EXIT_OK


def _route_program(route: str, size, variant: str, transfers: str):
    """Compile one downscaler route; returns ``(label, DeviceProgram)``."""
    if route == "sac":
        from repro.apps.downscaler.sac_sources import (
            GENERIC,
            NONGENERIC,
            downscaler_program_source,
        )
        from repro.sac.backend import CompileOptions, compile_function
        from repro.sac.parser import parse

        sac_variant = NONGENERIC if variant == "nongeneric" else GENERIC
        cf = compile_function(
            parse(downscaler_program_source(size, sac_variant)),
            "downscale",
            CompileOptions(target="cuda", transfers=transfers),
        )
        return f"sac-{variant}", cf.program

    from repro.apps.downscaler.arrayol_model import (
        downscaler_allocation,
        downscaler_model,
    )
    from repro.arrayol.transform import GaspardContext, standard_chain

    ctx = GaspardContext(
        model=downscaler_model(size), allocation=downscaler_allocation()
    )
    standard_chain(transfers=transfers).run(ctx)
    return "gaspard", ctx.program


def _explain_code(code: str) -> int:
    """Print the documentation block of one diagnostic code."""
    from repro.analysis import CODES, EXPLAIN, registered_passes

    if code not in CODES:
        known = ", ".join(sorted(CODES))
        print(f"error: unknown diagnostic code {code!r}", file=sys.stderr)
        print(f"known codes: {known}", file=sys.stderr)
        return EXIT_USAGE
    print(f"{code}: {CODES[code]}")
    emitters = [p.name for p in registered_passes() if code in p.codes]
    if emitters:
        print(f"emitted by pass: {', '.join(emitters)}")
    print()
    print(EXPLAIN[code].rstrip())
    return EXIT_OK


def _cmd_lint(args) -> int:
    """Run every registered analyzer; exit 1 on error-severity findings."""
    from repro.analysis import (
        apply_baseline,
        has_errors,
        load_baseline,
        render_json,
        render_text,
    )

    if args.explain is not None:
        return _explain_code(args.explain.upper())

    opt = None
    if args.assert_clean:
        if args.file is not None:
            print(
                "error: --assert-clean applies to the compiled routes, "
                "not --file",
                file=sys.stderr,
            )
            return EXIT_USAGE
        from repro.opt import OptOptions

        opt = OptOptions()

    diags = []
    titles = []
    if args.file is not None:
        diags += _lint_sac_file(args.file, args.entry, titles)
    else:
        size = _size(args.size)
        if args.route in ("sac", "all"):
            diags += _lint_sac_route(size, titles, opt=opt, app=args.app)
        if args.route in ("gaspard", "all"):
            diags += _lint_gaspard_route(size, titles, opt=opt, app=args.app)

    baseline = load_baseline(args.baseline) if args.baseline else None
    kept, suppressed = apply_baseline(diags, baseline)

    title = "lint: " + ", ".join(titles)
    if args.format == "json":
        print(render_json(kept, title=title))
    else:
        print(render_text(kept, title=title))
        if suppressed:
            print(f"({len(suppressed)} finding(s) suppressed by baseline)")
    if args.assert_clean:
        transfer = [d for d in kept if d.code.startswith("XFER")]
        if transfer:
            print(
                f"assert-clean: FAILED — {len(transfer)} TRANSFER finding(s) "
                f"survive optimisation"
            )
            return EXIT_LINT_ERRORS
        print(
            "assert-clean: optimised routes trigger zero TRANSFER diagnostics"
        )
    return EXIT_LINT_ERRORS if has_errors(kept) else EXIT_OK


def _lint_sac_file(path: str, entry: str | None, titles: list) -> list:
    from repro.analysis import analyze_program, analyze_sac_program
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    prog = parse(source, filename=path)
    diags = list(analyze_sac_program(prog))
    if entry:
        if not any(f.name == entry for f in prog.functions):
            from repro.errors import ReproError

            raise ReproError(f"{path}: no function named {entry!r}")
        cf = compile_function(prog, entry, CompileOptions(target="cuda"))
        diags += analyze_program(cf.program)
        titles.append(f"{path} (entry {entry!r})")
    else:
        titles.append(path)
    return diags


def _lint_sac_route(size, titles: list, opt=None, app: str = "downscaler") -> list:
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    if app == "convolution":
        from repro.apps.convolution.config import gaussian3
        from repro.apps.convolution.sac_source import convolution_program_source

        prog = parse(convolution_program_source(gaussian3(size.rows, size.cols)))
        entry, label = "blur", "SaC convolution"
    else:
        from repro.apps.downscaler.sac_sources import (
            NONGENERIC,
            downscaler_program_source,
        )

        prog = parse(downscaler_program_source(size, NONGENERIC))
        entry, label = "downscale", "SaC non-generic"
    cf = compile_function(
        prog, entry, CompileOptions(target="cuda", lint=True, opt=opt)
    )
    suffix = " +opt" if opt is not None else ""
    titles.append(
        f"{label} {size.name} ({cf.kernel_count} kernels){suffix}"
    )
    return list(cf.diagnostics)


def _lint_gaspard_route(size, titles: list, opt=None, app: str = "downscaler") -> list:
    from repro.arrayol.transform import GaspardContext, standard_chain

    if app == "convolution":
        from repro.apps.convolution.arrayol_model import (
            convolution_allocation,
            convolution_model,
        )
        from repro.apps.convolution.config import gaussian3

        ctx = GaspardContext(
            model=convolution_model(gaussian3(size.rows, size.cols)),
            allocation=convolution_allocation(),
        )
        label = "Gaspard2 convolution"
    else:
        from repro.apps.downscaler.arrayol_model import (
            downscaler_allocation,
            downscaler_model,
        )

        ctx = GaspardContext(
            model=downscaler_model(size), allocation=downscaler_allocation()
        )
        label = "Gaspard2"
    ctx = standard_chain(lint=True, opt=opt).run(ctx)
    suffix = " +opt" if opt is not None else ""
    titles.append(
        f"{label} {size.name} ({ctx.program.launch_count} launches){suffix}"
    )
    return list(ctx.diagnostics)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SaC/ArrayOL GPU-compilation reproduction (HIPS 2011)",
        epilog=(
            "exit codes: 0 success (lint: clean), 1 lint found errors, "
            "2 usage error, 3 repro error (parse/compile/validation)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile-sac", help="compile a SaC source file")
    p.add_argument("file")
    p.add_argument("--entry", required=True)
    p.add_argument("--target", choices=("cuda", "seq"), default="cuda")
    p.add_argument("--emit", action="store_true", help="print generated CUDA")
    p.set_defaults(fn=_cmd_compile_sac)

    p = sub.add_parser("gaspard", help="run the Gaspard2 OpenCL chain")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--emit", action="store_true", help="print generated OpenCL")
    p.set_defaults(fn=_cmd_gaspard)

    p = sub.add_parser("experiment", help="regenerate a paper artefact")
    p.add_argument(
        "which",
        choices=(
            "table1", "table2", "figure9", "figure12", "claims", "overlap", "all",
        ),
    )
    p.add_argument("--frames", type=int, default=300)
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("overlap", help="stream-pipelining what-if experiment")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--frames", type=int, default=12)
    p.set_defaults(fn=_cmd_overlap)

    p = sub.add_parser(
        "pipeline",
        help="serve the synthetic video through the stream-overlapped runtime",
        description=(
            "Runs either compilation route (or both) over the synthetic video "
            "with the repro.runtime frame pipeline: cached compilation, "
            "bit-exact validation, and a three-engine overlapped schedule "
            "reported against the serial total."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "both"), default="both")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--frames", type=int, default=300)
    p.add_argument(
        "--variant", choices=("nongeneric", "generic"), default="nongeneric",
        help="SaC route variant",
    )
    p.add_argument(
        "--depth", type=int, default=2,
        help="device buffer slots per array (0 = one per run)",
    )
    p.add_argument(
        "--serialize", action="store_true",
        help="disable overlap (the paper's measurement regime)",
    )
    p.add_argument(
        "--no-validate", action="store_true",
        help="skip the bit-exact functional check",
    )
    p.add_argument(
        "--devices", type=int, default=1,
        help="size of the simulated device fleet to shard frames over",
    )
    p.add_argument(
        "--placement",
        choices=("round-robin", "least-loaded", "cache-affinity"),
        default="round-robin",
        help="frame-placement policy when --devices > 1",
    )
    p.add_argument(
        "--lint", action="store_true",
        help="race-check the unrolled pipeline (exit 1 on unexpected findings)",
    )
    p.add_argument(
        "--opt", action="store_true",
        help="also serve the repro.opt-optimised program and report both",
    )
    p.add_argument(
        "--trace", nargs="?", const="trace.json", default=None, metavar="FILE",
        help=(
            "write a Chrome trace-event JSON of the served schedule "
            "(route name inserted when --route both; default FILE trace.json)"
        ),
    )
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.set_defaults(fn=_cmd_pipeline)

    p = sub.add_parser(
        "trace",
        help="write a Chrome/Perfetto trace of a pipeline run",
        description=(
            "Serves the synthetic video through the frame pipeline with the "
            "span tracer enabled and writes a Chrome trace-event JSON: one "
            "track per device engine (h2d/compute/d2h/host) from the modelled "
            "schedule, flow arrows along dependence edges, and the host "
            "wall-clock compile/opt/schedule/execute span tree alongside. "
            "Open the file in https://ui.perfetto.dev or chrome://tracing."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "both"), default="both")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument(
        "--variant", choices=("nongeneric", "generic"), default="nongeneric",
        help="SaC route variant",
    )
    p.add_argument(
        "--depth", type=int, default=2,
        help="device buffer slots per array (0 = one per run)",
    )
    p.add_argument(
        "--serialize", action="store_true",
        help="disable overlap (the paper's measurement regime)",
    )
    p.add_argument(
        "--opt", action="store_true",
        help="trace the repro.opt-optimised program instead of the baseline",
    )
    p.add_argument(
        "--out", default="trace.json",
        help="output file (route name inserted when --route both)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="export the runtime metrics registry (text or JSON)",
        description=(
            "Serves a short run per route and prints the repro.obs metrics "
            "registry: compile-cache counters, device allocator traffic, "
            "schedule engine busy/occupancy and pipeline throughput/latency, "
            "as Prometheus-style text or JSON."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "both"), default="both")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser(
        "serve",
        help="run the async multi-tenant serving tier over a route",
        description=(
            "Puts the repro.serve broker in front of the runtime: a load "
            "generator submits per-frame requests (tenant id + optional "
            "deadline), the dynamic batcher coalesces them into pipeline "
            "batches, admission control and per-tenant quotas reject early "
            "under overload, and sustained SLO pressure degrades service to "
            "CIF frames until load recedes.  Reports goodput, latency "
            "percentiles, batch shapes and every gate's counters."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "both"), default="both")
    p.add_argument("--size", choices=("hd", "cif"), default="cif")
    p.add_argument(
        "--variant", choices=("nongeneric", "generic"), default="nongeneric",
        help="SaC route variant",
    )
    p.add_argument(
        "--depth", type=int, default=2,
        help="device buffer slots per array (0 = one per run)",
    )
    p.add_argument(
        "--opt", action="store_true",
        help="serve the repro.opt-optimised program",
    )
    p.add_argument("--requests", type=int, default=32, help="total requests")
    p.add_argument(
        "--mode", choices=("open", "closed"), default="open",
        help="open loop (fixed offered rate) or closed loop (N clients)",
    )
    p.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop offered load, requests/s of virtual time",
    )
    p.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop client count (one request in flight each)",
    )
    p.add_argument("--tenants", type=int, default=4, help="distinct tenant ids")
    p.add_argument(
        "--max-batch", type=int, default=8,
        help="dynamic batcher flush size",
    )
    p.add_argument(
        "--devices", type=int, default=1,
        help="device fleet size; each batch dispatches to the first-free device",
    )
    p.add_argument(
        "--slo-ms", type=float, default=50.0,
        help="latency SLO driving flush slack and degradation",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline relative to arrival (default: none)",
    )
    p.add_argument(
        "--queue-budget", type=int, default=64,
        help="admission control's pending-request cap",
    )
    p.add_argument(
        "--jitter-seed", type=int, default=None,
        help="seeded exponential inter-arrival jitter (default: uniform gaps)",
    )
    p.add_argument(
        "--no-execute", action="store_true",
        help="model service times only; skip functional execution",
    )
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("downscale", help="downscale one synthetic frame")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--variant", choices=("nongeneric", "generic"), default="nongeneric")
    p.add_argument("--route", choices=("sac", "gaspard"), default="sac")
    p.set_defaults(fn=_cmd_downscale)

    p = sub.add_parser(
        "lint",
        help="run the static-analysis suite (exit 1 on error findings)",
        description=(
            "Runs every registered analyzer (hazards, transfers, bounds, "
            "coalescing, SaC lints, tiler lints) over the compiled downscaler "
            "routes, or over a SaC source file given with --file."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "all"), default="all")
    p.add_argument(
        "--app", choices=("downscaler", "convolution"), default="downscaler",
        help="application to compile and lint",
    )
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--baseline", help="suppression file (CODE [@ location])")
    p.add_argument("--file", help="lint a SaC source file instead of the routes")
    p.add_argument("--entry", help="with --file: also compile and lint the program")
    p.add_argument(
        "--assert-clean", action="store_true",
        help=(
            "optimise the routes with repro.opt first and exit 1 if any "
            "TRANSFER diagnostic survives"
        ),
    )
    p.add_argument(
        "--explain", metavar="CODE",
        help="print the documentation block for one diagnostic code and exit",
    )
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "opt",
        help="optimise the compiled routes and report before/after",
        description=(
            "Compiles the downscaler through either route, runs the repro.opt "
            "pipeline (redundant-transfer elimination, cross-kernel fusion, "
            "liveness-driven memory pooling) and prints a before/after report: "
            "steps removed, bytes saved, modelled microseconds saved and the "
            "peak device footprint."
        ),
    )
    p.add_argument("--route", choices=("sac", "gaspard", "both"), default="both")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument(
        "--variant", choices=("nongeneric", "generic"), default="nongeneric",
        help="SaC route variant",
    )
    p.add_argument(
        "--transfers", choices=("boundary", "per_kernel"), default="per_kernel",
        help=(
            "unoptimised transfer placement: per_kernel is the paper's "
            "measured regime, boundary is the PR-2 default"
        ),
    )
    p.add_argument("--no-dce", action="store_true", help="disable dead-code elimination")
    p.add_argument(
        "--no-transfer-elim", action="store_true",
        help="disable redundant-transfer elimination",
    )
    p.add_argument("--no-fusion", action="store_true", help="disable kernel fusion")
    p.add_argument(
        "--no-sibling-fusion", action="store_true",
        help="disable region-oracle fusion of independent sibling launches",
    )
    p.add_argument("--no-pooling", action="store_true", help="disable memory pooling")
    p.add_argument(
        "--no-certify", action="store_true",
        help="skip re-running the hazard/transfer/bounds analyses",
    )
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.set_defaults(fn=_cmd_opt)

    p = sub.add_parser(
        "tune",
        help="autotune the certified optimisation space with modelled cost",
        description=(
            "Searches the legal configuration space — optimiser pass toggles "
            "and tail order, transfer placement, pipeline depth, ArrayOL "
            "paving granularity, fleet placement — with modelled cost "
            "(makespan + transferred bytes + launches), then re-runs the "
            "winner bit-exactly with certification forced on.  The winning "
            "record is cached per (app, route, size)."
        ),
    )
    p.add_argument(
        "--app", choices=("downscaler", "convolution"), default="downscaler"
    )
    p.add_argument("--route", choices=("sac", "gaspard", "both"), default="both")
    p.add_argument("--size", choices=("hd", "cif"), default="hd")
    p.add_argument(
        "--budget", type=int, default=200,
        help="candidates to visit (memoised revisits included)",
    )
    p.add_argument("--seed", type=int, default=0, help="restart RNG seed")
    p.add_argument(
        "--frames", type=int, default=4,
        help="frames replayed by the modelled schedule",
    )
    p.add_argument(
        "--devices", type=int, default=1,
        help="fleet size; placement policy is tuned only when > 1",
    )
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p.set_defaults(fn=_cmd_tune)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except Exception as err:
        from repro.errors import ReproError

        if isinstance(err, (ReproError, OSError)):
            print(f"error: {err}", file=sys.stderr)
            return EXIT_REPRO_ERROR
        raise


if __name__ == "__main__":
    sys.exit(main())
