"""Device-program optimisation: what the paper's compilers should emit.

Both backends produce correct but literal :class:`~repro.ir.program.
DeviceProgram` sequences; the paper attributes roughly half of each
route's runtime to host↔device transfers and names redundant-transfer
removal and WITH-Loop Folding as the abstraction-preserving cures.  This
package is the cure as a compiler stage, shared by both routes because it
rewrites the common IR:

* :mod:`repro.opt.passes` — dead-code elimination, redundant-transfer
  elimination (the rewriting twin of the XFER lints), liveness-driven
  free sinking + pooled allocation;
* :mod:`repro.opt.fusion` — cross-kernel fusion over single-use
  untransferred intermediates (IR-level WLF), plus fusion of adjacent
  launches whose writes the region oracle proves disjoint;
* :mod:`repro.opt.pipeline` — the pass driver plus the certification
  gate: every optimised program re-validates and must not regress the
  PR-1 hazard/transfer/bounds analyses;
* :mod:`repro.opt.report` — before/after accounting for ``repro opt``
  and ``benchmarks/bench_opt.py``.

Wired through ``CompileOptions(opt=...)`` on the SaC route,
``standard_chain(opt=...)`` on the Gaspard2 route, and the compile-cache
keys of both.
"""

from repro.opt.fusion import fuse_independent_siblings, fuse_program
from repro.opt.options import TAIL_PASSES, OptOptions
from repro.opt.passes import (
    dead_code_elimination,
    eliminate_redundant_transfers,
    sink_frees_to_last_use,
)
from repro.opt.pipeline import certify_program, optimize_program
from repro.opt.report import OptReport, ProgramStats

__all__ = [
    "OptOptions",
    "TAIL_PASSES",
    "OptReport",
    "ProgramStats",
    "optimize_program",
    "certify_program",
    "fuse_program",
    "fuse_independent_siblings",
    "dead_code_elimination",
    "eliminate_redundant_transfers",
    "sink_frees_to_last_use",
]
