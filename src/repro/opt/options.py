"""Optimiser configuration.

Each pass of :func:`repro.opt.optimize_program` is independently
toggleable; ``repr(OptOptions(...))`` participates in the compile-cache
keys of both routes, so every configuration compiles into its own entry.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OptOptions"]


@dataclass(frozen=True)
class OptOptions:
    """Which optimisation passes run, and whether the result is certified."""

    #: dead-code elimination: dead host steps, dead downloads, unlaunched
    #: allocations and their transfers
    dce: bool = True
    #: redundant-transfer elimination: re-uploads of resident data,
    #: download/upload round trips (includes loop-invariant upload hoisting
    #: on unrolled programs)
    transfers: bool = True
    #: cross-kernel fusion over single-use untransferred intermediates
    fusion: bool = True
    #: region-oracle sibling fusion: adjacent launches writing provably
    #: disjoint boxes of one buffer collapse into a single launch
    sibling_fusion: bool = True
    #: liveness-driven pooling: frees move to last use, allocations are
    #: served from the executor's free-list across repeated frames
    pooling: bool = True
    #: re-validate and re-run the hazard/transfer/bounds analyses on the
    #: optimised program; raise OptError on any regression
    certify: bool = True

    @property
    def enabled_passes(self) -> tuple[str, ...]:
        names = []
        if self.dce:
            names.append("dce")
        if self.transfers:
            names.append("transfer-elimination")
        if self.fusion:
            names.append("fusion")
        if self.sibling_fusion:
            names.append("sibling-fusion")
        if self.pooling:
            names.append("pooling")
        return tuple(names)
