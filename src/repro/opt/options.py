"""Optimiser configuration.

Each pass of :func:`repro.opt.optimize_program` is independently
toggleable; ``repr(OptOptions(...))`` participates in the compile-cache
keys of both routes, so every configuration compiles into its own entry.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OptOptions", "TAIL_PASSES"]

#: the reorderable tail passes, in their canonical (historical) order; the
#: DCE/transfer-elimination fixpoint always runs first and is
#: order-insensitive by construction
TAIL_PASSES = ("fusion", "sibling-fusion", "pooling")


@dataclass(frozen=True)
class OptOptions:
    """Which optimisation passes run, and whether the result is certified."""

    #: dead-code elimination: dead host steps, dead downloads, unlaunched
    #: allocations and their transfers
    dce: bool = True
    #: redundant-transfer elimination: re-uploads of resident data,
    #: download/upload round trips (includes loop-invariant upload hoisting
    #: on unrolled programs)
    transfers: bool = True
    #: cross-kernel fusion over single-use untransferred intermediates
    fusion: bool = True
    #: region-oracle sibling fusion: adjacent launches writing provably
    #: disjoint boxes of one buffer collapse into a single launch
    sibling_fusion: bool = True
    #: liveness-driven pooling: frees move to last use, allocations are
    #: served from the executor's free-list across repeated frames
    pooling: bool = True
    #: re-validate and re-run the hazard/transfer/bounds analyses on the
    #: optimised program; raise OptError on any regression
    certify: bool = True
    #: order of the reorderable tail passes (:data:`TAIL_PASSES`);
    #: ``None`` means the canonical order.  Must be a permutation of the
    #: full tail set — disabled passes listed here are simply skipped.
    #: The tuner's pass-ordering search dimension.
    order: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.order is not None and sorted(self.order) != sorted(TAIL_PASSES):
            raise ValueError(
                f"order must be a permutation of {TAIL_PASSES}, "
                f"got {self.order!r}"
            )

    @property
    def effective_order(self) -> tuple[str, ...]:
        """The tail-pass order actually run (``order`` or the canonical)."""
        return TAIL_PASSES if self.order is None else tuple(self.order)

    def _tail_enabled(self, name: str) -> bool:
        return {
            "fusion": self.fusion,
            "sibling-fusion": self.sibling_fusion,
            "pooling": self.pooling,
        }[name]

    @property
    def enabled_passes(self) -> tuple[str, ...]:
        names = []
        if self.dce:
            names.append("dce")
        if self.transfers:
            names.append("transfer-elimination")
        names.extend(p for p in self.effective_order if self._tail_enabled(p))
        return tuple(names)
