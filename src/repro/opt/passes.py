"""Rewriting passes over device programs: DCE, transfer elimination, liveness.

All three passes are pure deletions or reorderings of straight-line op
sequences — none changes what any surviving op computes, which is how the
optimiser keeps the bit-exactness guarantee structural rather than
empirical.  Cross-kernel fusion, the one pass that *replaces* ops, lives
in :mod:`repro.opt.fusion`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)

__all__ = [
    "dead_code_elimination",
    "eliminate_redundant_transfers",
    "sink_frees_to_last_use",
    "launch_reads",
    "launch_writes",
]


def launch_reads(op: LaunchKernel) -> set[str]:
    """Device buffers a launch consumes (``in``/``inout`` bindings)."""
    return {
        buf for param, buf in op.array_args
        if op.kernel.array(param).intent in ("in", "inout")
    }


def launch_writes(op: LaunchKernel) -> set[str]:
    """Device buffers a launch produces (``out``/``inout`` bindings)."""
    return {
        buf for param, buf in op.array_args
        if op.kernel.array(param).intent in ("out", "inout")
    }


def _rebuild(program: DeviceProgram, ops: list) -> DeviceProgram:
    return replace(program, ops=tuple(ops))


def dead_code_elimination(program: DeviceProgram) -> tuple[DeviceProgram, int]:
    """Remove ops whose results nothing downstream consumes.

    One backward liveness sweep over host arrays and device buffers:

    * a download is dead when its host array is never consumed (XFER002);
    * an upload is dead when the device buffer is never read below;
    * a launch is dead when none of its outputs is needed;
    * a host step is dead when none of its writes is needed (the dead
      canvas initialisations of the SaC route — which are also scheduler
      barriers, so removing them unlocks cross-run overlap);
    * allocations/frees of buffers no surviving op touches disappear with
      them (XFER003).

    Kernel writes and host-step writes may be partial updates, so they
    never kill liveness; full-array copies (H2D/D2H) do.  A transfer
    carrying a ``region`` is itself a partial update: a partial download
    merges into the prior host values (so the host array stays live
    upstream), and a partial upload leaves the rest of the buffer as it
    was (so the device buffer stays live upstream).
    """
    ops = list(program.ops)
    keep = [True] * len(ops)
    needed_host = set(program.host_outputs)
    needed_dev: set[str] = set()

    for i in range(len(ops) - 1, -1, -1):
        op = ops[i]
        if isinstance(op, DeviceToHost):
            if op.host in needed_host:
                if op.region is None:
                    needed_host.discard(op.host)
                needed_dev.add(op.device)
            else:
                keep[i] = False
        elif isinstance(op, HostToDevice):
            if op.device in needed_dev:
                if op.region is None:
                    needed_dev.discard(op.device)
                needed_host.add(op.host)
            else:
                keep[i] = False
        elif isinstance(op, LaunchKernel):
            if launch_writes(op) & needed_dev:
                needed_dev.update(launch_reads(op))
            else:
                keep[i] = False
        elif isinstance(op, HostCompute):
            if not op.writes or set(op.writes) & needed_host:
                needed_host.update(op.reads)
            else:
                keep[i] = False

    used: set[str] = set()
    for i, op in enumerate(ops):
        if not keep[i]:
            continue
        if isinstance(op, (HostToDevice, DeviceToHost)):
            used.add(op.device)
        elif isinstance(op, LaunchKernel):
            used.update(buf for _, buf in op.array_args)
    for i, op in enumerate(ops):
        if isinstance(op, (AllocDevice, FreeDevice)) and op.buffer not in used:
            keep[i] = False

    removed = keep.count(False)
    if not removed:
        return program, 0
    return _rebuild(program, [op for i, op in enumerate(ops) if keep[i]]), removed


def eliminate_redundant_transfers(program: DeviceProgram) -> tuple[DeviceProgram, int]:
    """Delete uploads of data the device already holds.

    Forward residency dataflow, the rewriting twin of the XFER001 lint in
    :mod:`repro.analysis.transfers`: an upload whose (host array,
    generation) pair is already resident in the target buffer is a no-op
    and is removed.  Downloads establish residency too, so a
    download→re-upload round trip loses its upload here (and its download
    to DCE once the host copy is unconsumed).  On unrolled frame loops the
    per-iteration re-upload of an unchanged input is exactly such a
    redundant transfer — deleting every copy but the first *is* the
    loop-invariant hoist.

    Partial transfers (``region`` set) are handled conservatively: a
    partial re-upload of an already-resident (host, generation) pair is
    still a no-op and is removed, but a partial transfer never
    *establishes* residency — it moves only a sub-box, so afterwards the
    buffer and the host array are not known to agree everywhere.
    """
    kept: list = []
    removed = 0
    host_gen: dict[str, int] = {}
    resident: dict[str, tuple[str, int]] = {}

    for op in program.ops:
        if isinstance(op, AllocDevice):
            resident.pop(op.buffer, None)
        elif isinstance(op, FreeDevice):
            resident.pop(op.buffer, None)
        elif isinstance(op, HostToDevice):
            gen = host_gen.setdefault(op.host, 0)
            if resident.get(op.device) == (op.host, gen):
                removed += 1
                continue
            if op.region is None:
                resident[op.device] = (op.host, gen)
            else:
                resident.pop(op.device, None)
        elif isinstance(op, DeviceToHost):
            host_gen[op.host] = host_gen.get(op.host, 0) + 1
            if op.region is None:
                resident[op.device] = (op.host, host_gen[op.host])
            else:
                resident.pop(op.device, None)
        elif isinstance(op, LaunchKernel):
            for buf in launch_writes(op):
                resident.pop(buf, None)
        elif isinstance(op, HostCompute):
            for name in op.writes:
                host_gen[name] = host_gen.get(name, 0) + 1
                for buf, (src, _) in list(resident.items()):
                    if src == name:
                        resident.pop(buf)
        kept.append(op)

    if not removed:
        return program, 0
    return _rebuild(program, kept), removed


def sink_frees_to_last_use(program: DeviceProgram) -> tuple[DeviceProgram, int]:
    """Move every ``FreeDevice`` to just after its buffer's last use.

    Both backends free at program end, so buffer live ranges span the
    whole program; sinking each free to the last touching op shrinks the
    static peak footprint, and marking the program :attr:`~repro.ir.
    program.DeviceProgram.pooled` lets the executor's free-list recycle
    the blocks across repeated frames.
    """
    freed = {op.buffer for op in program.ops if isinstance(op, FreeDevice)}
    if not freed:
        return replace(program, pooled=True), 0

    last_use: dict[str, int] = {}
    for i, op in enumerate(program.ops):
        if isinstance(op, AllocDevice) and op.buffer in freed:
            last_use[op.buffer] = i
        elif isinstance(op, (HostToDevice, DeviceToHost)) and op.device in freed:
            last_use[op.device] = i
        elif isinstance(op, LaunchKernel):
            for _, buf in op.array_args:
                if buf in freed:
                    last_use[buf] = i

    moved = sum(
        1 for i, op in enumerate(program.ops)
        if isinstance(op, FreeDevice) and i != last_use[op.buffer] + 1
    )
    after: dict[int, list[str]] = {}
    for buf, i in last_use.items():
        after.setdefault(i, []).append(buf)
    ops: list = []
    for i, op in enumerate(program.ops):
        if isinstance(op, FreeDevice):
            continue
        ops.append(op)
        for buf in after.get(i, ()):
            ops.append(FreeDevice(buf))
    return replace(_rebuild(program, ops), pooled=True), moved
