"""Before/after accounting of one optimiser run.

``repro opt`` renders this; ``benchmarks/bench_opt.py`` records it into
``BENCH_opt.json``.  Static numbers (op counts, transferred bytes, peak
footprint) come straight from the program; modelled serial microseconds
come from a timing-only executor replay when one is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.fused import FusedKernel
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostToDevice,
    LaunchKernel,
)

__all__ = ["ProgramStats", "OptReport"]


@dataclass(frozen=True)
class ProgramStats:
    """Static shape of one device program (plus optional modelled time)."""

    ops: int
    launches: int
    h2d: int
    d2h: int
    host_steps: int
    transferred_bytes: int
    #: max over program points of the live allocation bytes
    peak_device_bytes: int
    #: largest per-launch scratch a fused kernel keeps live transiently
    scratch_bytes: int
    serial_us: float | None = None

    @classmethod
    def of(cls, program: DeviceProgram, executor=None) -> "ProgramStats":
        sizes: dict[str, int] = {}
        transferred = 0
        live = 0
        peak = 0
        scratch = 0
        for op in program.ops:
            if isinstance(op, AllocDevice):
                sizes[op.buffer] = op.nbytes
                live += op.nbytes
                peak = max(peak, live)
            elif isinstance(op, FreeDevice):
                live -= sizes.get(op.buffer, 0)
            elif isinstance(op, (HostToDevice, DeviceToHost)):
                transferred += sizes.get(op.device, 0)
            elif isinstance(op, LaunchKernel) and isinstance(op.kernel, FusedKernel):
                scratch = max(scratch, op.kernel.scratch_nbytes)
        serial_us = None
        if executor is not None:
            serial_us = executor.run(program, functional=False).total_us
            executor.memory.reset()
        return cls(
            ops=len(program.ops),
            launches=program.launch_count,
            h2d=program.h2d_count,
            d2h=program.d2h_count,
            host_steps=program.host_compute_count,
            transferred_bytes=transferred,
            peak_device_bytes=peak,
            scratch_bytes=scratch,
            serial_us=serial_us,
        )

    def as_dict(self) -> dict:
        out = {
            "ops": self.ops,
            "launches": self.launches,
            "h2d": self.h2d,
            "d2h": self.d2h,
            "host_steps": self.host_steps,
            "transferred_bytes": self.transferred_bytes,
            "peak_device_bytes": self.peak_device_bytes,
            "scratch_bytes": self.scratch_bytes,
        }
        if self.serial_us is not None:
            out["serial_us"] = round(self.serial_us, 3)
        return out


@dataclass(frozen=True)
class OptReport:
    """What one :func:`repro.opt.optimize_program` run did."""

    program: str
    options: object
    before: ProgramStats
    after: ProgramStats
    #: (pass name, one-line summary) per executed pass
    passes: tuple[tuple[str, str], ...] = ()
    buffers_eliminated: tuple[str, ...] = ()
    certified: bool = False
    diagnostics: tuple = field(default=(), compare=False)

    @property
    def steps_removed(self) -> int:
        return self.before.ops - self.after.ops

    @property
    def bytes_saved(self) -> int:
        return self.before.transferred_bytes - self.after.transferred_bytes

    @property
    def us_saved(self) -> float | None:
        if self.before.serial_us is None or self.after.serial_us is None:
            return None
        return self.before.serial_us - self.after.serial_us

    @property
    def peak_saved(self) -> int:
        return self.before.peak_device_bytes - self.after.peak_device_bytes

    def as_dict(self) -> dict:
        out = {
            "program": self.program,
            "options": repr(self.options),
            "before": self.before.as_dict(),
            "after": self.after.as_dict(),
            "steps_removed": self.steps_removed,
            "bytes_saved": self.bytes_saved,
            "peak_bytes_saved": self.peak_saved,
            "buffers_eliminated": list(self.buffers_eliminated),
            "passes": [{"pass": n, "summary": s} for n, s in self.passes],
            "certified": self.certified,
        }
        if self.us_saved is not None:
            out["us_saved"] = round(self.us_saved, 3)
        return out

    def render(self) -> str:
        """Human-readable before/after table."""
        b, a = self.before, self.after
        rows = [
            ("ops", b.ops, a.ops),
            ("launches", b.launches, a.launches),
            ("H2D transfers", b.h2d, a.h2d),
            ("D2H transfers", b.d2h, a.d2h),
            ("host steps", b.host_steps, a.host_steps),
            ("transferred bytes", b.transferred_bytes, a.transferred_bytes),
            ("peak device bytes", b.peak_device_bytes, a.peak_device_bytes),
        ]
        if b.serial_us is not None and a.serial_us is not None:
            rows.append(("modelled serial us", round(b.serial_us, 1),
                         round(a.serial_us, 1)))
        lines = [f"optimised {self.program}"]
        width = max(len(r[0]) for r in rows)
        for label, before, after in rows:
            lines.append(f"  {label:<{width}}  {before:>14} -> {after:>14}")
        if a.scratch_bytes:
            lines.append(f"  fused-kernel scratch (transient): {a.scratch_bytes} bytes")
        if self.buffers_eliminated:
            lines.append(
                "  buffers eliminated by fusion: "
                + ", ".join(self.buffers_eliminated)
            )
        for name, summary in self.passes:
            lines.append(f"  pass {name}: {summary}")
        lines.append(f"  certified hazard-free: {'yes' if self.certified else 'no'}")
        return "\n".join(lines)
