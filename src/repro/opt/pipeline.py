"""The optimisation pipeline driver and its certification gate.

:func:`optimize_program` runs the enabled passes — DCE and transfer
elimination to a joint fixpoint (each unlocks work for the other), then
the reorderable tail (fusion, region-oracle sibling fusion, liveness
pooling, in ``options.effective_order``) — and, unless disabled,
**certifies** the result: the optimised program must re-validate
structurally and must not add any finding to the PR-1 hazard, transfer
or bounds analyses relative to the input program.  Certification failure
raises :class:`~repro.errors.OptError` rather than returning a silently
wrong program.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import OptError
from repro.ir.program import DeviceProgram
from repro.ir.validate import validate_program
from repro.obs.span import current_tracer
from repro.opt.fusion import fuse_independent_siblings, fuse_program
from repro.opt.options import OptOptions
from repro.opt.passes import (
    dead_code_elimination,
    eliminate_redundant_transfers,
    sink_frees_to_last_use,
)
from repro.opt.report import OptReport, ProgramStats

__all__ = ["optimize_program", "certify_program"]

#: analyzer passes re-run by certification (coalescing is a per-kernel
#: style lint, unaffected by op rewriting)
_CERTIFY_PASSES = ("hazards", "transfers", "bounds")


def _finding_counts(diags) -> Counter:
    return Counter((d.code, d.severity) for d in diags)


def certify_program(
    before: DeviceProgram, after: DeviceProgram, options: OptOptions
) -> tuple:
    """Validate ``after`` and prove the analyses did not regress.

    Returns the diagnostics of the optimised program; raises
    :class:`OptError` when the optimised program is structurally invalid
    or triggers any finding its input did not already trigger — findings
    *inherited* from the input (e.g. the races a naive transfer placement
    carries until the passes that remove it have all run) are not the
    optimiser's regression.  One further exception: a new *warning* whose
    ``fixable_by`` pass is disabled in ``options`` is tolerated — with
    DCE off, deleting a redundant upload legitimately leaves a dead
    download the transfer lint now sees; only DCE could remove it.
    """
    from repro.analysis import analyze_program

    try:
        validate_program(after)
    except Exception as err:
        raise OptError(
            f"optimised program {after.name!r} failed validation: {err}"
        ) from err

    base = _finding_counts(analyze_program(before, only=_CERTIFY_PASSES))
    diags = analyze_program(after, only=_CERTIFY_PASSES)
    disabled = set()
    if not options.dce:
        disabled.add("dce")
    if not options.transfers:
        disabled.add("transfer-elimination")
    budget = dict(base)
    regressed = []
    for d in diags:
        key = (d.code, d.severity)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        elif d.is_error or d.fixable_by not in disabled:
            regressed.append(d)
    if regressed:
        raise OptError(
            f"optimisation of {after.name!r} introduced new findings: "
            + "; ".join(f"{d.code}: {d.message}" for d in regressed)
        )
    return tuple(diags)


def optimize_program(
    program: DeviceProgram,
    options: OptOptions | None = None,
    executor=None,
) -> tuple[DeviceProgram, OptReport]:
    """Optimise ``program``; returns ``(optimised, report)``.

    Pass ``executor`` (a :class:`~repro.gpu.executor.GPUExecutor`) to have
    the report include modelled serial microseconds before and after.
    """
    options = OptOptions() if options is None else options
    tracer = current_tracer()
    before = program
    notes: list[tuple[str, str]] = []
    eliminated: tuple[str, ...] = ()

    with tracer.span(f"opt:{program.name}", category="opt") as opt_span:
        # DCE and transfer elimination feed each other: removing a redundant
        # upload makes its source download dead, removing a dead host step
        # makes its download dead, and so on — iterate to a joint fixpoint
        for _ in range(len(program.ops) + 1):
            changed = 0
            if options.dce:
                with tracer.span("opt-pass:dce", category="opt-pass") as sp:
                    program, n = dead_code_elimination(program)
                    sp.set(removed=n)
                if n:
                    notes.append(("dce", f"removed {n} dead ops"))
                changed += n
            if options.transfers:
                with tracer.span(
                    "opt-pass:transfer-elimination", category="opt-pass"
                ) as sp:
                    program, n = eliminate_redundant_transfers(program)
                    sp.set(removed=n)
                if n:
                    notes.append(("transfer-elimination",
                                  f"removed {n} redundant uploads"))
                changed += n
            if not changed:
                break

        def _run_fusion(prog: DeviceProgram) -> DeviceProgram:
            nonlocal eliminated
            with tracer.span("opt-pass:fusion", category="opt-pass") as sp:
                prog, buffers = fuse_program(prog)
                sp.set(fused_buffers=len(buffers))
            eliminated = eliminated + tuple(buffers)
            if buffers:
                notes.append(
                    ("fusion",
                     f"fused {len(buffers)} intermediate(s): {', '.join(buffers)}")
                )
            if options.dce:  # fusion can strand allocations of moved frees
                with tracer.span("opt-pass:dce", category="opt-pass") as sp:
                    prog, n = dead_code_elimination(prog)
                    sp.set(removed=n)
                if n:
                    notes.append(("dce", f"removed {n} dead ops after fusion"))
            return prog

        def _run_sibling_fusion(prog: DeviceProgram) -> DeviceProgram:
            # the region oracle proves adjacent same-buffer writers disjoint;
            # whole-buffer fusion can never legalise these pairs
            with tracer.span(
                "opt-pass:sibling-fusion", category="opt-pass"
            ) as sp:
                prog, n = fuse_independent_siblings(prog)
                sp.set(fused_pairs=n)
            if n:
                notes.append(
                    ("sibling-fusion",
                     f"fused {n} independent sibling launch pair(s)")
                )
            return prog

        def _run_pooling(prog: DeviceProgram) -> DeviceProgram:
            with tracer.span("opt-pass:pooling", category="opt-pass") as sp:
                prog, moved = sink_frees_to_last_use(prog)
                sp.set(frees_sunk=moved)
            notes.append(
                ("pooling",
                 f"sank {moved} frees to last use; pooled allocation enabled")
            )
            return prog

        # the tail passes run in the (tunable) order of the options; each
        # stage only fires when its toggle is on
        stages = {
            "fusion": (options.fusion, _run_fusion),
            "sibling-fusion": (options.sibling_fusion, _run_sibling_fusion),
            "pooling": (options.pooling, _run_pooling),
        }
        for pass_name in options.effective_order:
            enabled, stage = stages[pass_name]
            if enabled:
                program = stage(program)

        diagnostics: tuple = ()
        certified = False
        if options.certify:
            with tracer.span("opt-pass:certify", category="opt-pass") as sp:
                diagnostics = certify_program(before, program, options)
                sp.set(findings=len(diagnostics))
            certified = True
        opt_span.set(
            passes=len(notes),
            ops_before=len(before.ops),
            ops_after=len(program.ops),
        )

    report = OptReport(
        program=program.name,
        options=options,
        before=ProgramStats.of(before, executor),
        after=ProgramStats.of(program, executor),
        passes=tuple(notes),
        buffers_eliminated=eliminated,
        certified=certified,
        diagnostics=diagnostics,
    )
    return program, report
