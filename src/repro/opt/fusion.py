"""Cross-kernel fusion over single-use untransferred intermediates.

The IR-level generalisation of SaC's WITH-Loop Folding
(``sac/opt/wlf.py``), applicable to both routes because it works on the
shared :class:`~repro.ir.program.DeviceProgram`: when a device buffer is
written by one group of launches and read by another, is never
transferred, and nothing else touches it, all those launches collapse
into a single :class:`~repro.ir.fused.FusedKernel` launch and the buffer
becomes launch-private scratch — its allocation, free and inter-launch
synchronisation disappear.

Unlike the AST-level WLF, the stage bodies are *not* substituted into
each other (on the calibrated cost model inline substitution multiplies
the per-item read counts of issue-bound kernels and loses time); the
stages execute back to back inside one launch, saving the per-launch
overhead — the dominant kernel-side cost of the paper's small filters.

A second pass, :func:`fuse_independent_siblings`, uses the access-region
oracle of :mod:`repro.analysis.regions` for launches the intermediate
pass cannot touch: two adjacent launches that write provably *disjoint*
regions of the same buffer (the generic downscaler's main-box/remainder
launch pairs) share no data at all, so they collapse into one launch and
pay one launch overhead.  Whole-buffer reasoning can never prove this —
both launches "write the buffer" — which is exactly why the oracle is
the legality gate here.
"""

from __future__ import annotations

from repro.ir.fused import make_fused_launch
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)
from repro.opt.passes import _rebuild, launch_reads, launch_writes

__all__ = ["fuse_program", "fuse_independent_siblings"]


def _spaces_compatible(stages: list[LaunchKernel]) -> bool:
    """All stage index spaces must share a rank (one cooperative grid)."""
    ranks = {st.kernel.space.rank for st in stages}
    return len(ranks) == 1


def _inputs_available_at_entry(stages: list[LaunchKernel], internal: set[str]) -> bool:
    """Later stages must not pull in external inputs the first stage
    doesn't already wait for — otherwise the fused launch could start
    later than the original first launch and lose schedule overlap."""
    entry_reads = launch_reads(stages[0]) - internal
    produced: set[str] = set()
    for st in stages:
        if (launch_reads(st) - internal) - entry_reads - produced:
            return False
        produced |= launch_writes(st)
    return True


def _transfer_clear_of_group(program: DeviceProgram, t: int, group: list[int]) -> bool:
    """A transfer interleaved with a launch group is movable past the
    fused launch when the region oracle proves it independent of every
    stage — it touches a provably disjoint box of the shared buffer, so
    reordering it after the group cannot change any value it moves."""
    from repro.analysis.regions import RegionOracle

    oracle = RegionOracle(program)
    return all(oracle.independent(t, g) for g in group)


def _candidate(program: DeviceProgram) -> tuple[str, list[int]] | None:
    """Find one fusable intermediate; returns (buffer, group launch indices)."""
    allocs: dict[str, AllocDevice] = {
        op.buffer: op for op in program.ops if isinstance(op, AllocDevice)
    }
    transferred = {
        op.device for op in program.ops
        if isinstance(op, (HostToDevice, DeviceToHost))
    }
    for buf, alloc in allocs.items():
        if buf in transferred:
            continue
        group = [
            i for i, op in enumerate(program.ops)
            if isinstance(op, LaunchKernel)
            and buf in {b for _, b in op.array_args}
        ]
        if len(group) < 2:
            continue
        writers = [i for i in group if buf in launch_writes(program.ops[i])]
        readers = [i for i in group if buf in launch_reads(program.ops[i])]
        if not writers or not readers:
            continue
        stages = [program.ops[i] for i in group]
        if not _spaces_compatible(stages):
            continue
        if not _inputs_available_at_entry(stages, {buf}):
            continue
        group_bufs = {b for st in stages for _, b in st.array_args}
        ok = True
        for i in range(group[0] + 1, group[-1]):
            if i in group:
                continue
            op = program.ops[i]
            if isinstance(op, LaunchKernel):
                if {b for _, b in op.array_args} & group_bufs:
                    ok = False
                    break
            elif isinstance(op, (HostToDevice, DeviceToHost)):
                if op.device in group_bufs and not _transfer_clear_of_group(
                    program, i, group
                ):
                    ok = False
                    break
            elif isinstance(op, FreeDevice) and op.buffer in group_bufs:
                ok = False
                break
            # AllocDevice and HostCompute ops are movable past the group
        if ok:
            return buf, group
    return None


def fuse_program(program: DeviceProgram) -> tuple[DeviceProgram, list[str]]:
    """Fuse every eligible launch group; returns the eliminated buffers."""
    eliminated: list[str] = []
    while True:
        found = _candidate(program)
        if found is None:
            return program, eliminated
        buf, group = found
        allocs = {
            op.buffer: op for op in program.ops if isinstance(op, AllocDevice)
        }
        # scratch geometry of previously fused stages is carried by their
        # internal params; make_fused_launch merges it when flattening
        stages = tuple(program.ops[i] for i in group)
        fused_launch = make_fused_launch(
            name=f"fused_{buf}", stages=stages, internal_buffers={buf},
            geometry=allocs,
        )
        group_bufs = {b for st in stages for _, b in st.array_args}

        first, last = group[0], group[-1]
        hoisted: list = []
        between: list = []
        for i in range(first + 1, last):
            if i in group:
                continue
            op = program.ops[i]
            if isinstance(op, AllocDevice) and op.buffer == buf:
                continue  # the eliminated intermediate's allocation
            if isinstance(op, AllocDevice) and op.buffer in group_bufs:
                hoisted.append(op)
            else:
                between.append(op)
        ops = (
            [
                op for op in program.ops[:first]
                if not (isinstance(op, AllocDevice) and op.buffer == buf)
            ]
            + hoisted
            + [fused_launch]
            + between
            + [
                op for op in program.ops[last + 1:]
                if not (isinstance(op, FreeDevice) and op.buffer == buf)
            ]
        )
        program = _rebuild(program, ops)
        eliminated.append(buf)


def _sibling_candidate(program: DeviceProgram) -> tuple[int, int] | None:
    """One fusable pair of adjacent independent launches, or ``None``.

    Eligible pairs are consecutive launches that write the same buffer
    but — per the region oracle — provably disjoint boxes of it (and
    share nothing else with a write involved).  The whole-buffer view
    sees two writers of one buffer and must refuse; the oracle is what
    makes this fusion legal at all.
    """
    from repro.analysis.regions import RegionOracle

    launches = [
        i for i, op in enumerate(program.ops) if isinstance(op, LaunchKernel)
    ]
    oracle = None
    for a, b in zip(launches, launches[1:]):
        la, lb = program.ops[a], program.ops[b]
        if la.kernel.space.rank != lb.kernel.space.rank:
            continue
        if not (launch_writes(la) & launch_writes(lb)):
            continue
        if not _inputs_available_at_entry([la, lb], set()):
            continue
        pair_bufs = {buf for st in (la, lb) for _, buf in st.array_args}
        clear = True
        for i in range(a + 1, b):
            op = program.ops[i]
            if isinstance(op, AllocDevice):
                continue  # host-side bookkeeping, movable
            if (
                isinstance(op, (HostToDevice, DeviceToHost))
                and op.device not in pair_bufs
            ):
                continue
            clear = False
            break
        if not clear:
            continue
        if oracle is None:
            oracle = RegionOracle(program)
        if oracle.may_alias(a, b):
            continue
        return a, b
    return None


def fuse_independent_siblings(program: DeviceProgram) -> tuple[DeviceProgram, int]:
    """Fuse adjacent launches that write disjoint regions of one buffer.

    The generic downscaler's tiled launches come in main-box/remainder
    pairs: both write the same output buffer, so the intermediate-based
    :func:`fuse_program` can never group them, and under whole-buffer
    reasoning they look like they share data.  The region oracle proves
    each pair touches disjoint strided boxes; fusing them keeps the stage
    order (bit-exactness is structural) and pays one launch overhead for
    the pair.  Returns ``(program, pairs fused)``.
    """
    fused = 0
    while True:
        found = _sibling_candidate(program)
        if found is None:
            return program, fused
        a, b = found
        la, lb = program.ops[a], program.ops[b]
        allocs = {
            op.buffer: op for op in program.ops if isinstance(op, AllocDevice)
        }
        shared = launch_writes(la) & launch_writes(lb)
        launch = make_fused_launch(
            name=f"sibling_{min(shared)}",
            stages=(la, lb),
            internal_buffers=set(),
            geometry=allocs,
        )
        ops = list(program.ops)
        program = _rebuild(
            program, ops[:a] + [launch] + ops[a + 1: b] + ops[b + 1:]
        )
        fused += 1
