"""Scheduling of ArrayOL compound tasks.

ArrayOL only expresses true data dependences (paper Section II-A): any
schedule respecting them computes the same result.  We derive the canonical
one — a deterministic topological order of the instance dataflow graph —
plus the buffer liveness information the transformation chain uses for
allocation.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import SchedulingError
from repro.arrayol.model import CompoundTask
from repro.arrayol.validate import dataflow_graph

__all__ = ["schedule_instances", "buffer_bindings"]


def schedule_instances(task: CompoundTask) -> list[str]:
    """Deterministic topological order of the compound's instances."""
    g = dataflow_graph(task)
    try:
        return list(nx.lexicographical_topological_sort(g))
    except nx.NetworkXUnfeasible:
        raise SchedulingError("dataflow graph has a cycle", task.name) from None


def buffer_bindings(task: CompoundTask) -> dict[tuple[str, str], str]:
    """Map every linked instance port to its dataflow buffer name.

    Endpoints connected by a link share a buffer; compound ports use their
    own names (they are the application's external arrays).
    """
    bindings: dict[tuple[str, str], str] = {}
    for link in task.links:
        if link.src[0] == "":
            buf = link.src[1]
        elif link.dst[0] == "":
            buf = link.dst[1]
        else:
            buf = f"{link.src[0]}_{link.src[1]}"
        bindings[link.src] = buf
        bindings[link.dst] = buf
    return bindings
