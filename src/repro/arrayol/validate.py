"""Model validation: the GILR well-formedness rules.

Checks (paper Section II-A):

* tiler geometry matches the ports it connects (array shape, pattern
  shape, repetition space);
* output tilers respect single assignment (no array element written
  twice) and produce the whole array (exactness);
* compound links connect existing ports with equal shapes and compatible
  directions, every input is driven exactly once, and the dataflow graph
  is acyclic (a schedule exists).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ModelValidationError, SchedulingError
from repro.arrayol.model import (
    ApplicationModel,
    CompoundTask,
    ElementaryTask,
    IOTask,
    RepetitiveTask,
    Task,
)
from repro.tilers import is_exact, is_injective

__all__ = ["validate_model", "validate_task", "dataflow_graph"]


def validate_model(model: ApplicationModel) -> None:
    validate_task(model.top)


def validate_task(task: Task) -> None:
    if isinstance(task, RepetitiveTask):
        _validate_repetitive(task)
        validate_task(task.inner)
    elif isinstance(task, CompoundTask):
        _validate_compound(task)
        for inst in task.instances:
            validate_task(inst.task)
    elif isinstance(task, (ElementaryTask, IOTask)):
        pass  # ElementaryTask validates itself on construction
    else:
        raise ModelValidationError(f"unknown task kind {type(task).__name__}", task.name)


def _validate_repetitive(task: RepetitiveTask) -> None:
    inner = task.inner
    if inner is None:
        raise ModelValidationError("repetitive task has no inner task", task.name)
    connected_inner: set[str] = set()
    for conn, role in [(c, "input") for c in task.input_tilers] + [
        (c, "output") for c in task.output_tilers
    ]:
        outer = task.port(conn.outer_port)
        inner_port = inner.port(conn.inner_port)
        t = conn.tiler
        if t.array_shape != outer.shape:
            raise ModelValidationError(
                f"{role} tiler on {conn.inner_port!r}: array shape "
                f"{t.array_shape} != outer port shape {outer.shape}",
                task.name,
            )
        if t.pattern_shape != inner_port.shape:
            raise ModelValidationError(
                f"{role} tiler on {conn.inner_port!r}: pattern shape "
                f"{t.pattern_shape} != inner port shape {inner_port.shape}",
                task.name,
            )
        if t.repetition_shape != task.repetition:
            raise ModelValidationError(
                f"{role} tiler on {conn.inner_port!r}: repetition space "
                f"{t.repetition_shape} != task repetition {task.repetition}",
                task.name,
            )
        if role == "input" and outer.direction != "in":
            raise ModelValidationError(
                f"input tiler bound to non-input port {conn.outer_port!r}", task.name
            )
        if role == "output":
            if outer.direction != "out":
                raise ModelValidationError(
                    f"output tiler bound to non-output port {conn.outer_port!r}",
                    task.name,
                )
            # single assignment: every element written at most once, and the
            # task must produce its whole output array
            if not is_injective(t):
                raise ModelValidationError(
                    f"output tiler on {conn.inner_port!r} writes elements twice "
                    f"(single assignment violated)",
                    task.name,
                )
            if not is_exact(t):
                raise ModelValidationError(
                    f"output tiler on {conn.inner_port!r} does not produce the "
                    f"whole array",
                    task.name,
                )
        connected_inner.add(conn.inner_port)
    for p in (*inner.inputs, *inner.outputs):
        if p.name not in connected_inner:
            raise ModelValidationError(
                f"inner port {p.name!r} has no tiler connector", task.name
            )


def dataflow_graph(task: CompoundTask) -> nx.DiGraph:
    """Instance-level dependence graph (edges follow links)."""
    g = nx.DiGraph()
    for inst in task.instances:
        g.add_node(inst.name)
    for link in task.links:
        src_inst, _ = link.src
        dst_inst, _ = link.dst
        if src_inst and dst_inst:
            g.add_edge(src_inst, dst_inst)
    return g


def _endpoint_port(task: CompoundTask, end: tuple[str, str], expect: str):
    inst_name, port_name = end
    if inst_name == "":
        return task.port(port_name)
    inst = task.instance(inst_name)
    return inst.task.port(port_name)


def _validate_compound(task: CompoundTask) -> None:
    driven: set[tuple[str, str]] = set()
    for link in task.links:
        src = _endpoint_port(task, link.src, "src")
        dst = _endpoint_port(task, link.dst, "dst")
        if src.shape != dst.shape:
            raise ModelValidationError(
                f"link {link.src} -> {link.dst}: shape {src.shape} != {dst.shape}",
                task.name,
            )
        # direction: a source is an instance output or a compound input;
        # a destination is an instance input or a compound output
        src_ok = (link.src[0] == "" and src.direction == "in") or (
            link.src[0] != "" and src.direction == "out"
        )
        dst_ok = (link.dst[0] == "" and dst.direction == "out") or (
            link.dst[0] != "" and dst.direction == "in"
        )
        if not src_ok or not dst_ok:
            raise ModelValidationError(
                f"link {link.src} -> {link.dst} violates port directions", task.name
            )
        if link.dst in driven:
            raise ModelValidationError(
                f"destination {link.dst} driven by multiple links", task.name
            )
        driven.add(link.dst)

    # every instance input must be driven
    for inst in task.instances:
        for p in inst.task.inputs:
            if (inst.name, p.name) not in driven:
                raise ModelValidationError(
                    f"input {inst.name}.{p.name} is not driven", task.name
                )
    for p in task.outputs:
        if ("", p.name) not in driven:
            raise ModelValidationError(
                f"compound output {p.name!r} is not driven", task.name
            )

    g = dataflow_graph(task)
    if not nx.is_directed_acyclic_graph(g):
        cycle = nx.find_cycle(g)
        raise SchedulingError(
            f"dataflow cycle: {' -> '.join(str(e[0]) for e in cycle)}", task.name
        )
