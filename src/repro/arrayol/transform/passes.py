"""The concrete passes of the Gaspard2 OpenCL chain.

Ordered as in the Gaspard2 tooling: validate, flatten the task hierarchy,
schedule, bind dataflow buffers, map repetition spaces to ND-ranges,
generate kernels, then emit the executable program and the OpenCL sources.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TransformError
from repro.arrayol.backend.lower import kernel_for_repetitive
from repro.arrayol.backend.openclgen import opencl_source
from repro.arrayol.model import (
    ApplicationModel,
    CompoundTask,
    IOTask,
    Link,
    RepetitiveTask,
    TaskInstance,
)
from repro.arrayol.schedule import buffer_bindings, schedule_instances
from repro.arrayol.transform.chain import GaspardContext, ModelPass, TransformationChain
from repro.arrayol.validate import validate_model
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    LaunchKernel,
)

__all__ = ["standard_chain", "opencl_chain_passes"]


# -- pass 1: validation --------------------------------------------------------


def _validate(ctx: GaspardContext) -> None:
    validate_model(ctx.model)


# -- pass 2: hierarchy flattening ------------------------------------------------


def _flatten(ctx: GaspardContext) -> None:
    top = ctx.model.top
    for _ in range(16):
        compounds = [i for i in top.instances if isinstance(i.task, CompoundTask)]
        if not compounds:
            break
        top = _flatten_once(top, compounds[0])
    else:
        raise TransformError("hierarchy deeper than 16 levels")
    ctx.model = ApplicationModel(name=ctx.model.name, top=top)
    # the allocation must now cover the flattened instances
    ctx.allocation.validate_against(top)


def _flatten_once(top: CompoundTask, target: TaskInstance) -> CompoundTask:
    inner: CompoundTask = target.task  # type: ignore[assignment]
    prefix = target.name

    new_instances = [i for i in top.instances if i.name != target.name]
    new_instances += [
        TaskInstance(name=f"{prefix}_{i.name}", task=i.task) for i in inner.instances
    ]

    # producers/consumers of the compound's own ports, inside it
    inner_consumers: dict[str, list[tuple[str, str]]] = {}
    inner_producers: dict[str, tuple[str, str]] = {}
    new_links: list[Link] = []
    for link in inner.links:
        s_inst, s_port = link.src
        d_inst, d_port = link.dst
        if s_inst == "" and d_inst == "":
            raise TransformError(
                f"{inner.name}: direct port-to-port links are not supported"
            )
        if s_inst == "":
            inner_consumers.setdefault(s_port, []).append(
                (f"{prefix}_{d_inst}", d_port)
            )
        elif d_inst == "":
            inner_producers[d_port] = (f"{prefix}_{s_inst}", s_port)
        else:
            new_links.append(
                Link(src=(f"{prefix}_{s_inst}", s_port), dst=(f"{prefix}_{d_inst}", d_port))
            )

    for link in top.links:
        if link.dst[0] == target.name:
            for consumer in inner_consumers.get(link.dst[1], []):
                new_links.append(Link(src=link.src, dst=consumer))
        elif link.src[0] == target.name:
            producer = inner_producers.get(link.src[1])
            if producer is None:
                raise TransformError(
                    f"{inner.name}: output {link.src[1]!r} has no inner producer"
                )
            new_links.append(Link(src=producer, dst=link.dst))
        else:
            new_links.append(link)

    return CompoundTask(
        name=top.name,
        inputs=top.inputs,
        outputs=top.outputs,
        instances=tuple(new_instances),
        links=tuple(new_links),
    )


# -- pass 3: scheduling --------------------------------------------------------


def _schedule(ctx: GaspardContext) -> None:
    ctx.schedule = schedule_instances(ctx.model.top)


# -- pass 4: buffer binding ------------------------------------------------------


def _bind_buffers(ctx: GaspardContext) -> None:
    top = ctx.model.top
    ctx.buffers = buffer_bindings(top)
    shapes: dict[str, tuple[int, ...]] = {}
    dtypes: dict[str, str] = {}
    for (inst_name, port_name), buf in ctx.buffers.items():
        if inst_name == "":
            port = top.port(port_name)
        else:
            port = top.instance(inst_name).task.port(port_name)
        prev = shapes.get(buf)
        if prev is not None and prev != port.shape:
            raise TransformError(
                f"buffer {buf!r} bound to ports of different shapes "
                f"{prev} vs {port.shape}"
            )
        prev_dtype = dtypes.get(buf)
        if prev_dtype is not None and prev_dtype != port.dtype:
            raise TransformError(
                f"buffer {buf!r} bound to ports of different dtypes "
                f"{prev_dtype} vs {port.dtype}"
            )
        shapes[buf] = port.shape
        dtypes[buf] = port.dtype
    ctx.buffer_shapes = shapes
    ctx.buffer_dtypes = dtypes


# -- pass 5: ND-range mapping ------------------------------------------------------


def _map_ndranges(ctx: GaspardContext) -> None:
    for inst in ctx.model.top.instances:
        if isinstance(inst.task, RepetitiveTask):
            ctx.ndranges[inst.name] = inst.task.repetition


# -- pass 6: kernel generation -----------------------------------------------------


def _generate_kernels(ctx: GaspardContext) -> None:
    for inst in ctx.model.top.instances:
        if not isinstance(inst.task, RepetitiveTask):
            continue
        if not ctx.allocation.on_device(inst.name):
            continue
        port_to_buffer = {
            port_name: buf
            for (i, port_name), buf in ctx.buffers.items()
            if i == inst.name
        }
        ctx.kernels[inst.name] = kernel_for_repetitive(
            inst.task, kernel_name=inst.name, buffer_of_port=port_to_buffer
        )


# -- pass 7: program emission --------------------------------------------------------


def _emit_program(ctx: GaspardContext, transfers: str = "boundary") -> None:
    top = ctx.model.top
    on_device: set[str] = set()
    host_defined: set[str] = set(p.name for p in top.inputs)
    allocated: list[str] = []
    ops = ctx.ops

    def dev(buf: str) -> str:
        return f"d_{buf}"

    def alloc(buf: str) -> None:
        if dev(buf) not in allocated:  # per_kernel mode revisits live buffers
            ops.append(
                AllocDevice(dev(buf), ctx.buffer_shapes[buf],
                            ctx.buffer_dtypes.get(buf, "int32"))
            )
            allocated.append(dev(buf))

    def ensure_device(buf: str) -> None:
        if buf in on_device:
            return
        alloc(buf)
        ops.append(HostToDevice(buf, dev(buf)))
        on_device.add(buf)

    def ensure_host(buf: str) -> None:
        if buf in host_defined:
            return
        if buf in on_device:
            ops.append(DeviceToHost(dev(buf), buf))
            host_defined.add(buf)
            return
        raise TransformError(f"buffer {buf!r} is not available anywhere")

    def alloc_device_out(buf: str) -> None:
        if buf not in on_device:
            alloc(buf)
            on_device.add(buf)

    for inst_name in ctx.schedule:
        inst = top.instance(inst_name)
        task = inst.task
        in_bufs = [
            ctx.buffers[(inst_name, p.name)]
            for p in task.inputs
            if (inst_name, p.name) in ctx.buffers
        ]
        out_bufs = [
            ctx.buffers[(inst_name, p.name)]
            for p in task.outputs
            if (inst_name, p.name) in ctx.buffers
        ]
        if isinstance(task, RepetitiveTask) and ctx.allocation.on_device(inst_name):
            kernel = ctx.kernels[inst_name]
            for buf in in_bufs:
                ensure_device(buf)
            for buf in out_bufs:
                alloc_device_out(buf)
            args = tuple((a.name, dev(a.name)) for a in kernel.arrays)
            ops.append(LaunchKernel(kernel, args))
            if transfers == "per_kernel":
                # paper-literal placement: every device task's outputs come
                # home immediately; the next task re-uploads its inputs
                for buf in out_bufs:
                    ops.append(DeviceToHost(dev(buf), buf))
                    host_defined.add(buf)
                on_device.clear()
        elif isinstance(task, IOTask):
            for buf in in_bufs:
                ensure_host(buf)
            ins = {
                p.name: ctx.buffers[(inst_name, p.name)]
                for p in task.inputs
                if (inst_name, p.name) in ctx.buffers
            }
            outs = {
                p.name: ctx.buffers[(inst_name, p.name)]
                for p in task.outputs
                if (inst_name, p.name) in ctx.buffers
            }
            ip = task.ip

            def fn(env, _ip=ip, _ins=ins, _outs=outs):
                _ip(env, _ins, _outs)

            ops.append(
                HostCompute(
                    name=f"ip:{inst_name}",
                    fn=fn,
                    reads=tuple(ins.values()),
                    writes=tuple(outs.values()),
                    work=HostWork(items=task.work_ops, reads_per_item=0,
                                  writes_per_item=0, flops_per_item=1),
                )
            )
            host_defined.update(outs.values())
            for buf in outs.values():
                on_device.discard(buf)
        elif isinstance(task, RepetitiveTask):
            # CPU-allocated repetitive task: run functionally on the host,
            # charged as sequential work
            from repro.ir.evalvec import evaluate_kernel

            port_to_buffer = {
                port_name: buf
                for (i, port_name), buf in ctx.buffers.items()
                if i == inst_name
            }
            kernel = kernel_for_repetitive(task, inst_name, port_to_buffer)
            for buf in in_bufs:
                ensure_host(buf)

            def fn(env, _k=kernel, _shapes=ctx.buffer_shapes):
                arrays = {}
                for a in _k.arrays:
                    if a.name not in env:
                        env[a.name] = np.zeros(_shapes[a.name], dtype=a.dtype)
                    arrays[a.name] = np.asarray(env[a.name])
                evaluate_kernel(_k, arrays)
                for a in _k.arrays:
                    env[a.name] = arrays[a.name]

            ops.append(
                HostCompute(
                    name=f"cpu:{inst_name}",
                    fn=fn,
                    reads=tuple(in_bufs),
                    writes=tuple(out_bufs),
                    work=HostWork(
                        items=kernel.space.size,
                        reads_per_item=kernel.reads_per_item(),
                        writes_per_item=kernel.writes_per_item(),
                        flops_per_item=kernel.flops_per_item(),
                    ),
                )
            )
            host_defined.update(out_bufs)
        else:
            raise TransformError(f"cannot emit instance {inst_name!r}")

    for p in top.outputs:
        buf = ctx.buffers.get(("", p.name), p.name)
        ensure_host(buf)
    for buf in allocated:
        ops.append(FreeDevice(buf))

    ctx.program = DeviceProgram(
        name=f"{ctx.model.name}_opencl",
        ops=tuple(ops),
        host_inputs=tuple(p.name for p in top.inputs),
        host_outputs=tuple(
            ctx.buffers.get(("", p.name), p.name) for p in top.outputs
        ),
        source_files=tuple(ctx.sources.items()),
    )


# -- pass 8: source emission -----------------------------------------------------


def _emit_sources(ctx: GaspardContext) -> None:
    ctx.sources["kernels.cl"] = opencl_source(
        list(ctx.kernels.values()), ctx.model.name
    )
    if ctx.program is not None:
        ctx.program = DeviceProgram(
            name=ctx.program.name,
            ops=ctx.program.ops,
            host_inputs=ctx.program.host_inputs,
            host_outputs=ctx.program.host_outputs,
            source_files=tuple(ctx.sources.items()),
        )


def _analyze(ctx: GaspardContext) -> None:
    """Run the repro.analysis suite over the model and emitted program."""
    from repro.analysis import analyze_model, analyze_program

    ctx.diagnostics.extend(analyze_model(ctx.model))
    if ctx.program is not None:
        ctx.diagnostics.extend(analyze_program(ctx.program))


def _optimize(ctx: GaspardContext, options) -> None:
    """Run the shared device-program optimiser over the emitted program."""
    from repro.opt import optimize_program

    ctx.program, ctx.opt_report = optimize_program(ctx.program, options)


def opencl_chain_passes(
    lint: bool = False, opt=None, transfers: str = "boundary"
) -> tuple[ModelPass, ...]:
    if transfers not in ("boundary", "per_kernel"):
        raise TransformError(f"unknown transfer placement {transfers!r}")
    passes = (
        ModelPass("validate", _validate, "GILR well-formedness"),
        ModelPass("flatten_hierarchy", _flatten, "inline compound tasks"),
        ModelPass("schedule", _schedule, "topological instance order"),
        ModelPass("bind_buffers", _bind_buffers, "dataflow buffer allocation"),
        ModelPass("map_ndranges", _map_ndranges, "repetition space -> ND-range"),
        ModelPass("generate_kernels", _generate_kernels, "one kernel per task"),
        ModelPass(
            "emit_program",
            lambda ctx: _emit_program(ctx, transfers=transfers),
            "transfers + launches + IPs",
        ),
        ModelPass("emit_sources", _emit_sources, "OpenCL model-to-text"),
    )
    if opt is not None:
        passes += (
            ModelPass(
                "optimize",
                lambda ctx: _optimize(ctx, opt),
                "shared device-program optimisation (repro.opt)",
            ),
        )
    if lint:
        passes += (
            ModelPass("analyze", _analyze, "static-analysis diagnostics"),
        )
    return passes


def standard_chain(
    lint: bool = False, opt=None, transfers: str = "boundary"
) -> TransformationChain:
    """The Gaspard2 OpenCL chain (optionally ending in an analysis pass).

    ``transfers="per_kernel"`` reproduces the paper's literal per-task
    transfer placement; ``opt`` (a :class:`repro.opt.OptOptions`) appends
    the shared device-program optimiser after emission, so the analysis
    pass — and every consumer — sees the optimised program.
    """
    return TransformationChain(
        opencl_chain_passes(lint=lint, opt=opt, transfers=transfers)
    )
