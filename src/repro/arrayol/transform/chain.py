"""The Gaspard2-style model transformation chain (paper Section V-B).

In MDE a compilation is a sequence of model-to-model transformations ending
in model-to-text.  The chain here mirrors Gaspard2's OpenCL chain: each
:class:`ModelPass` refines a :class:`GaspardContext` (the "model" being
transformed), and the chain records a trace of what every pass added — the
MDE equivalent of compiler pass logging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TransformError
from repro.arrayol.marte import Allocation
from repro.arrayol.model import ApplicationModel
from repro.ir.kernel import Kernel
from repro.ir.program import DeviceProgram, Op

__all__ = ["GaspardContext", "ModelPass", "TransformationChain"]


@dataclass
class GaspardContext:
    """The artefact flowing through the chain."""

    model: ApplicationModel
    allocation: Allocation
    schedule: list[str] = field(default_factory=list)
    buffers: dict[tuple[str, str], str] = field(default_factory=dict)
    buffer_shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    buffer_dtypes: dict[str, str] = field(default_factory=dict)
    ndranges: dict[str, tuple[int, ...]] = field(default_factory=dict)
    kernels: dict[str, Kernel] = field(default_factory=dict)
    ops: list[Op] = field(default_factory=list)
    program: DeviceProgram | None = None
    sources: dict[str, str] = field(default_factory=dict)
    #: analyzer findings (populated by the optional ``analyze`` pass)
    diagnostics: list = field(default_factory=list)
    #: repro.opt.OptReport (populated by the optional ``optimize`` pass)
    opt_report: object = None


@dataclass(frozen=True)
class ModelPass:
    """One transformation step."""

    name: str
    apply: Callable[[GaspardContext], None]
    description: str = ""


class TransformationChain:
    """An ordered list of passes with an execution trace."""

    def __init__(self, passes: tuple[ModelPass, ...]):
        self.passes = tuple(passes)
        self.trace: list[str] = []

    def run(self, ctx: GaspardContext) -> GaspardContext:
        self.trace.clear()
        for p in self.passes:
            try:
                p.apply(ctx)
            except TransformError:
                raise
            except Exception as err:  # noqa: BLE001 - annotate pass name
                raise TransformError(f"pass failed: {err}", p.name) from err
            self.trace.append(self._summarise(p, ctx))
        if ctx.program is None:
            raise TransformError("chain finished without emitting a program")
        return ctx

    @staticmethod
    def _summarise(p: ModelPass, ctx: GaspardContext) -> str:
        return (
            f"{p.name}: schedule={len(ctx.schedule)} buffers={len(ctx.buffer_shapes)} "
            f"kernels={len(ctx.kernels)} ops={len(ctx.ops)}"
        )
