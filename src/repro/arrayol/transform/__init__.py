"""Gaspard2-style transformation chain."""

from repro.arrayol.transform.chain import GaspardContext, ModelPass, TransformationChain
from repro.arrayol.transform.passes import opencl_chain_passes, standard_chain

__all__ = ["GaspardContext", "ModelPass", "TransformationChain",
           "standard_chain", "opencl_chain_passes"]
