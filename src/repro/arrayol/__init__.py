"""ArrayOL / Gaspard2 substrate: metamodel, validation, scheduling,
MARTE allocation, model transformation chain, OpenCL code generation."""

from repro.arrayol.marte import GPU_CPU_PLATFORM, Allocation, HwResource, Platform
from repro.arrayol.model import (
    ApplicationModel,
    CompoundTask,
    ElementaryTask,
    IOTask,
    Link,
    PatternExpr,
    Port,
    RepetitiveTask,
    Task,
    TaskInstance,
    TilerConnector,
)
from repro.arrayol.schedule import buffer_bindings, schedule_instances
from repro.arrayol.validate import dataflow_graph, validate_model, validate_task

__all__ = [
    "Port", "PatternExpr", "Task", "ElementaryTask", "IOTask",
    "TilerConnector", "RepetitiveTask", "TaskInstance", "Link",
    "CompoundTask", "ApplicationModel",
    "HwResource", "Platform", "Allocation", "GPU_CPU_PLATFORM",
    "validate_model", "validate_task", "dataflow_graph",
    "schedule_instances", "buffer_bindings",
]
