"""ArrayOL OpenCL backend: kernel lowering and source emission."""

from repro.arrayol.backend.lower import kernel_for_repetitive, tiler_index_exprs
from repro.arrayol.backend.openclgen import opencl_kernel_source, opencl_source

__all__ = ["kernel_for_repetitive", "tiler_index_exprs",
           "opencl_kernel_source", "opencl_source"]
