"""Lowering of repetitive tasks to kernels (one kernel per elementary task).

Gaspard2 turns every device-allocated repetitive task into **one OpenCL
kernel** whose work-items enumerate the repetition space; the tiler
gather/scatter becomes per-work-item address arithmetic inside the kernel
(the paper's Figure 11).  That one-kernel-per-task structure is what gives
Table I its "H. Filter (3 kernels)" row — versus the SaC route's
one-kernel-per-generator.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.arrayol.model import ElementaryTask, RepetitiveTask
from repro.ir import expr as ir
from repro.ir import stmt as irs
from repro.ir.kernel import ArrayParam, IndexSpace, Kernel
from repro.tilers import Tiler

__all__ = ["tiler_index_exprs", "kernel_for_repetitive"]


def tiler_index_exprs(
    tiler: Tiler, pattern_index: tuple[int, ...]
) -> tuple[ir.Expr, ...]:
    """Array index expressions for one pattern element at the work-item's
    repetition point: ``(o + P·r + F·i) mod shape`` per dimension, with
    ``r`` given by :class:`~repro.ir.expr.ThreadIdx` components."""
    if len(pattern_index) != tiler.pattern_rank:
        raise BackendError(
            f"pattern index {pattern_index} has rank {len(pattern_index)}, "
            f"tiler pattern rank is {tiler.pattern_rank}"
        )
    out: list[ir.Expr] = []
    for d in range(tiler.array_rank):
        const = tiler.origin[d]
        for p, i in enumerate(pattern_index):
            const += tiler.fitting[d][p] * i
        expr: ir.Expr | None = ir.Const(const) if const != 0 else None
        min_value = const
        for m in range(tiler.repetition_rank):
            coef = tiler.paving[d][m]
            if coef == 0:
                continue
            if coef < 0:
                min_value += coef * (tiler.repetition_shape[m] - 1)
            term: ir.Expr = ir.ThreadIdx(m)
            if coef != 1:
                term = ir.BinOp("*", ir.Const(coef), term)
            expr = term if expr is None else ir.BinOp("+", expr, term)
        if expr is None:
            expr = ir.Const(0)
        extent = tiler.array_shape[d]
        idx = ir.BinOp("%", expr, ir.Const(extent))
        if min_value < 0:
            # ArrayOL's modulo is mathematical; C's '%' truncates towards
            # zero, so a possibly-negative index needs the usual fix-up
            idx = ir.BinOp(
                "%", ir.BinOp("+", idx, ir.Const(extent)), ir.Const(extent)
            )
        out.append(idx)
    return tuple(out)


def kernel_for_repetitive(
    task: RepetitiveTask,
    kernel_name: str,
    buffer_of_port: dict[str, str],
) -> Kernel:
    """Build the kernel of one repetitive task instance.

    ``buffer_of_port`` maps the task's *outer* port names to dataflow
    buffer names (kernel parameter names).
    """
    inner = task.inner
    if not isinstance(inner, ElementaryTask):
        raise BackendError(
            f"{task.name}: only elementary inner tasks lower to kernels "
            f"(got {type(inner).__name__})"
        )
    space = IndexSpace(
        lower=tuple(0 for _ in task.repetition), upper=tuple(task.repetition)
    )

    # substitute pattern reads by tiler-addressed array reads
    def substitute(e: ir.Expr) -> ir.Expr:
        if isinstance(e, ir.Read):
            conn = task.input_tiler_for(e.array)
            pat_idx = []
            for comp in e.index:
                if not isinstance(comp, ir.Const):
                    raise BackendError(
                        f"{task.name}: pattern read index must be constant"
                    )
                pat_idx.append(int(comp.value))
            buffer = buffer_of_port[conn.outer_port]
            return ir.Read(buffer, tiler_index_exprs(conn.tiler, tuple(pat_idx)))
        if isinstance(e, ir.BinOp):
            return ir.BinOp(e.op, substitute(e.lhs), substitute(e.rhs))
        if isinstance(e, ir.UnOp):
            return ir.UnOp(e.op, substitute(e.operand))
        if isinstance(e, ir.Select):
            return ir.Select(
                substitute(e.cond), substitute(e.if_true), substitute(e.if_false)
            )
        return e

    body: list[irs.Stmt] = []
    reads: set[str] = set()
    writes: set[str] = set()
    for name, expr in inner.locals:
        body.append(irs.Assign(name, substitute(expr)))
    for pe in inner.body:
        conn = task.output_tiler_for(pe.port)
        target = buffer_of_port[conn.outer_port]
        value = substitute(pe.expr)
        index = tiler_index_exprs(conn.tiler, (pe.index,))
        body.append(irs.Store(target, index, value))
        writes.add(target)
    for s in body:
        for e in irs.expressions_of((s,)):
            if isinstance(e, ir.Read):
                reads.add(e.array)

    shapes: dict[str, tuple[int, ...]] = {}
    dtypes: dict[str, str] = {}
    for conn in (*task.input_tilers, *task.output_tilers):
        buf = buffer_of_port[conn.outer_port]
        shapes[buf] = conn.tiler.array_shape
        dtypes[buf] = task.port(conn.outer_port).dtype

    arrays = []
    for name in sorted(reads | writes):
        intent = "out" if name in writes and name not in reads else (
            "inout" if name in writes else "in"
        )
        arrays.append(
            ArrayParam(name, shapes[name], dtypes.get(name, "int32"), intent=intent)
        )
    return Kernel(
        name=kernel_name,
        space=space,
        arrays=tuple(arrays),
        body=tuple(body),
        provenance=f"repetitive task {task.name}",
    )
