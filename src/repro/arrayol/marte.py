"""MARTE-style allocation modelling (paper Section V).

The UML profile for MARTE separates hardware from software: Gaspard2 uses
the Detailed Resource Modelling stereotypes (``HwResource`` /
``SwResource``) plus an allocation mapping software components onto
hardware.  We model the parts the code generator consumes: a platform of
named resources of two kinds, and an allocation of task instances to
resources — which decides what becomes an OpenCL kernel (compute-device
resources) and what stays host code (CPU resources, e.g. the OpenCV IPs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelValidationError
from repro.arrayol.model import CompoundTask

__all__ = ["HwResource", "Platform", "Allocation", "GPU_CPU_PLATFORM"]


@dataclass(frozen=True)
class HwResource:
    """A hardware resource (MARTE ``HwResource`` stereotype)."""

    name: str
    kind: str  # "cpu" | "compute_device"

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "compute_device"):
            raise ModelValidationError(
                f"resource kind must be cpu/compute_device, got {self.kind!r}",
                self.name,
            )


@dataclass(frozen=True)
class Platform:
    """The hardware side of the MARTE model."""

    name: str
    resources: tuple[HwResource, ...]

    def resource(self, name: str) -> HwResource:
        for r in self.resources:
            if r.name == name:
                return r
        raise ModelValidationError(f"no resource {name!r}", self.name)


#: the paper's test system: an i7-930 host driving a GTX480
GPU_CPU_PLATFORM = Platform(
    name="i7_gtx480",
    resources=(
        HwResource("host", "cpu"),
        HwResource("gpu", "compute_device"),
    ),
)


@dataclass(frozen=True)
class Allocation:
    """Maps task instances of a compound onto platform resources."""

    platform: Platform
    mapping: tuple[tuple[str, str], ...]  # (instance, resource)
    _index: dict = field(default=None, compare=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_index", dict(self.mapping))
        for _, res in self.mapping:
            self.platform.resource(res)  # must exist

    def resource_of(self, instance: str) -> HwResource:
        try:
            return self.platform.resource(self._index[instance])
        except KeyError:
            raise ModelValidationError(
                f"instance {instance!r} is not allocated", self.platform.name
            ) from None

    def on_device(self, instance: str) -> bool:
        return self.resource_of(instance).kind == "compute_device"

    def validate_against(self, top: CompoundTask) -> None:
        names = {i.name for i in top.instances}
        for inst, _ in self.mapping:
            if inst not in names:
                raise ModelValidationError(
                    f"allocation references unknown instance {inst!r}", top.name
                )
        for name in names:
            if name not in self._index:
                raise ModelValidationError(
                    f"instance {name!r} has no allocation", top.name
                )
