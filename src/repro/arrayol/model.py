"""The ArrayOL metamodel (paper Sections II-A and IV).

ArrayOL specifies an application as a hierarchy of tasks exchanging
multidimensional arrays through ports, following the GILR principle
(Globally Irregular, Locally Regular):

* **global level** — a :class:`CompoundTask`: a graph of task instances
  whose ports are connected by links (the paper's Figure 3);
* **local level** — a :class:`RepetitiveTask`: one inner task repeated over
  a *repetition space*, its ports bound to the outer arrays by **tiler
  connectors** (origin / fitting / paving — :class:`repro.tilers.Tiler`);
* **leaves** — :class:`ElementaryTask` (opaque computation on patterns,
  specified as unrolled per-output-element expressions over input-pattern
  reads) and :class:`IOTask` (tasks linked to an IP, e.g. the paper's
  OpenCV frame generator/constructor).

The model is purely declarative; scheduling and code generation live in
:mod:`repro.arrayol.schedule` and :mod:`repro.arrayol.backend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ModelValidationError
from repro.ir import expr as ir
from repro.tilers import Tiler

__all__ = [
    "Port",
    "PatternExpr",
    "Task",
    "ElementaryTask",
    "IOTask",
    "TilerConnector",
    "RepetitiveTask",
    "TaskInstance",
    "Link",
    "CompoundTask",
    "ApplicationModel",
]


@dataclass(frozen=True)
class Port:
    """A task port carrying an array of a fixed shape and element type."""

    name: str
    shape: tuple[int, ...]
    direction: str = "in"  # "in" | "out"
    dtype: str = "int32"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        if self.direction not in ("in", "out"):
            raise ModelValidationError(
                f"port direction must be in/out, got {self.direction!r}", self.name
            )
        if any(s <= 0 for s in self.shape):
            raise ModelValidationError(
                f"port shape must be positive, got {self.shape}", self.name
            )
        if self.dtype not in ("int32", "float32", "float64"):
            raise ModelValidationError(
                f"unsupported port dtype {self.dtype!r}", self.name
            )


class Task:
    """Base class of ArrayOL tasks."""

    name: str
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]

    def port(self, name: str) -> Port:
        for p in (*self.inputs, *self.outputs):
            if p.name == name:
                return p
        raise ModelValidationError(f"no port {name!r}", self.name)


@dataclass(frozen=True)
class PatternExpr:
    """One output-pattern element of an elementary task.

    ``expr`` is a scalar kernel-IR expression whose :class:`~repro.ir.expr.Read`
    nodes address *input ports* with constant pattern indices
    (``Read("pattern_in", (Const(3),))``).
    """

    port: str
    index: int
    expr: ir.Expr


@dataclass(frozen=True)
class ElementaryTask(Task):
    """A leaf computation on patterns (locally regular part).

    ``locals`` are shared scalar subcomputations evaluated before the
    output expressions (the paper's Figure 5 ``tmp`` sums); body
    expressions reference them with :class:`~repro.ir.expr.LocalRef`.
    """

    name: str
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    body: tuple[PatternExpr, ...]
    locals: tuple[tuple[str, ir.Expr], ...] = ()

    def __post_init__(self) -> None:
        input_names = {p.name for p in self.inputs}
        local_names: set[str] = set()
        for name, expr in self.locals:
            for node in ir.walk(expr):
                if isinstance(node, ir.Read) and node.array not in input_names:
                    raise ModelValidationError(
                        f"local {name!r} reads unknown port {node.array!r}",
                        self.name,
                    )
                if isinstance(node, ir.LocalRef) and node.name not in local_names:
                    raise ModelValidationError(
                        f"local {name!r} uses undefined local {node.name!r}",
                        self.name,
                    )
            local_names.add(name)
        produced: set[tuple[str, int]] = set()
        for pe in self.body:
            port = self.port(pe.port)
            if port.direction != "out":
                raise ModelValidationError(
                    f"body writes input port {pe.port!r}", self.name
                )
            if len(port.shape) != 1:
                raise ModelValidationError(
                    f"elementary output patterns must be vectors, got "
                    f"{port.shape} on {pe.port!r}",
                    self.name,
                )
            if not (0 <= pe.index < port.shape[0]):
                raise ModelValidationError(
                    f"pattern index {pe.index} outside {pe.port!r} shape "
                    f"{port.shape}",
                    self.name,
                )
            if (pe.port, pe.index) in produced:
                raise ModelValidationError(
                    f"pattern element {pe.port!r}[{pe.index}] written twice "
                    f"(single assignment)",
                    self.name,
                )
            produced.add((pe.port, pe.index))
            for node in ir.walk(pe.expr):
                if isinstance(node, ir.LocalRef) and node.name not in local_names:
                    raise ModelValidationError(
                        f"body uses undefined local {node.name!r}", self.name
                    )
                if isinstance(node, ir.Read):
                    if node.array not in input_names:
                        raise ModelValidationError(
                            f"body reads unknown port {node.array!r}", self.name
                        )
                    in_port = self.port(node.array)
                    if len(node.index) != len(in_port.shape):
                        raise ModelValidationError(
                            f"read of {node.array!r} with rank {len(node.index)}, "
                            f"port rank {len(in_port.shape)}",
                            self.name,
                        )
        # every output element must be produced
        for p in self.outputs:
            for k in range(p.shape[0]):
                if (p.name, k) not in produced:
                    raise ModelValidationError(
                        f"pattern element {p.name!r}[{k}] never produced", self.name
                    )


@dataclass(frozen=True)
class IOTask(Task):
    """A task realised by an IP (host code), e.g. frame generation."""

    name: str
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    ip: Callable[[dict], None] = field(compare=False)
    #: static per-invocation scalar-operation estimate for the host cost model
    work_ops: int = 0


@dataclass(frozen=True)
class TilerConnector:
    """Binds an outer array port to an inner pattern port through a tiler."""

    outer_port: str
    inner_port: str
    tiler: Tiler


@dataclass(frozen=True)
class RepetitiveTask(Task):
    """Data-parallel repetition of an inner task over a repetition space."""

    name: str
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    repetition: tuple[int, ...]
    inner: Task = None  # type: ignore[assignment]
    input_tilers: tuple[TilerConnector, ...] = ()
    output_tilers: tuple[TilerConnector, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "repetition", tuple(int(r) for r in self.repetition))
        if any(r <= 0 for r in self.repetition):
            raise ModelValidationError(
                f"repetition space must be positive, got {self.repetition}", self.name
            )

    def input_tiler_for(self, inner_port: str) -> TilerConnector:
        for t in self.input_tilers:
            if t.inner_port == inner_port:
                return t
        raise ModelValidationError(
            f"no input tiler for inner port {inner_port!r}", self.name
        )

    def output_tiler_for(self, inner_port: str) -> TilerConnector:
        for t in self.output_tilers:
            if t.inner_port == inner_port:
                return t
        raise ModelValidationError(
            f"no output tiler for inner port {inner_port!r}", self.name
        )


@dataclass(frozen=True)
class TaskInstance:
    """A named use of a task inside a compound task."""

    name: str
    task: Task


@dataclass(frozen=True)
class Link:
    """A dataflow connection between instance ports.

    Endpoints are ``(instance, port)``; the compound's own ports use the
    instance name ``""``.
    """

    src: tuple[str, str]
    dst: tuple[str, str]


@dataclass(frozen=True)
class CompoundTask(Task):
    """The globally-irregular level: a DAG of task instances."""

    name: str
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    instances: tuple[TaskInstance, ...] = ()
    links: tuple[Link, ...] = ()

    def instance(self, name: str) -> TaskInstance:
        for i in self.instances:
            if i.name == name:
                return i
        raise ModelValidationError(f"no instance {name!r}", self.name)


@dataclass(frozen=True)
class ApplicationModel:
    """A complete ArrayOL application: the top-level compound task."""

    name: str
    top: CompoundTask
