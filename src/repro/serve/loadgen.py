"""Closed- and open-loop load generation against a :class:`ServeBroker`.

Two canonical client models (Schroeder et al.'s distinction):

* **open loop** — arrivals follow the offered rate regardless of
  completions (think: the internet).  Overload manifests as queue
  growth, so this is the model that exercises admission control and
  degradation.  Inter-arrival gaps are deterministic (``1/rate``) by
  default or exponential with a seeded generator (``jitter_seed``) —
  either way a run is exactly reproducible.
* **closed loop** — each of N clients keeps exactly one request in
  flight (submit, await, think, repeat), so offered load self-throttles
  to system capacity.  This is the model for "what can it sustain"
  capacity probes.

Both run entirely on the broker's virtual clock; ``run_open_loop`` /
``run_closed_loop`` wrap the whole lifecycle (start, generate, drain,
stop) into one synchronous call returning ``(responses, report)``.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.serve.broker import ServeBroker, ServingReport
from repro.serve.types import Response

__all__ = [
    "open_loop",
    "closed_loop",
    "run_open_loop",
    "run_closed_loop",
    "estimate_capacity_rps",
]


def _tenant(i: int, tenants: int) -> str:
    return f"tenant-{i % max(1, tenants)}"


async def open_loop(
    broker: ServeBroker,
    *,
    rate_rps: float,
    requests: int,
    tenants: int = 1,
    deadline_us: float | None = None,
    jitter_seed: int | None = None,
    start_frame: int = 0,
) -> list[Response]:
    """Fire ``requests`` arrivals at ``rate_rps`` without waiting for replies."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = None if jitter_seed is None else np.random.default_rng(jitter_seed)
    mean_gap_us = 1e6 / rate_rps
    tasks: list[asyncio.Task] = []
    for i in range(requests):
        tasks.append(asyncio.ensure_future(broker.submit(
            _tenant(i, tenants), frame=start_frame + i, deadline_us=deadline_us,
        )))
        gap = mean_gap_us if rng is None else rng.exponential(mean_gap_us)
        if i + 1 < requests:
            await broker.clock.sleep(gap)
    return list(await asyncio.gather(*tasks))


async def closed_loop(
    broker: ServeBroker,
    *,
    clients: int,
    requests_per_client: int,
    deadline_us: float | None = None,
    think_us: float = 0.0,
) -> list[Response]:
    """``clients`` generators, each keeping one request in flight."""

    async def client(c: int) -> list[Response]:
        mine: list[Response] = []
        for k in range(requests_per_client):
            frame = c * requests_per_client + k
            mine.append(await broker.submit(
                _tenant(c, clients), frame=frame, deadline_us=deadline_us,
            ))
            if think_us > 0:
                await broker.clock.sleep(think_us)
        return mine

    nested = await asyncio.gather(*[client(c) for c in range(clients)])
    return [r for batch in nested for r in batch]


def run_open_loop(broker: ServeBroker, **kwargs) -> tuple[list[Response], ServingReport]:
    """Full open-loop lifecycle on the broker's virtual clock."""

    async def scenario():
        await broker.start()
        responses = await open_loop(broker, **kwargs)
        report = await broker.stop()
        return responses, report

    return broker.clock.run(scenario())


def run_closed_loop(broker: ServeBroker, **kwargs) -> tuple[list[Response], ServingReport]:
    """Full closed-loop lifecycle on the broker's virtual clock."""

    async def scenario():
        await broker.start()
        responses = await closed_loop(broker, **kwargs)
        report = await broker.stop()
        return responses, report

    return broker.clock.run(scenario())


def estimate_capacity_rps(broker_factory, batch: int, probe_requests: int = None) -> float:
    """Peak sustainable rate: a closed-loop probe at full batching.

    ``broker_factory`` builds a fresh broker (the probe consumes one);
    the estimate is the probe's goodput with ``batch`` clients keeping
    the device saturated.
    """
    probe = broker_factory()
    n = probe_requests if probe_requests is not None else max(4, 4 * batch)
    _, report = run_closed_loop(
        probe, clients=batch, requests_per_client=max(1, n // max(1, batch))
    )
    return report.goodput_rps
