"""Deterministic virtual time for the asyncio serving tier.

Every duration in the runtime is *modelled* (microseconds of simulated
GTX 480 time), so the serving broker must not sleep on the wall clock:
a load sweep that really waited out its inter-arrival gaps would take
minutes and produce timings polluted by host jitter.  :class:`VirtualClock`
gives the broker asyncio-compatible ``sleep``/``sleep_until`` primitives
on a simulated microsecond axis:

* tasks suspend on :meth:`sleep`; the waiter lands in a time-ordered heap
  (FIFO-stable via a sequence tie-break, so equal wake times resolve
  deterministically);
* :meth:`drive` runs a scenario coroutine to completion — it lets the
  event loop quiesce (all ready callbacks run), then pops the earliest
  waiter, advances ``now_us`` to its wake time and releases it;
* time therefore jumps instantly between events: a 300-request sweep at
  50 rps finishes in milliseconds of wall time but six seconds of
  virtual time, and two runs of the same scenario interleave identically.

Cancelled sleepers (the batcher races its flush timer against new
arrivals) are discarded without advancing time.  A scenario that is
still pending with no timers left is reported as a stall instead of
hanging the test suite.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Awaitable, TypeVar

from repro.errors import ReproError

__all__ = ["VirtualClock"]

T = TypeVar("T")


class VirtualClock:
    """Simulated-microsecond time source driving an asyncio event loop."""

    #: event-loop iterations granted between time advances; bounds the
    #: depth of wake-up chains (future resolved -> client resumes ->
    #: submits -> broker admits -> batcher wakes) that may run "within"
    #: one virtual instant
    QUIESCE_ROUNDS = 24

    def __init__(self, start_us: float = 0.0):
        self._now_us = float(start_us)
        #: heap of (wake_us, seq, future)
        self._waiters: list[tuple[float, int, asyncio.Future]] = []
        self._seq = itertools.count()

    @property
    def now_us(self) -> float:
        return self._now_us

    async def sleep(self, delay_us: float) -> None:
        """Suspend the calling task for ``delay_us`` of virtual time."""
        await self.sleep_until(self._now_us + max(0.0, delay_us))

    async def sleep_until(self, at_us: float) -> None:
        """Suspend until the virtual clock reaches ``at_us``."""
        if at_us <= self._now_us:
            # already due: yield once so same-instant wakeups stay ordered
            await asyncio.sleep(0)
            return
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(self._waiters, (at_us, next(self._seq), fut))
        await fut

    async def _quiesce(self) -> None:
        for _ in range(self.QUIESCE_ROUNDS):
            await asyncio.sleep(0)

    async def drive(self, scenario: Awaitable[T]) -> T:
        """Run ``scenario`` to completion, advancing virtual time as needed."""
        task = asyncio.ensure_future(scenario)
        try:
            while True:
                await self._quiesce()
                if task.done():
                    break
                # drop sleepers whose future was cancelled (lost races)
                while self._waiters and self._waiters[0][2].done():
                    heapq.heappop(self._waiters)
                if not self._waiters:
                    await self._quiesce()
                    if task.done():
                        break
                    if not self._waiters:
                        task.cancel()
                        raise ReproError(
                            "virtual clock stalled: the scenario is still "
                            "pending but no task is sleeping on the clock "
                            "(a coroutine awaits something that will never "
                            "resolve)"
                        )
                    continue
                at_us, _, fut = heapq.heappop(self._waiters)
                self._now_us = max(self._now_us, at_us)
                fut.set_result(None)
        finally:
            if not task.done():
                task.cancel()
        return task.result()

    def run(self, scenario: Awaitable[T]) -> T:
        """``asyncio.run`` the scenario under this clock."""
        return asyncio.run(self.drive(scenario))
