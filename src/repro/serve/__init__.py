"""repro.serve — the async multi-tenant serving tier.

The ROADMAP's "millions of users" direction: a front door over the
stream-overlapped runtime so the throughput wins of the compile cache,
the optimiser and the three-engine scheduler become *user-facing*
latency and goodput numbers.

* :mod:`repro.serve.clock` — deterministic virtual time for asyncio;
* :mod:`repro.serve.types` — requests, responses, the config bundle;
* :mod:`repro.serve.quota` — per-tenant token-bucket fairness;
* :mod:`repro.serve.admission` — queue-budget + deadline-feasibility
  rejection at arrival;
* :mod:`repro.serve.batcher` — dynamic batching (flush on size or
  deadline slack);
* :mod:`repro.serve.degrade` — hysteretic SLO-gated quality degradation;
* :mod:`repro.serve.broker` — the asyncio request broker tying it all
  to the compile cache, scheduler and executor;
* :mod:`repro.serve.loadgen` — closed/open-loop load generators.

``repro serve`` drives it from the CLI; ``benchmarks/bench_serving.py``
sweeps offered load to find the knee.
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import DynamicBatcher, PendingEntry
from repro.serve.broker import ServeBroker, ServingReport
from repro.serve.clock import VirtualClock
from repro.serve.degrade import DEGRADED, NORMAL, DegradeController
from repro.serve.loadgen import (
    closed_loop,
    estimate_capacity_rps,
    open_loop,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.quota import QuotaManager, TokenBucket
from repro.serve.types import (
    REJECT_DEADLINE,
    REJECT_QUEUE,
    REJECT_QUOTA,
    STATUS_MISSED,
    STATUS_OK,
    STATUS_REJECTED,
    Request,
    Response,
    ServeConfig,
    latency_buckets,
)

__all__ = [
    "ServeBroker", "ServingReport", "ServeConfig", "VirtualClock",
    "Request", "Response", "latency_buckets",
    "STATUS_OK", "STATUS_MISSED", "STATUS_REJECTED",
    "REJECT_QUEUE", "REJECT_QUOTA", "REJECT_DEADLINE",
    "TokenBucket", "QuotaManager",
    "AdmissionController", "DynamicBatcher", "PendingEntry",
    "DegradeController", "NORMAL", "DEGRADED",
    "open_loop", "closed_loop", "run_open_loop", "run_closed_loop",
    "estimate_capacity_rps",
]
