"""Graceful degradation: a hysteretic NORMAL <-> DEGRADED state machine.

Under sustained overload an admission-controlled system settles into
rejecting the excess; degradation instead trades *quality* for goodput:
the broker drops to the degraded serving configuration (the CIF frame
size — roughly an order of magnitude less device work per request) so
the queue drains and latency returns under the SLO.

The trigger is a projected p99: the sliding window of recently completed
request latencies merged with the projected latency of everything
currently queued (age so far + one batch-service estimate).  Using the
projection rather than completed latencies alone lets the machine react
while the queue is building, before the bad latencies are *observed*.

Transitions are hysteretic on both axes so the machine cannot flap:

* enter DEGRADED after ``enter_breaches`` consecutive evaluations with
  projected p99 above the SLO;
* return to NORMAL only after ``exit_clears`` consecutive evaluations
  with projected p99 below ``recover_ratio`` x SLO (a strictly lower bar
  than the entry threshold);
* evaluations landing between the two thresholds reset both streaks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["DegradeController", "NORMAL", "DEGRADED"]

NORMAL = "normal"
DEGRADED = "degraded"


class DegradeController:
    """SLO-gated quality degradation with two-threshold hysteresis."""

    def __init__(
        self,
        slo_us: float,
        enter_breaches: int = 3,
        exit_clears: int = 6,
        recover_ratio: float = 0.7,
        window: int = 64,
    ):
        if not 0.0 < recover_ratio <= 1.0:
            raise ValueError("recover_ratio must be in (0, 1]")
        self.slo_us = slo_us
        self.enter_breaches = max(1, enter_breaches)
        self.exit_clears = max(1, exit_clears)
        self.recover_ratio = recover_ratio
        self.state = NORMAL
        self._latencies: deque[float] = deque(maxlen=window)
        self._breaches = 0
        self._clears = 0
        #: (virtual time, new state, projected p99 that triggered it)
        self.transitions: list[tuple[float, str, float]] = []

    @property
    def degraded(self) -> bool:
        return self.state == DEGRADED

    def record_latency(self, latency_us: float) -> None:
        """Fold one completed request latency into the window."""
        self._latencies.append(latency_us)

    def projected_p99_us(
        self,
        now_us: float,
        queued_arrivals_us: list[float],
        est_service_us: float | None,
    ) -> float:
        """p99 over completed latencies plus the queue's projected ones."""
        est = est_service_us or 0.0
        sample = list(self._latencies)
        sample.extend(now_us - a + est for a in queued_arrivals_us)
        if not sample:
            return 0.0
        return float(np.percentile(sample, 99))

    def evaluate(
        self,
        now_us: float,
        queued_arrivals_us: list[float],
        est_service_us: float | None,
    ) -> str:
        """Re-evaluate the state machine; returns the (possibly new) state."""
        p99 = self.projected_p99_us(now_us, queued_arrivals_us, est_service_us)
        if p99 > self.slo_us:
            self._breaches += 1
            self._clears = 0
            if self.state == NORMAL and self._breaches >= self.enter_breaches:
                self._transition(now_us, DEGRADED, p99)
        elif p99 <= self.recover_ratio * self.slo_us:
            self._clears += 1
            self._breaches = 0
            if self.state == DEGRADED and self._clears >= self.exit_clears:
                self._transition(now_us, NORMAL, p99)
        else:
            # the dead band between the thresholds: no streak survives it
            self._breaches = 0
            self._clears = 0
        return self.state

    def _transition(self, now_us: float, to_state: str, p99_us: float) -> None:
        self.state = to_state
        self._breaches = 0
        self._clears = 0
        self.transitions.append((now_us, to_state, p99_us))

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "slo_us": self.slo_us,
            "transitions": [
                {"at_us": round(t, 3), "to": s, "projected_p99_us": round(p, 3)}
                for t, s, p in self.transitions
            ],
        }
