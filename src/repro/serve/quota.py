"""Per-tenant token-bucket quotas.

Fairness between tenants is enforced *before* admission: each tenant
owns a token bucket refilled continuously in virtual time, one token per
submitted frame.  A tenant that bursts past its bucket is rejected with
``quota`` while other tenants keep being served — the broker's queue
budget alone would let one aggressive client starve everyone.

The ledger is conservation-checked: ``capacity + refilled == consumed +
level`` holds at all times (refill is capped at the bucket's headroom),
which the hypothesis property test asserts under arbitrary request
interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TokenBucket", "QuotaManager"]


@dataclass
class TokenBucket:
    """A continuously refilled token bucket on the virtual clock."""

    capacity: float
    refill_per_s: float
    level: float = field(default=-1.0)
    #: lifetime accounting (tokens granted / tokens added by refill)
    consumed: float = 0.0
    refilled: float = 0.0
    denied: int = 0
    _last_us: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("quota capacity must be positive")
        if self.refill_per_s < 0:
            raise ValueError("quota refill rate must be >= 0")
        if self.level < 0:
            self.level = self.capacity

    def _refill(self, now_us: float) -> None:
        dt_us = now_us - self._last_us
        if dt_us > 0:
            # cap at headroom so the conservation identity stays exact
            add = min(self.refill_per_s * dt_us / 1e6, self.capacity - self.level)
            self.level += add
            self.refilled += add
            self._last_us = now_us

    def try_take(self, now_us: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; returns whether it succeeded."""
        self._refill(now_us)
        if self.level + 1e-9 < tokens:
            self.denied += 1
            return False
        self.level -= tokens
        self.consumed += tokens
        return True

    def conserves(self) -> bool:
        """Tokens in == tokens out: the ledger balances."""
        return abs(self.capacity + self.refilled - self.consumed - self.level) < 1e-6

    def as_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "refill_per_s": self.refill_per_s,
            "level": round(self.level, 6),
            "consumed": round(self.consumed, 6),
            "refilled": round(self.refilled, 6),
            "denied": self.denied,
        }


class QuotaManager:
    """One token bucket per tenant, created on first use."""

    def __init__(self, capacity: float, refill_per_s: float):
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self.buckets: dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        b = self.buckets.get(tenant)
        if b is None:
            b = self.buckets[tenant] = TokenBucket(
                capacity=self.capacity, refill_per_s=self.refill_per_s
            )
        return b

    def try_take(self, tenant: str, now_us: float, tokens: float = 1.0) -> bool:
        return self.bucket(tenant).try_take(now_us, tokens)

    def conserves(self) -> bool:
        return all(b.conserves() for b in self.buckets.values())

    def as_dict(self) -> dict:
        return {t: b.as_dict() for t, b in sorted(self.buckets.items())}
