"""Dynamic batching: coalesce pending frames into pipeline batches.

ForOpenCL's boundary-transfer argument (PAPERS.md) applies directly to
serving: many small device rounds waste transfer setup that one larger
round amortises, and the three-engine scheduler overlaps more work the
deeper the batch.  The batcher therefore holds arrivals briefly and
flushes on whichever trigger fires first:

* **size** — ``max_batch`` requests are pending (a full device round);
* **deadline slack** — waiting any longer would make the *oldest*
  pending request miss its deadline, given the current batch-service
  estimate;
* **wait bound** — the oldest request has waited ``max_wait_us``
  (bounds latency for deadline-less traffic).

The flush decision is pure bookkeeping (no awaits); the broker's service
loop races :meth:`next_flush_at_us` against new arrivals on the virtual
clock.
"""

from __future__ import annotations

from collections import deque

from repro.serve.types import Request

__all__ = ["DynamicBatcher", "PendingEntry"]


class PendingEntry:
    """A queued request and the future its client awaits."""

    __slots__ = ("request", "future")

    def __init__(self, request: Request, future):
        self.request = request
        self.future = future


class DynamicBatcher:
    """Deadline-aware coalescing queue."""

    def __init__(self, max_batch: int, max_wait_us: float, safety_us: float = 0.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        #: headroom subtracted from deadline-driven flush times
        self.safety_us = safety_us
        self.pending: deque[PendingEntry] = deque()
        #: peak queue depth observed
        self.depth_high_water = 0

    def __len__(self) -> int:
        return len(self.pending)

    def push(self, entry: PendingEntry) -> None:
        self.pending.append(entry)
        self.depth_high_water = max(self.depth_high_water, len(self.pending))

    def queued_arrivals_us(self) -> list[float]:
        return [e.request.arrival_us for e in self.pending]

    # -- flush policy ----------------------------------------------------------

    def _deadline_flush_at_us(self, est_service_us: float | None) -> float:
        """Latest start keeping every pending deadline feasible."""
        est = est_service_us or 0.0
        at = float("inf")
        for e in self.pending:
            if e.request.deadline_us is not None:
                at = min(at, e.request.deadline_us - est - self.safety_us)
        return at

    def next_flush_at_us(self, est_service_us: float | None) -> float:
        """Virtual time at which a flush becomes due (``-inf`` = now)."""
        if not self.pending:
            return float("inf")
        if len(self.pending) >= self.max_batch:
            return float("-inf")
        oldest = self.pending[0].request.arrival_us
        return min(oldest + self.max_wait_us, self._deadline_flush_at_us(est_service_us))

    def flush_ready(self, now_us: float, est_service_us: float | None) -> bool:
        return bool(self.pending) and self.next_flush_at_us(est_service_us) <= now_us

    # -- draining --------------------------------------------------------------

    def expire(self, now_us: float) -> list[PendingEntry]:
        """Remove requests whose deadline already passed while queued.

        Serving them would burn a device round on answers the client
        must discard; the broker returns them as ``missed`` instead.
        """
        live: deque[PendingEntry] = deque()
        expired: list[PendingEntry] = []
        for e in self.pending:
            if e.request.deadline_us is not None and e.request.deadline_us < now_us:
                expired.append(e)
            else:
                live.append(e)
        self.pending = live
        return expired

    def take(self) -> list[PendingEntry]:
        """Pop the next batch (oldest first, up to ``max_batch``)."""
        batch = []
        while self.pending and len(batch) < self.max_batch:
            batch.append(self.pending.popleft())
        return batch
