"""Request/response vocabulary of the serving tier.

A :class:`Request` is one client-submitted video frame tagged with a
tenant id and an optional deadline; the broker answers every submit with
exactly one :class:`Response` — admitted requests complete as ``ok`` or
``missed`` (served, but past the deadline), everything else is
``rejected`` with a machine-readable reason.  :class:`ServeConfig`
gathers the broker's knobs in one place so the CLI, the benchmarks and
the property tests construct identical brokers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Request",
    "Response",
    "ServeConfig",
    "latency_buckets",
    "STATUS_OK",
    "STATUS_MISSED",
    "STATUS_REJECTED",
    "REJECT_QUEUE",
    "REJECT_QUOTA",
    "REJECT_DEADLINE",
]

#: served within the deadline (or no deadline given)
STATUS_OK = "ok"
#: served, but completion fell past the request's deadline
STATUS_MISSED = "missed"
#: refused before service
STATUS_REJECTED = "rejected"

#: rejection reasons
REJECT_QUEUE = "queue-budget"
REJECT_QUOTA = "quota"
REJECT_DEADLINE = "deadline-infeasible"


@dataclass(frozen=True)
class Request:
    """One frame submitted for downscaling."""

    rid: int
    tenant: str
    frame: int
    arrival_us: float
    #: absolute virtual deadline; ``None`` — best effort
    deadline_us: float | None = None

    def slack_us(self, now_us: float) -> float:
        """Remaining time before the deadline (``inf`` without one)."""
        if self.deadline_us is None:
            return float("inf")
        return self.deadline_us - now_us


@dataclass
class Response:
    """The broker's answer to one request."""

    request: Request
    status: str
    #: rejection reason (``None`` unless rejected)
    reason: str | None = None
    #: served at the degraded configuration
    degraded: bool = False
    #: frame-size name the request was served at ("" when rejected)
    served_size: str = ""
    batch_id: int | None = None
    batch_size: int = 0
    #: virtual times of service start / completion (0 when rejected)
    start_us: float = 0.0
    finish_us: float = 0.0
    #: functional outputs (``None`` when execution is disabled/rejected)
    outputs: dict[str, np.ndarray] | None = None
    #: outputs checked bit-exact against the golden reference
    validated: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        return self.status == STATUS_REJECTED

    @property
    def latency_us(self) -> float:
        """Arrival-to-completion latency (0 for rejected requests)."""
        if self.rejected:
            return 0.0
        return self.finish_us - self.request.arrival_us

    def as_dict(self) -> dict:
        return {
            "rid": self.request.rid,
            "tenant": self.request.tenant,
            "frame": self.request.frame,
            "status": self.status,
            "reason": self.reason,
            "degraded": self.degraded,
            "served_size": self.served_size,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "arrival_us": round(self.request.arrival_us, 3),
            "finish_us": round(self.finish_us, 3),
            "latency_us": round(self.latency_us, 3),
        }


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of the broker, in one immutable bundle."""

    #: dynamic batcher: flush at this many pending requests ...
    max_batch: int = 8
    #: ... or when the oldest request has waited this long (derived from
    #: the SLO when ``None``: a quarter of it)
    max_wait_us: float | None = None
    #: latency objective; drives the batcher slack, admission and the
    #: degradation state machine
    slo_us: float = 50_000.0
    #: admission: reject arrivals beyond this many queued requests
    queue_budget: int = 64
    #: admission: also reject when the projected wait already breaks the
    #: request's deadline
    reject_infeasible: bool = True
    #: per-tenant token bucket (tokens; tokens/s of virtual time)
    quota_capacity: float = 1024.0
    quota_refill_per_s: float = 1024.0
    #: scheduler knobs forwarded to build_schedule
    depth: int | None = 2
    serialize: bool = False
    #: degradation hysteresis: consecutive breached evaluations to enter,
    #: consecutive clear evaluations (below recover_ratio x SLO) to leave
    degrade_enter: int = 3
    degrade_exit: int = 6
    degrade_recover_ratio: float = 0.7
    #: sliding window of completed latencies behind the p99 projection
    latency_window: int = 64
    #: functional execution: "all" runs every served request bit-exact
    #: against the golden reference, "none" serves timing only
    execute: str = "all"
    #: size of the device fleet the broker dispatches batches over; each
    #: batch occupies one device for its modelled makespan
    devices: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.slo_us <= 0:
            raise ValueError("slo_us must be positive")
        if self.queue_budget < 1:
            raise ValueError("queue_budget must be >= 1")
        if self.execute not in ("all", "none"):
            raise ValueError(f"execute must be all/none, not {self.execute!r}")

    @property
    def batch_wait_us(self) -> float:
        """Effective batcher wait bound."""
        return self.slo_us / 4.0 if self.max_wait_us is None else self.max_wait_us


def latency_buckets(slo_us: float) -> tuple[float, ...]:
    """Histogram bucket bounds anchored on the SLO."""
    return (slo_us / 4, slo_us / 2, slo_us, 2 * slo_us, 4 * slo_us)
