"""The asyncio request broker: the serving tier's front door.

Clients ``await broker.submit(tenant, frame, deadline_us=...)``; the
broker answers every submit with exactly one :class:`~repro.serve.types.
Response`.  Internally one service loop owns the simulated device fleet
(``ServeConfig.devices``, default one) and dispatches each flushed batch
to the device that vacates first:

1. **arrival** — quota (:mod:`repro.serve.quota`) and admission
   (:mod:`repro.serve.admission`) gates run synchronously; rejected
   requests never hold a queue slot;
2. **batching** — admitted requests queue in the
   :class:`~repro.serve.batcher.DynamicBatcher`, which flushes on
   max-batch-size or deadline slack, whichever first;
3. **service** — a flushed batch compiles through the shared
   :class:`~repro.runtime.cache.CompileCache`, is scheduled across the
   three engines by :func:`~repro.runtime.schedule.build_schedule`
   (modelled makespan = service time; per-request completion offsets
   come from the schedule, so early frames in a batch finish early), and
   optionally executes bit-exact against the golden reference;
4. **degradation** — the :class:`~repro.serve.degrade.DegradeController`
   re-evaluates at every flush; in DEGRADED state batches are served
   through the degraded job (CIF-size frames) until load recedes.

All waiting happens on the :class:`~repro.serve.clock.VirtualClock`, so
a run is deterministic and takes wall time proportional to the work, not
to the simulated timeline.  Request lifecycle stages land on the ambient
tracer; counters/gauges/histograms land in a
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.gpu.calibration import GTX480_CALIBRATED
from repro.gpu.cost import CostModel, CostParams
from repro.gpu.executor import GPUExecutor
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer, current_tracer, use_tracer
from repro.runtime.cache import CompileCache
from repro.runtime.pipeline import PipelineJob
from repro.runtime.schedule import build_schedule
from repro.serve.admission import AdmissionController
from repro.serve.batcher import DynamicBatcher, PendingEntry
from repro.serve.clock import VirtualClock
from repro.serve.degrade import DegradeController
from repro.serve.quota import QuotaManager
from repro.serve.types import (
    REJECT_QUOTA,
    STATUS_MISSED,
    STATUS_OK,
    STATUS_REJECTED,
    Request,
    Response,
    ServeConfig,
    latency_buckets,
)

__all__ = ["ServeBroker", "ServingReport"]


@dataclass
class _BatchRecord:
    batch_id: int
    size: int
    degraded: bool
    start_us: float
    makespan_us: float
    program: str
    device: int = 0


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one broker lifetime."""

    job: str
    config: ServeConfig = field(compare=False)
    offered: int
    completed_ok: int
    completed_missed: int
    rejected: int
    rejected_by_reason: dict[str, int]
    degraded_served: int
    validated: int
    batches: int
    batch_size_mean: float
    batch_size_max: int
    latency_p50_us: float
    latency_p95_us: float
    latency_p99_us: float
    duration_us: float
    #: ok responses per second of virtual time — the number the paper's
    #: throughput story becomes once there is a front door
    goodput_rps: float
    offered_rps: float
    queue_depth_high_water: int
    degrade_transitions: int
    per_tenant: dict[str, dict[str, int]]
    admission: dict
    quota: dict
    degrade: dict
    cache: dict
    devices: int = 1
    #: per-device dispatch totals ("d0": {batches, frames, busy_us, utilisation})
    per_device: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "job": self.job,
            "max_batch": self.config.max_batch,
            "slo_us": self.config.slo_us,
            "offered": self.offered,
            "completed_ok": self.completed_ok,
            "completed_missed": self.completed_missed,
            "rejected": self.rejected,
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "degraded_served": self.degraded_served,
            "validated": self.validated,
            "batches": self.batches,
            "batch_size_mean": round(self.batch_size_mean, 3),
            "batch_size_max": self.batch_size_max,
            "latency_p50_us": round(self.latency_p50_us, 3),
            "latency_p95_us": round(self.latency_p95_us, 3),
            "latency_p99_us": round(self.latency_p99_us, 3),
            "duration_us": round(self.duration_us, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "offered_rps": round(self.offered_rps, 3),
            "queue_depth_high_water": self.queue_depth_high_water,
            "degrade_transitions": self.degrade_transitions,
            "per_tenant": self.per_tenant,
            "admission": self.admission,
            "quota": self.quota,
            "degrade": self.degrade,
            "cache": self.cache,
        } | (
            {"devices": self.devices, "per_device": self.per_device}
            if self.devices > 1 else {}
        )

    def render(self) -> str:
        slo_ms = self.config.slo_us / 1000.0
        lines = [
            f"=== serve {self.job}: {self.offered} request(s), "
            f"max-batch {self.config.max_batch}, SLO {slo_ms:g} ms ===",
            f"  completed:  {self.completed_ok} ok, "
            f"{self.completed_missed} missed deadline",
            f"  rejected:   {self.rejected} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.rejected_by_reason.items())) or 'none'})",
            f"  degraded:   {self.degraded_served} served at degraded quality "
            f"({self.degrade_transitions} state transition(s))",
            f"  batches:    {self.batches} "
            f"(mean size {self.batch_size_mean:.2f}, max {self.batch_size_max})",
            f"  latency:    p50 {self.latency_p50_us / 1000:.2f} ms, "
            f"p95 {self.latency_p95_us / 1000:.2f} ms, "
            f"p99 {self.latency_p99_us / 1000:.2f} ms (SLO {slo_ms:g} ms)",
            f"  goodput:    {self.goodput_rps:.1f} rps of {self.offered_rps:.1f} rps "
            f"offered over {self.duration_us / 1e6:.3f} s",
            f"  queue:      high water {self.queue_depth_high_water}",
            f"  validated:  {self.validated} response(s) bit-exact vs golden",
        ]
        if self.devices > 1:
            shares = ", ".join(
                f"{name} {stats['batches']}b/{stats['frames']}f"
                for name, stats in sorted(self.per_device.items())
            )
            lines.insert(1, f"  fleet:      {self.devices} device(s): {shares}")
        return "\n".join(lines)


@dataclass
class _BatchOutcome:
    makespan_us: float
    #: per-request completion offsets from batch start, schedule-derived
    offsets_us: list[float]
    outputs: list[dict[str, np.ndarray] | None]
    validated: list[bool]
    program: str
    size_name: str


class ServeBroker:
    """Async multi-tenant front door over the modelled device runtime."""

    def __init__(
        self,
        job: PipelineJob,
        config: ServeConfig = ServeConfig(),
        degraded_job: PipelineJob | None = None,
        clock: VirtualClock | None = None,
        params: CostParams = GTX480_CALIBRATED,
        cache: CompileCache | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.job = job
        self.config = config
        self.degraded_job = degraded_job
        self.clock = clock if clock is not None else VirtualClock()
        self.cache = cache if cache is not None else CompileCache()
        self.executor = GPUExecutor(CostModel(params))
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else current_tracer()

        self.quota = QuotaManager(config.quota_capacity, config.quota_refill_per_s)
        self.admission = AdmissionController(
            queue_budget=config.queue_budget,
            max_batch=config.max_batch,
            reject_infeasible=config.reject_infeasible,
        )
        self.batcher = DynamicBatcher(
            max_batch=config.max_batch, max_wait_us=config.batch_wait_us
        )
        self.degrade = DegradeController(
            slo_us=config.slo_us,
            enter_breaches=config.degrade_enter,
            exit_clears=config.degrade_exit,
            recover_ratio=config.degrade_recover_ratio,
            window=config.latency_window,
        )

        self._rid = itertools.count()
        self._batch_id = itertools.count()
        #: virtual time each fleet device vacates; one entry per device —
        #: a batch is a unit of dispatch and occupies exactly one device
        self._device_free_us = [0.0] * config.devices
        self._responses: list[Response] = []
        self._batches: list[_BatchRecord] = []
        self._schedules: dict[tuple, object] = {}
        #: batch popped from the batcher but not yet handed to completion
        #: tasks — must still be failed if the service loop dies mid-batch
        self._inflight: list[PendingEntry] = []
        self._completions: set[asyncio.Task] = set()
        self._loop_task: asyncio.Task | None = None
        self._arrival: asyncio.Event | None = None
        self._stopping = False
        self._stopped = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "ServeBroker":
        """Spawn the service loop (idempotent)."""
        if self._loop_task is None:
            self._arrival = asyncio.Event()
            self._loop_task = asyncio.ensure_future(self._loop())
        return self

    async def stop(self) -> ServingReport:
        """Drain the queue, stop the loop, and return the report."""
        if self._loop_task is not None and not self._stopped:
            self._stopping = True
            self._arrival.set()
            await self._loop_task
            if self._completions:
                await asyncio.gather(*list(self._completions))
        self._stopped = True
        return self.report()

    async def drain(self) -> None:
        """Wait until every admitted request has completed."""
        while len(self.batcher) or self._completions or (
            max(self._device_free_us) > self.clock.now_us
        ):
            pending = list(self._completions)
            if pending:
                await asyncio.gather(*pending)
            elif max(self._device_free_us) > self.clock.now_us:
                await self.clock.sleep_until(max(self._device_free_us))
            else:
                # queued requests are waiting out the batcher's flush
                # timer; check back after one wait bound
                await self.clock.sleep(self.config.batch_wait_us)

    # -- client API ------------------------------------------------------------

    async def submit(
        self, tenant: str, frame: int, deadline_us: float | None = None
    ) -> Response:
        """Submit one frame; resolves when the request leaves the system.

        ``deadline_us`` is relative to arrival (virtual time).  Rejected
        requests resolve immediately — rejection is the broker answering
        *early*, not an exception.
        """
        if self._loop_task is None:
            raise ReproError("broker not started: call start() first")
        if self._stopped:
            raise ReproError("broker is stopped")
        now = self.clock.now_us
        request = Request(
            rid=next(self._rid),
            tenant=tenant,
            frame=frame,
            arrival_us=now,
            deadline_us=None if deadline_us is None else now + deadline_us,
        )
        self.tracer.event(
            f"request:{request.rid}", category="serve",
            stage="arrive", tenant=tenant, frame=frame,
        )
        if not self.quota.try_take(tenant, now):
            return self._reject(request, REJECT_QUOTA)
        backlog_us = max(0.0, min(self._device_free_us) - now)
        reason = self.admission.admit(request, len(self.batcher), backlog_us)
        if reason is not None:
            return self._reject(request, reason)
        future = asyncio.get_running_loop().create_future()
        self.batcher.push(PendingEntry(request, future))
        self._set_queue_gauge()
        self.tracer.event(
            f"request:{request.rid}", category="serve", stage="enqueue",
            depth=len(self.batcher),
        )
        self._arrival.set()
        return await future

    # -- service loop ----------------------------------------------------------

    async def _loop(self) -> None:
        try:
            await self._serve_forever()
        except BaseException as err:
            # fail every waiting client instead of stalling the clock
            stranded = list(self._inflight)
            self._inflight = []
            while len(self.batcher):
                stranded.extend(self.batcher.take())
            for entry in stranded:
                if not entry.future.done():
                    entry.future.set_exception(
                        ReproError(f"serve loop failed: {err}")
                    )
            raise

    async def _serve_forever(self) -> None:
        cfg = self.config
        while True:
            if not len(self.batcher):
                if self._stopping:
                    break
                self._arrival.clear()
                await self._arrival.wait()
                continue
            now = self.clock.now_us
            est = self.admission.batch_estimate_us(
                min(len(self.batcher), cfg.max_batch)
            )
            flush_at = self.batcher.next_flush_at_us(est)
            if min(self._device_free_us) <= now:
                # some device is idle: holding requests back cannot help —
                # coalescing only wins while every device is occupied by a
                # previous batch (the continuous-batching argument, applied
                # fleet-wide)
                flush_at = float("-inf")
            if flush_at > now and not self._stopping:
                # race the flush timer against new arrivals (which may
                # fill the batch and flush early)
                self._arrival.clear()
                sleeper = asyncio.ensure_future(self.clock.sleep_until(flush_at))
                waker = asyncio.ensure_future(self._arrival.wait())
                _, pending = await asyncio.wait(
                    {sleeper, waker}, return_when=asyncio.FIRST_COMPLETED
                )
                for p in pending:
                    p.cancel()
                continue
            now = self.clock.now_us
            for entry in self.batcher.expire(now):
                self._finish_unserved(entry, now)
            batch = self.batcher.take()
            self._inflight = batch
            self._set_queue_gauge()
            if not batch:
                continue
            self.degrade.evaluate(
                now,
                [e.request.arrival_us for e in batch]
                + self.batcher.queued_arrivals_us(),
                est,
            )
            degraded = self.degrade.degraded and self.degraded_job is not None
            # dispatch to the device that vacates first (ties -> lowest
            # index): the fleet analogue of the single serial resource
            device = min(
                range(len(self._device_free_us)),
                key=self._device_free_us.__getitem__,
            )
            start_us = max(now, self._device_free_us[device])
            outcome = self._execute_batch(batch, degraded)
            self._device_free_us[device] = start_us + outcome.makespan_us
            self.admission.observe_batch(len(batch), outcome.makespan_us)
            bid = next(self._batch_id)
            self._batches.append(_BatchRecord(
                batch_id=bid, size=len(batch), degraded=degraded,
                start_us=start_us, makespan_us=outcome.makespan_us,
                program=outcome.program, device=device,
            ))
            self.registry.histogram(
                "repro_serve_batch_size", buckets=(1, 2, 4, 8, 16, 32)
            ).observe(len(batch))
            for i, entry in enumerate(batch):
                response = Response(
                    request=entry.request,
                    status=STATUS_OK,  # finalised at completion time
                    degraded=degraded,
                    served_size=outcome.size_name,
                    batch_id=bid,
                    batch_size=len(batch),
                    start_us=start_us,
                    outputs=outcome.outputs[i],
                    validated=outcome.validated[i],
                )
                task = asyncio.ensure_future(
                    self._complete(entry, response, start_us + outcome.offsets_us[i])
                )
                self._completions.add(task)
                task.add_done_callback(self._completions.discard)
            self._inflight = []
            # each device is a serial resource: the next batch cannot start
            # (and should not flush) before the earliest one vacates
            await self.clock.sleep_until(min(self._device_free_us))

    def _execute_batch(self, batch: list[PendingEntry], degraded: bool) -> _BatchOutcome:
        job = self.degraded_job if degraded else self.job
        with use_tracer(self.tracer):
            with self.tracer.span(
                f"serve-batch:{job.name}", category="serve",
                size=len(batch), degraded=degraded,
            ) as span:
                program = job.compile(self.cache)
                ipf = job.instances_per_frame
                runs = len(batch) * ipf
                key = (job.name, id(program), runs)
                schedule = self._schedules.get(key)
                if schedule is None:
                    schedule = self._schedules[key] = build_schedule(
                        program, self.executor, runs=runs,
                        depth=self.config.depth, serialize=self.config.serialize,
                    )
                ends = [0.0] * len(batch)
                for node in schedule.nodes:
                    i = node.run // ipf
                    ends[i] = max(ends[i], node.end_us)
                outputs: list[dict | None] = [None] * len(batch)
                validated = [False] * len(batch)
                if self.config.execute == "all":
                    for i, entry in enumerate(batch):
                        outputs[i], validated[i] = self._run_request(
                            job, program, entry.request
                        )
                span.set(makespan_us=schedule.makespan_us, runs=runs)
                return _BatchOutcome(
                    makespan_us=schedule.makespan_us,
                    offsets_us=ends,
                    outputs=outputs,
                    validated=validated,
                    program=program.name,
                    size_name=getattr(getattr(job, "size", None), "name", "") or "",
                )

    def _run_request(self, job: PipelineJob, program, request: Request):
        """Functionally execute one request; bit-exact against the golden."""
        merged: dict[str, np.ndarray] = {}
        validated = True
        for instance in range(job.instances_per_frame):
            result = self.executor.run(program, job.env(request.frame, instance))
            expected = job.golden(request.frame, instance, program)
            if expected is None:
                validated = False
                merged.update(result.outputs)
                continue
            for name, want in expected.items():
                got = result.outputs.get(name)
                if got is None or not np.array_equal(got, want):
                    raise ReproError(
                        f"serve {job.name}: output {name!r} of request "
                        f"{request.rid} (frame {request.frame}, instance "
                        f"{instance}) is not bit-exact against the golden "
                        f"reference"
                    )
                # one output per instance on the SaC route: key by instance
                merged[name if job.instances_per_frame == 1 else f"{name}[{instance}]"] = got
        return merged, validated

    async def _complete(self, entry: PendingEntry, response: Response, at_us: float):
        await self.clock.sleep_until(at_us)
        response.finish_us = self.clock.now_us
        deadline = entry.request.deadline_us
        if deadline is not None and response.finish_us > deadline:
            response.status = STATUS_MISSED
        self.degrade.record_latency(response.latency_us)
        self._record(response)
        self.tracer.event(
            f"request:{entry.request.rid}", category="serve",
            stage="complete", status=response.status,
            latency_us=round(response.latency_us, 3),
        )
        entry.future.set_result(response)

    # -- bookkeeping -----------------------------------------------------------

    def _reject(self, request: Request, reason: str) -> Response:
        response = Response(request=request, status=STATUS_REJECTED, reason=reason)
        self._record(response)
        self.tracer.event(
            f"request:{request.rid}", category="serve",
            stage="reject", reason=reason,
        )
        return response

    def _finish_unserved(self, entry: PendingEntry, now_us: float) -> None:
        """A queued request whose deadline lapsed: missed, never served."""
        response = Response(
            request=entry.request, status=STATUS_MISSED,
            start_us=now_us, finish_us=now_us,
        )
        self.degrade.record_latency(response.latency_us)
        self._record(response)
        entry.future.set_result(response)

    def _record(self, response: Response) -> None:
        self._responses.append(response)
        self.registry.counter(
            "repro_serve_requests_total",
            tenant=response.request.tenant, status=response.status,
        ).inc()
        if not response.rejected:
            self.registry.histogram(
                "repro_serve_latency_us",
                buckets=latency_buckets(self.config.slo_us),
            ).observe(response.latency_us)
        if response.degraded:
            self.registry.counter("repro_serve_degraded_total").inc()

    def _set_queue_gauge(self) -> None:
        self.registry.gauge("repro_serve_queue_depth").set(len(self.batcher))

    # -- reporting -------------------------------------------------------------

    @property
    def responses(self) -> list[Response]:
        return list(self._responses)

    def report(self) -> ServingReport:
        responses = sorted(self._responses, key=lambda r: r.request.rid)
        served = [r for r in responses if not r.rejected]
        rejected = [r for r in responses if r.rejected]
        latencies = [r.latency_us for r in served]
        by_reason: dict[str, int] = {}
        for r in rejected:
            by_reason[r.reason] = by_reason.get(r.reason, 0) + 1
        per_tenant: dict[str, dict[str, int]] = {}
        for r in responses:
            t = per_tenant.setdefault(
                r.request.tenant, {"ok": 0, "missed": 0, "rejected": 0}
            )
            t[r.status] += 1
        duration_us = max(
            [self.clock.now_us] + [r.finish_us for r in served]
        )
        ok = sum(1 for r in served if r.ok)
        sizes = [b.size for b in self._batches]
        devices = self.config.devices
        per_device: dict[str, dict] = {}
        for k in range(devices):
            mine = [b for b in self._batches if b.device == k]
            busy = sum(b.makespan_us for b in mine)
            per_device[f"d{k}"] = {
                "batches": len(mine),
                "frames": sum(b.size for b in mine),
                "busy_us": round(busy, 3),
                "utilisation": round(busy / duration_us, 4) if duration_us else 0.0,
            }
        return ServingReport(
            job=self.job.name,
            config=self.config,
            offered=len(responses),
            completed_ok=ok,
            completed_missed=sum(1 for r in served if r.status == STATUS_MISSED),
            rejected=len(rejected),
            rejected_by_reason=by_reason,
            degraded_served=sum(1 for r in served if r.degraded),
            validated=sum(1 for r in served if r.validated),
            batches=len(self._batches),
            batch_size_mean=float(np.mean(sizes)) if sizes else 0.0,
            batch_size_max=max(sizes, default=0),
            latency_p50_us=float(np.percentile(latencies, 50)) if latencies else 0.0,
            latency_p95_us=float(np.percentile(latencies, 95)) if latencies else 0.0,
            latency_p99_us=float(np.percentile(latencies, 99)) if latencies else 0.0,
            duration_us=duration_us,
            goodput_rps=ok / (duration_us / 1e6) if duration_us > 0 else 0.0,
            offered_rps=(
                len(responses) / (duration_us / 1e6) if duration_us > 0 else 0.0
            ),
            queue_depth_high_water=self.batcher.depth_high_water,
            degrade_transitions=len(self.degrade.transitions),
            per_tenant=per_tenant,
            admission=self.admission.as_dict(),
            quota=self.quota.as_dict(),
            degrade=self.degrade.as_dict(),
            cache=self.cache.stats.as_dict(),
            devices=devices,
            per_device=per_device,
        )
