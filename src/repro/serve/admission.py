"""Admission control: reject early instead of serving late.

Two gates run at arrival time, before a request ever holds a queue slot:

* **queue budget** — a hard cap on pending requests.  Past it the system
  is overloaded by definition; accepting more only adds queueing delay
  for everyone already inside (the classic open-loop death spiral).
* **deadline feasibility** — once service-time estimates exist, a request
  whose projected completion (device backlog + queued batches ahead of
  it + its own batch) already overruns its deadline is refused up front:
  the client learns in microseconds instead of after burning device time
  on an answer it will discard.

Service estimates are EWMA-smoothed observations of completed batches,
split into a per-request cost and a per-batch overhead so the projection
tracks the batcher's actual coalescing.
"""

from __future__ import annotations


from repro.serve.types import REJECT_DEADLINE, REJECT_QUEUE, Request

__all__ = ["AdmissionController"]


class AdmissionController:
    """Arrival-time accept/reject decisions with smoothed projections."""

    #: EWMA smoothing factor for service-time observations
    ALPHA = 0.3

    def __init__(
        self,
        queue_budget: int,
        max_batch: int,
        reject_infeasible: bool = True,
    ):
        self.queue_budget = queue_budget
        self.max_batch = max_batch
        self.reject_infeasible = reject_infeasible
        #: EWMA of modelled makespan per request within a batch
        self._per_request_us: float | None = None
        #: rejections by reason
        self.rejections: dict[str, int] = {}

    # -- observation -----------------------------------------------------------

    def observe_batch(self, batch_size: int, makespan_us: float) -> None:
        """Fold one completed batch into the service estimate."""
        if batch_size <= 0:
            return
        sample = makespan_us / batch_size
        if self._per_request_us is None:
            self._per_request_us = sample
        else:
            self._per_request_us += self.ALPHA * (sample - self._per_request_us)

    @property
    def per_request_estimate_us(self) -> float | None:
        return self._per_request_us

    def batch_estimate_us(self, batch_size: int) -> float | None:
        """Projected makespan of a batch of ``batch_size`` requests."""
        if self._per_request_us is None:
            return None
        return self._per_request_us * max(1, batch_size)

    def projected_wait_us(self, queue_len: int, device_backlog_us: float) -> float:
        """Projected completion delay of the *next* arrival: the device's
        remaining busy time, everything queued ahead of it, plus its own
        service."""
        est = self._per_request_us
        if est is None:
            return device_backlog_us
        return device_backlog_us + (queue_len + 1) * est

    # -- decision --------------------------------------------------------------

    def admit(
        self,
        request: Request,
        queue_len: int,
        device_backlog_us: float,
    ) -> str | None:
        """``None`` to accept, else the rejection reason."""
        if queue_len >= self.queue_budget:
            return self._reject(REJECT_QUEUE)
        if (
            self.reject_infeasible
            and request.deadline_us is not None
            and self._per_request_us is not None
        ):
            projected = request.arrival_us + self.projected_wait_us(
                queue_len, device_backlog_us
            )
            if projected > request.deadline_us:
                return self._reject(REJECT_DEADLINE)
        return None

    def _reject(self, reason: str) -> str:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        return reason

    def as_dict(self) -> dict:
        return {
            "queue_budget": self.queue_budget,
            "per_request_estimate_us": (
                round(self._per_request_us, 3)
                if self._per_request_us is not None
                else None
            ),
            "rejections": dict(sorted(self.rejections.items())),
        }
