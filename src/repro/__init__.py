"""repro — reproduction of "Harnessing the Power of GPUs without Losing
Abstractions in SaC and ArrayOL: A Comparative Study" (HIPS 2011).

Two source-to-GPU compilation routes over a calibrated GPU simulator:

* :mod:`repro.sac` — a Single Assignment C subset: frontend, WITH-loop
  folding optimiser and CUDA backend;
* :mod:`repro.arrayol` — the ArrayOL metamodel with a Gaspard2-style
  transformation chain and OpenCL backend;
* :mod:`repro.tilers` — the shared tiler algebra;
* :mod:`repro.ir` / :mod:`repro.gpu` / :mod:`repro.cpu` — the kernel IR and
  the simulated GTX480 / i7 execution substrate;
* :mod:`repro.apps.downscaler` — the paper's H.263 downscaler case study
  and the experiment runner regenerating its tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
