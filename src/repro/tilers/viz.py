"""ASCII visualisation of tilings (debugging/documentation aid).

Renders which repetition point touches each array element — the picture
the paper's Figure 10 sketches for the downscaler's tiler specification.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TilerError
from repro.tilers.tiler import Tiler

__all__ = ["render_tiling", "render_pattern"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_tiling(tiler: Tiler, max_cells: int = 4096) -> str:
    """Mark every array element with the repetition point that writes it.

    Elements touched by several repetition points show ``*``; untouched
    elements show ``.``.  Only 1-D/2-D arrays of up to ``max_cells``
    elements render.
    """
    if tiler.array_rank > 2:
        raise TilerError("render_tiling handles 1-D and 2-D arrays only")
    total = int(np.prod(tiler.array_shape))
    if total > max_cells:
        raise TilerError(
            f"array too large to render ({total} > {max_cells} cells)"
        )
    owner = np.full(tiler.array_shape, -1, dtype=np.int64)  # -1 = untouched
    clash = np.zeros(tiler.array_shape, dtype=bool)
    elems = tiler.all_elements()
    rep_rank = tiler.repetition_rank
    flat_reps = elems.reshape((-1,) + tiler.pattern_shape + (tiler.array_rank,))
    rep_count = tiler.repetition_size
    for rep_flat in range(rep_count):
        coords = flat_reps[rep_flat].reshape(-1, tiler.array_rank)
        for coord in coords:
            idx = tuple(int(x) for x in coord)
            if owner[idx] == -1:
                owner[idx] = rep_flat
            elif owner[idx] != rep_flat:
                clash[idx] = True

    def glyph(o: int, c: bool) -> str:
        if c:
            return "*"
        if o < 0:
            return "."
        return _GLYPHS[o % len(_GLYPHS)]

    if tiler.array_rank == 1:
        return "".join(
            glyph(int(owner[i]), bool(clash[i])) for i in range(tiler.array_shape[0])
        )
    rows = []
    for r in range(tiler.array_shape[0]):
        rows.append(
            "".join(
                glyph(int(owner[r, c]), bool(clash[r, c]))
                for c in range(tiler.array_shape[1])
            )
        )
    return "\n".join(rows)


def render_pattern(tiler: Tiler, rep_index) -> str:
    """Mark the elements of one pattern (``#``) within the array (``.``)."""
    if tiler.array_rank > 2:
        raise TilerError("render_pattern handles 1-D and 2-D arrays only")
    mask = np.zeros(tiler.array_shape, dtype=bool)
    pats = np.indices(tiler.pattern_shape).reshape(tiler.pattern_rank, -1).T
    for pat in pats:
        coord = tuple(int(x) for x in tiler.element(rep_index, tuple(pat)))
        mask[coord] = True
    if tiler.array_rank == 1:
        return "".join("#" if mask[i] else "." for i in range(tiler.array_shape[0]))
    return "\n".join(
        "".join("#" if mask[r, c] else "." for c in range(tiler.array_shape[1]))
        for r in range(tiler.array_shape[0])
    )
