"""ArrayOL tiler algebra: specifications, gather/scatter, static analysis.

This package is the shared substrate of both compilation routes in the
paper: the ArrayOL/Gaspard2 route uses tilers as model connectors, while the
SaC route re-expresses the same origin/fitting/paving addressing inside
WITH-loops (paper Section VI).
"""

from repro.tilers.analysis import (
    TilerAccessGeometry,
    access_geometry,
    covers_array,
    duplicate_element_count,
    is_exact,
    is_injective,
    uncovered_element_count,
)
from repro.tilers.ops import flat_element_indices, gather, scatter, scatter_into_zeros
from repro.tilers.paving import coarsen_paving, paving_equivalent
from repro.tilers.regions import tiler_access_box
from repro.tilers.tiler import Tiler
from repro.tilers.viz import render_pattern, render_tiling

__all__ = [
    "Tiler",
    "gather",
    "scatter",
    "scatter_into_zeros",
    "flat_element_indices",
    "access_geometry",
    "TilerAccessGeometry",
    "is_injective",
    "covers_array",
    "is_exact",
    "duplicate_element_count",
    "uncovered_element_count",
    "tiler_access_box",
    "coarsen_paving",
    "paving_equivalent",
    "render_tiling", "render_pattern",
]
