"""Static analysis of tilers.

Two families of checks:

* **GILR validity** — properties ArrayOL requires of tilers used in a model:
  output tilers must write each array element at most once (injectivity) and,
  for exact production, exactly once (coverage).
* **Access geometry** — linearised strides of the tiling, consumed by the
  GPU simulator's coalescing model: when consecutive work-items (repetition
  points along the fastest-varying dimension) read addresses a fixed stride
  apart, memory transactions coalesce in inverse proportion to the stride.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tilers.ops import flat_element_indices
from repro.tilers.tiler import Tiler

__all__ = [
    "is_injective",
    "covers_array",
    "is_exact",
    "duplicate_element_count",
    "uncovered_element_count",
    "TilerAccessGeometry",
    "access_geometry",
]


def _flat_sorted(tiler: Tiler) -> np.ndarray:
    return np.sort(flat_element_indices(tiler).reshape(-1))


def duplicate_element_count(tiler: Tiler) -> int:
    """Number of (rep, pat) points that collide with an earlier one."""
    flat = _flat_sorted(tiler)
    return int(flat.size - np.unique(flat).size)


def uncovered_element_count(tiler: Tiler) -> int:
    """Number of array elements never addressed by the tiling."""
    flat = np.unique(_flat_sorted(tiler))
    total = int(np.prod(tiler.array_shape))
    return total - int(flat.size)


def is_injective(tiler: Tiler) -> bool:
    """True when no array element is addressed twice (safe output tiler)."""
    return duplicate_element_count(tiler) == 0


def covers_array(tiler: Tiler) -> bool:
    """True when every array element is addressed at least once."""
    return uncovered_element_count(tiler) == 0


def is_exact(tiler: Tiler) -> bool:
    """True when the tiling is a partition: injective and covering.

    This is the ArrayOL validity condition for a tiler that *produces* an
    array (every element written exactly once, honouring single assignment).
    """
    flat = _flat_sorted(tiler)
    total = int(np.prod(tiler.array_shape))
    return flat.size == total and duplicate_element_count(tiler) == 0


@dataclass(frozen=True)
class TilerAccessGeometry:
    """Linearised address strides of a tiling.

    Attributes
    ----------
    repetition_strides:
        Address delta (in elements, row-major) when the repetition index
        advances by one along each repetition dimension: ``P^T @ strides``.
    pattern_strides:
        Address delta when the pattern index advances by one along each
        pattern dimension: ``F^T @ strides``.
    innermost_repetition_stride:
        Stride along the fastest-varying repetition dimension — the quantity
        the coalescing model keys on (consecutive GPU threads enumerate the
        repetition space along its last axis).
    contiguous_pattern:
        Whether one pattern occupies consecutive addresses (unit stride along
        the fastest-varying pattern dimension and pattern rank 1).
    """

    repetition_strides: tuple[int, ...]
    pattern_strides: tuple[int, ...]
    innermost_repetition_stride: int
    contiguous_pattern: bool


def _row_major_strides(shape: tuple[int, ...]) -> np.ndarray:
    strides = np.ones(len(shape), dtype=np.int64)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return strides


def access_geometry(tiler: Tiler) -> TilerAccessGeometry:
    """Compute the linearised strides of a tiler (ignoring the modulo).

    The modulo only affects wrap-around tiles; the bulk of the address
    stream has the affine geometry computed here, which is what determines
    DRAM transaction coalescing.
    """
    strides = _row_major_strides(tiler.array_shape)
    rep = tiler.paving_mat.T @ strides
    pat = tiler.fitting_mat.T @ strides
    inner = int(rep[-1]) if rep.size else 0
    contiguous = tiler.pattern_rank == 1 and pat.size == 1 and abs(int(pat[0])) == 1
    return TilerAccessGeometry(
        repetition_strides=tuple(int(x) for x in rep),
        pattern_strides=tuple(int(x) for x in pat),
        innermost_repetition_stride=inner,
        contiguous_pattern=contiguous,
    )
