"""ArrayOL tiler specifications.

A *tiler* (Section IV of the paper) describes how a multidimensional array is
tiled by patterns.  It is defined by three pieces of data:

* the **origin vector** ``o`` — the reference element of the first pattern,
* the **fitting matrix** ``F`` — how a pattern is filled with array elements,
* the **paving matrix** ``P`` — how the array is covered by patterns.

For a repetition index ``r`` (a point of the *repetition space*) and a
pattern index ``i`` (a point of the *pattern space*), the addressed array
element is::

    ref(r) = (o + P @ r) mod shape(array)
    e(r,i) = (ref(r) + F @ i) mod shape(array)

All addressing is modular, so patterns wrap around array edges (toroidal
semantics) — this is the property that makes WITH-loop folding split edge
generators off the bulk in the SaC route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import TilerError

__all__ = ["Tiler"]


def _as_int_vector(name: str, value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim != 1:
        raise TilerError(f"{name} must be a 1-D integer vector, got shape {arr.shape}")
    return arr


def _as_int_matrix(name: str, value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim != 2:
        raise TilerError(f"{name} must be a 2-D integer matrix, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class Tiler:
    """An ArrayOL tiler binding an array to a (repetition, pattern) space.

    Parameters
    ----------
    origin:
        Origin vector ``o``; length equals the array rank.
    fitting:
        Fitting matrix ``F`` of shape ``(array_rank, pattern_rank)``.
    paving:
        Paving matrix ``P`` of shape ``(array_rank, repetition_rank)``.
    array_shape:
        Shape of the tiled array.
    pattern_shape:
        Shape of one pattern (the sub-array exchanged with the task).
    repetition_shape:
        Shape of the repetition space (how many patterns are taken).
    """

    origin: tuple[int, ...]
    fitting: tuple[tuple[int, ...], ...]
    paving: tuple[tuple[int, ...], ...]
    array_shape: tuple[int, ...]
    pattern_shape: tuple[int, ...]
    repetition_shape: tuple[int, ...]
    name: str = field(default="tiler", compare=False)

    def __post_init__(self) -> None:
        o = _as_int_vector("origin", self.origin)
        f = _as_int_matrix("fitting", self.fitting)
        p = _as_int_matrix("paving", self.paving)
        ashape = _as_int_vector("array_shape", self.array_shape)
        pshape = _as_int_vector("pattern_shape", self.pattern_shape)
        rshape = _as_int_vector("repetition_shape", self.repetition_shape)
        rank = ashape.size
        if np.any(ashape <= 0):
            raise TilerError(f"array_shape must be positive, got {self.array_shape}")
        if np.any(pshape <= 0):
            raise TilerError(f"pattern_shape must be positive, got {self.pattern_shape}")
        if np.any(rshape <= 0):
            raise TilerError(
                f"repetition_shape must be positive, got {self.repetition_shape}"
            )
        if o.size != rank:
            raise TilerError(
                f"origin has length {o.size} but the array has rank {rank}"
            )
        if f.shape != (rank, pshape.size):
            raise TilerError(
                f"fitting must have shape ({rank}, {pshape.size}), got {f.shape}"
            )
        if p.shape != (rank, rshape.size):
            raise TilerError(
                f"paving must have shape ({rank}, {rshape.size}), got {p.shape}"
            )
        # Canonicalise to plain tuples so the dataclass hashes/compares by value.
        object.__setattr__(self, "origin", tuple(int(x) for x in o))
        object.__setattr__(self, "fitting", tuple(tuple(int(x) for x in row) for row in f))
        object.__setattr__(self, "paving", tuple(tuple(int(x) for x in row) for row in p))
        object.__setattr__(self, "array_shape", tuple(int(x) for x in ashape))
        object.__setattr__(self, "pattern_shape", tuple(int(x) for x in pshape))
        object.__setattr__(self, "repetition_shape", tuple(int(x) for x in rshape))

    # -- basic geometry ----------------------------------------------------

    @property
    def array_rank(self) -> int:
        return len(self.array_shape)

    @property
    def pattern_rank(self) -> int:
        return len(self.pattern_shape)

    @property
    def repetition_rank(self) -> int:
        return len(self.repetition_shape)

    @cached_property
    def origin_vec(self) -> np.ndarray:
        return np.asarray(self.origin, dtype=np.int64)

    @cached_property
    def fitting_mat(self) -> np.ndarray:
        return np.asarray(self.fitting, dtype=np.int64)

    @cached_property
    def paving_mat(self) -> np.ndarray:
        return np.asarray(self.paving, dtype=np.int64)

    @cached_property
    def array_shape_vec(self) -> np.ndarray:
        return np.asarray(self.array_shape, dtype=np.int64)

    @property
    def pattern_size(self) -> int:
        return int(np.prod(self.pattern_shape))

    @property
    def repetition_size(self) -> int:
        return int(np.prod(self.repetition_shape))

    # -- addressing --------------------------------------------------------

    def reference(self, rep_index) -> np.ndarray:
        """Array coordinates of the reference element of pattern ``rep_index``."""
        r = _as_int_vector("rep_index", rep_index)
        if r.size != self.repetition_rank:
            raise TilerError(
                f"repetition index {tuple(r)} has rank {r.size}, "
                f"expected {self.repetition_rank}"
            )
        if np.any(r < 0) or np.any(r >= self.repetition_shape):
            raise TilerError(
                f"repetition index {tuple(r)} outside repetition space "
                f"{self.repetition_shape}"
            )
        return (self.origin_vec + self.paving_mat @ r) % self.array_shape_vec

    def element(self, rep_index, pat_index) -> np.ndarray:
        """Array coordinates of element ``pat_index`` of pattern ``rep_index``."""
        i = _as_int_vector("pat_index", pat_index)
        if i.size != self.pattern_rank:
            raise TilerError(
                f"pattern index {tuple(i)} has rank {i.size}, "
                f"expected {self.pattern_rank}"
            )
        if np.any(i < 0) or np.any(i >= self.pattern_shape):
            raise TilerError(
                f"pattern index {tuple(i)} outside pattern space {self.pattern_shape}"
            )
        return (self.reference(rep_index) + self.fitting_mat @ i) % self.array_shape_vec

    @cached_property
    def all_references(self) -> np.ndarray:
        """Reference coordinates for the whole repetition space.

        Shape ``repetition_shape + (array_rank,)``.
        """
        reps = np.indices(self.repetition_shape, dtype=np.int64)
        reps = np.moveaxis(reps, 0, -1)  # rep_shape + (rep_rank,)
        refs = self.origin_vec + reps @ self.paving_mat.T
        return refs % self.array_shape_vec

    @cached_property
    def pattern_offsets(self) -> np.ndarray:
        """Offsets ``F @ i`` for every pattern index, *before* the modulo.

        Shape ``pattern_shape + (array_rank,)``.
        """
        pats = np.indices(self.pattern_shape, dtype=np.int64)
        pats = np.moveaxis(pats, 0, -1)
        return pats @ self.fitting_mat.T

    def all_elements(self) -> np.ndarray:
        """Array coordinates for every (rep, pat) point.

        Shape ``repetition_shape + pattern_shape + (array_rank,)``.  This is
        the dense enumeration used by :mod:`repro.tilers.ops` for the
        vectorised gather/scatter and by the validators.
        """
        refs = self.all_references.reshape(
            self.repetition_shape + (1,) * self.pattern_rank + (self.array_rank,)
        )
        offs = self.pattern_offsets.reshape(
            (1,) * self.repetition_rank + self.pattern_shape + (self.array_rank,)
        )
        return (refs + offs) % self.array_shape_vec

    # -- wrap analysis -------------------------------------------------------

    def wrapping_repetitions(self) -> np.ndarray:
        """Boolean mask over the repetition space marking patterns that wrap.

        A pattern *wraps* when at least one of its elements leaves the array
        bounds before the modulo is applied, i.e. the modular addressing is
        actually exercised.  Shape ``repetition_shape``.
        """
        refs = self.all_references.reshape(
            self.repetition_shape + (1,) * self.pattern_rank + (self.array_rank,)
        )
        offs = self.pattern_offsets.reshape(
            (1,) * self.repetition_rank + self.pattern_shape + (self.array_rank,)
        )
        raw = refs + offs
        out_of_bounds = (raw < 0) | (raw >= self.array_shape_vec)
        axes = tuple(
            range(self.repetition_rank, self.repetition_rank + self.pattern_rank + 1)
        )
        return out_of_bounds.any(axis=axes)

    def wraps_anywhere(self) -> bool:
        """True when any pattern of the tiling exercises modular addressing."""
        return bool(self.wrapping_repetitions().any())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tiler({self.name!r}, array={self.array_shape}, "
            f"pattern={self.pattern_shape}, repetition={self.repetition_shape}, "
            f"o={list(self.origin)}, F={[list(r) for r in self.fitting]}, "
            f"P={[list(r) for r in self.paving]})"
        )
