"""Vectorised gather/scatter over tilers.

These are the reference implementations of the two tiler roles the paper
uses (Section VI):

* an **input tiler** *gathers* a pattern per repetition point into an
  intermediate array of shape ``repetition_shape + pattern_shape``;
* an **output tiler** *scatters* such an intermediate array back into a
  result array.

Both are implemented with a single fancy-indexing operation over the dense
element enumeration, i.e. no Python-level loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TilerError
from repro.tilers.tiler import Tiler

__all__ = ["gather", "scatter", "scatter_into_zeros", "flat_element_indices"]


def flat_element_indices(tiler: Tiler) -> np.ndarray:
    """Row-major flat array index for every (rep, pat) point.

    Shape ``repetition_shape + pattern_shape``.
    """
    coords = tiler.all_elements()
    strides = np.ones(tiler.array_rank, dtype=np.int64)
    for d in range(tiler.array_rank - 2, -1, -1):
        strides[d] = strides[d + 1] * tiler.array_shape[d + 1]
    return coords @ strides


def gather(tiler: Tiler, array: np.ndarray) -> np.ndarray:
    """Gather patterns from ``array``.

    Returns an array of shape ``repetition_shape + pattern_shape`` whose
    ``[r..., i...]`` element is ``array[e(r, i)]``.
    """
    arr = np.asarray(array)
    if arr.shape != tiler.array_shape:
        raise TilerError(
            f"gather: array shape {arr.shape} does not match tiler array shape "
            f"{tiler.array_shape}"
        )
    flat = flat_element_indices(tiler)
    return arr.reshape(-1)[flat]


def scatter(tiler: Tiler, values: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Scatter ``values`` through the tiler into ``out`` (modified in place).

    ``values`` must have shape ``repetition_shape + pattern_shape``.  When
    several (rep, pat) points address the same array element the one with the
    highest row-major (rep, pat) order wins, matching the sequential
    for-loop-nest semantics of the paper's generic output tiler (Figure 6).
    """
    vals = np.asarray(values)
    expected = tiler.repetition_shape + tiler.pattern_shape
    if vals.shape != expected:
        raise TilerError(
            f"scatter: values shape {vals.shape} does not match "
            f"repetition+pattern shape {expected}"
        )
    if out.shape != tiler.array_shape:
        raise TilerError(
            f"scatter: output shape {out.shape} does not match tiler array shape "
            f"{tiler.array_shape}"
        )
    flat = flat_element_indices(tiler).reshape(-1)
    out.reshape(-1)[flat] = vals.reshape(-1)
    return out


def scatter_into_zeros(tiler: Tiler, values: np.ndarray, dtype=None) -> np.ndarray:
    """Scatter into a fresh zero-initialised array of the tiler's array shape."""
    vals = np.asarray(values)
    out = np.zeros(tiler.array_shape, dtype=dtype if dtype is not None else vals.dtype)
    return scatter(tiler, vals, out)
