"""Parametric pavings: legal coarsenings of a tiler's ``o/F/P`` triplet.

The Figure 10 tilers are one point in a family: any paving that visits the
same array elements with the same per-element arithmetic is a legal
alternative (Feautrier's elementary transformation analysis for Array-OL
formalises exactly these re-pavings).  The transformation implemented here
is **paving coarsening** — fuse ``factor`` consecutive repetition steps
along one repetition dimension into a single, wider pattern:

* the paving column of that dimension is scaled by ``factor`` (each step
  now advances ``factor`` packets),
* the repetition extent divides by ``factor``,
* the pattern extends along the fitting direction the paving column is a
  multiple of, absorbing the ``factor - 1`` skipped packets.

The result trades repetition-space size (work-items / WLF generator
extent) against pattern size (per-item work) without changing the set of
array elements addressed — the knob :mod:`repro.tune` searches as the
ArrayOL "paving granularity" dimension.

Legality is *checked*, not assumed: :func:`paving_equivalent` compares the
:func:`~repro.tilers.regions.tiler_access_box` footprints of the base and
the coarsened tiler through the region oracle's containment test, so an
illegal re-paving can never reach the simulator.
"""

from __future__ import annotations

from repro.errors import TilerError
from repro.tilers.regions import tiler_access_box
from repro.tilers.tiler import Tiler

__all__ = ["coarsen_paving", "paving_equivalent"]


def coarsen_paving(tiler: Tiler, rep_dim: int, factor: int) -> Tiler:
    """Fuse ``factor`` consecutive steps of ``rep_dim`` into one pattern.

    Requires the repetition extent of ``rep_dim`` to be divisible by
    ``factor`` and the paving column of ``rep_dim`` to be a positive
    integer multiple of exactly one fitting column (the pattern must be
    extendable *along the direction the paving advances* — a paving that
    moves diagonally to every pattern axis has no 1-D coarsening).
    Raises :class:`~repro.errors.TilerError` otherwise.
    """
    if factor < 1:
        raise TilerError(f"paving factor must be >= 1, got {factor}")
    if not 0 <= rep_dim < tiler.repetition_rank:
        raise TilerError(
            f"repetition dimension {rep_dim} outside rank "
            f"{tiler.repetition_rank}"
        )
    if factor == 1:
        return tiler
    extent = tiler.repetition_shape[rep_dim]
    if extent % factor:
        raise TilerError(
            f"{tiler.name}: repetition extent {extent} of dimension "
            f"{rep_dim} is not divisible by paving factor {factor}"
        )
    pav_col = tuple(tiler.paving[d][rep_dim] for d in range(tiler.array_rank))
    if all(c == 0 for c in pav_col):
        raise TilerError(
            f"{tiler.name}: paving column {rep_dim} is zero; nothing to coarsen"
        )
    # find the unique fitting column the paving column is a multiple of
    match = None
    for k in range(tiler.pattern_rank):
        fit_col = tuple(tiler.fitting[d][k] for d in range(tiler.array_rank))
        stride = None
        for p, f in zip(pav_col, fit_col):
            if f == 0:
                if p != 0:
                    stride = None
                    break
                continue
            q, r = divmod(p, f)
            if r or q < 1 or (stride is not None and q != stride):
                stride = None
                break
            stride = q
        if stride is not None:
            if match is not None:
                raise TilerError(
                    f"{tiler.name}: paving column {rep_dim} matches several "
                    f"fitting columns; coarsening is ambiguous"
                )
            match = (k, stride)
    if match is None:
        raise TilerError(
            f"{tiler.name}: paving column {rep_dim} ({pav_col}) is not an "
            f"integer multiple of any fitting column; cannot coarsen"
        )
    k, stride = match

    paving = tuple(
        tuple(
            c * factor if m == rep_dim else c
            for m, c in enumerate(row)
        )
        for row in tiler.paving
    )
    repetition = tuple(
        n // factor if m == rep_dim else n
        for m, n in enumerate(tiler.repetition_shape)
    )
    pattern = tuple(
        (factor - 1) * stride + n if j == k else n
        for j, n in enumerate(tiler.pattern_shape)
    )
    return Tiler(
        origin=tiler.origin,
        fitting=tiler.fitting,
        paving=paving,
        array_shape=tiler.array_shape,
        pattern_shape=pattern,
        repetition_shape=repetition,
        name=f"{tiler.name}_x{factor}",
    )


#: dense-fallback cap: beyond this many (rep, pat) points the footprints
#: must be proved symbolically or the answer is the conservative False
_DENSE_LIMIT = 1 << 24


def _separable_axis_sets(tiler: Tiler):
    """Per-dimension touched coordinate sets, when the footprint factors.

    The footprint of a tiler is the product of per-dimension 1-D sets
    exactly when every pattern/repetition index component contributes to
    at most one array dimension (no column of ``F`` or ``P`` couples two
    dims).  Returns one sorted unique ``ndarray`` per dimension, or
    ``None`` when the tiler is not separable.
    """
    import numpy as np

    columns = [
        tuple(tiler.fitting[d][k] for d in range(tiler.array_rank))
        for k in range(tiler.pattern_rank)
    ] + [
        tuple(tiler.paving[d][m] for d in range(tiler.array_rank))
        for m in range(tiler.repetition_rank)
    ]
    for col in columns:
        if sum(1 for c in col if c) > 1:
            return None
    counts = tuple(tiler.pattern_shape) + tuple(tiler.repetition_shape)
    sets = []
    for d, n in enumerate(tiler.array_shape):
        values = np.asarray([tiler.origin[d]], dtype=np.int64)
        for (col, cnt) in zip(columns, counts):
            c = col[d]
            if c == 0 or cnt == 1:
                continue
            values = (values[:, None] + c * np.arange(cnt, dtype=np.int64)).ravel()
            values = np.unique(values)
        sets.append(np.unique(values % n))
    return sets


def paving_equivalent(base: Tiler, alt: Tiler) -> bool:
    """Do the two tilers provably address the same array elements?

    The legality oracle of the paving search.  Both footprints are first
    collapsed to strided boxes by :func:`~repro.tilers.regions.
    tiler_access_box`; mutual containment of *exact* boxes is equality of
    the addressed sets.  When a wrap widened either box (the downscaler's
    input tilers wrap at the frame edge, so their boxes are inexact), the
    footprints are compared densely — per dimension when both tilers are
    separable (each index component moves one array dim, so the footprint
    is a product of 1-D sets), otherwise over the full enumeration up to
    ``_DENSE_LIMIT`` points, past which the conservative answer is
    ``False``.
    """
    import numpy as np

    from repro.analysis.regions import box_contains
    from repro.tilers.ops import flat_element_indices

    if base.array_shape != alt.array_shape:
        return False
    bbox = tiler_access_box(base)
    abox = tiler_access_box(alt)
    if bbox.exact and abox.exact:
        return box_contains(bbox, abox) and box_contains(abox, bbox)
    base_sets = _separable_axis_sets(base)
    alt_sets = _separable_axis_sets(alt)
    if base_sets is not None and alt_sets is not None:
        return all(
            np.array_equal(b, a) for b, a in zip(base_sets, alt_sets)
        )
    points = (
        base.repetition_size * base.pattern_size
        + alt.repetition_size * alt.pattern_size
    )
    if points > _DENSE_LIMIT:
        return False
    base_set = np.unique(flat_element_indices(base))
    alt_set = np.unique(flat_element_indices(alt))
    return base_set.shape == alt_set.shape and bool(
        np.array_equal(base_set, alt_set)
    )
