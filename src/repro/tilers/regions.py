"""Access regions of ArrayOL tilers, in the optimiser's box language.

A tiler addresses ``o + F @ i + P @ r  (mod array_shape)`` — per array
dimension an affine progression over the pattern and repetition index
spaces.  When no dimension wraps, that progression is exactly the
``const + sum(coef * x)`` form :func:`repro.analysis.regions.
progression_box` collapses, so the footprint of a whole tiler collapses
to one strided :class:`~repro.analysis.regions.Box` — the same currency
the region oracle speaks for kernels and transfers, which lets the
ArrayOL route's connectors participate in disjointness proofs.

A dimension that *does* wrap (the modulo folds some reference back into
the array) covers an interval that is not a single progression; it is
widened to the whole dimension and the box is marked inexact.
"""

from __future__ import annotations

from repro.tilers.tiler import Tiler

__all__ = ["tiler_access_box"]


def tiler_access_box(tiler: Tiler):
    """The strided box of array elements ``tiler`` touches.

    Exact (``box.exact``) when every dimension's progression is complete
    and nothing wraps; dimensions that wrap are widened to ``[0, n)`` and
    drop exactness.  The result always *contains* every touched element,
    so it is sound for ``may_alias``-style overlap queries; coverage
    queries additionally require exactness, as everywhere else in
    :mod:`repro.analysis.regions`.
    """
    # imported here: repro.analysis.__init__ pulls in the tiler lint,
    # which imports this package — a module-level import would cycle
    from repro.analysis.regions import Box, Seg, progression_box

    segs: list[Seg] = []
    exact = True
    for d, n in enumerate(tiler.array_shape):
        const = tiler.origin[d]
        contributions = [
            (tiler.fitting[d][k], tiler.pattern_shape[k])
            for k in range(tiler.pattern_rank)
        ] + [
            (tiler.paving[d][k], tiler.repetition_shape[k])
            for k in range(tiler.repetition_rank)
        ]
        raw_lo = const + sum(
            min(0, c * (cnt - 1)) for c, cnt in contributions if cnt > 1
        )
        raw_hi = const + sum(
            max(0, c * (cnt - 1)) for c, cnt in contributions if cnt > 1
        )
        if raw_lo < 0 or raw_hi >= n:
            # the modulo wraps references around this dimension: the
            # touched set is a union of progressions, not one — widen
            segs.append(Seg(0, n - 1, 1))
            exact = False
            continue
        seg, seg_exact = progression_box(const, contributions)
        segs.append(seg)
        exact = exact and seg_exact
    return Box(segs=tuple(segs), exact=exact)
