"""Simulated GPU substrate: device model, memory, cost model, profiler,
executor.

The paper measured a real GTX480; this package substitutes a calibrated
performance simulator (see DESIGN.md §2) that executes kernel IR
functionally while charging modelled time, so the structural comparisons of
the evaluation — kernel counts, transfer shares, route orderings — are
reproduced without GPU hardware.
"""

from repro.gpu.calibration import GTX480_CALIBRATED, UNCALIBRATED
from repro.gpu.coalescing import access_efficiency, mean_inflation, transactions_per_warp
from repro.gpu.cost import CostModel, CostParams, KernelCostBreakdown
from repro.gpu.device import GTX480, I7_930, DeviceSpec, HostSpec
from repro.gpu.executor import GPUExecutor, RunResult
from repro.gpu.memory import DeviceBuffer, MemoryManager
from repro.gpu.profiler import ProfileEvent, ProfileRow, Profiler
from repro.gpu.stream import OverlapResult, ScheduledOp, overlapped_makespan

__all__ = [
    "DeviceSpec", "HostSpec", "GTX480", "I7_930",
    "CostModel", "CostParams", "KernelCostBreakdown",
    "GTX480_CALIBRATED", "UNCALIBRATED",
    "transactions_per_warp", "access_efficiency", "mean_inflation",
    "MemoryManager", "DeviceBuffer",
    "Profiler", "ProfileEvent", "ProfileRow",
    "GPUExecutor", "RunResult",
    "overlapped_makespan", "OverlapResult", "ScheduledOp",
]
