"""Execution profiler in the style of ``cudaprof``.

Collects one event per simulated operation and aggregates them into the
``(operation, #calls, GPU time us, GPU time %)`` rows the paper's Tables I
and II report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProfileEvent", "ProfileRow", "Profiler"]


@dataclass(frozen=True)
class ProfileEvent:
    """One simulated operation instance."""

    operation: str  # e.g. kernel name, "memcpyHtoDasync", "host"
    category: str  # "kernel" | "h2d" | "d2h" | "host"
    duration_us: float
    bytes: int = 0


@dataclass(frozen=True)
class ProfileRow:
    """An aggregated table row."""

    operation: str
    calls: int
    gpu_time_us: float
    gpu_time_pct: float


@dataclass
class Profiler:
    """Accumulates events; supports the grouped aggregation of the tables."""

    events: list[ProfileEvent] = field(default_factory=list)

    def record(
        self, operation: str, category: str, duration_us: float, bytes: int = 0
    ) -> None:
        if duration_us < 0:
            raise ValueError("event duration must be non-negative")
        self.events.append(ProfileEvent(operation, category, duration_us, bytes))

    def clear(self) -> None:
        self.events.clear()

    # -- aggregations ---------------------------------------------------------

    @property
    def total_us(self) -> float:
        return sum(e.duration_us for e in self.events)

    def total_by_category(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0.0) + e.duration_us
        return out

    def calls_by_category(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    def rows(self, grouping: dict[str, str] | None = None) -> list[ProfileRow]:
        """Aggregate events into table rows.

        ``grouping`` maps an event operation name to a row label (e.g. all
        five horizontal-filter kernels to ``"H. Filter (5 kernels)"``);
        unmapped operations keep their own name.  Percentages are of the
        grand total, as in the paper's tables.
        """
        grouping = grouping or {}
        calls: dict[str, int] = {}
        times: dict[str, float] = {}
        order: list[str] = []
        for e in self.events:
            label = grouping.get(e.operation, e.operation)
            if label not in times:
                order.append(label)
            calls[label] = calls.get(label, 0) + 1
            times[label] = times.get(label, 0.0) + e.duration_us
        total = sum(times.values())
        return [
            ProfileRow(
                operation=label,
                calls=calls[label],
                gpu_time_us=times[label],
                gpu_time_pct=(100.0 * times[label] / total) if total else 0.0,
            )
            for label in order
        ]

    def calls_of(self, operation: str) -> int:
        return sum(1 for e in self.events if e.operation == operation)

    def time_of(self, operation: str) -> float:
        return sum(e.duration_us for e in self.events if e.operation == operation)
