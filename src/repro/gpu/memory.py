"""Simulated device memory manager.

Backs each device buffer with a host NumPy array while enforcing the device
capacity (the GTX480's 1.5 GB), detecting leaks, double frees and dangling
handles — the failure modes a real CUDA allocator surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AllocationError
from repro.gpu.device import DeviceSpec

__all__ = ["DeviceBuffer", "MemoryManager"]


@dataclass
class DeviceBuffer:
    """A live device allocation."""

    name: str
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype


class MemoryManager:
    """Tracks device allocations against a device's capacity.

    With :attr:`pooling` enabled (programs optimised by the
    :mod:`repro.opt` liveness pass set ``DeviceProgram.pooled``), freed
    blocks are retained on a free-list keyed by exact geometry and served
    back to later allocations of the same shape/dtype — repeated frames
    reuse slots instead of round-tripping the allocator.  Retained pool
    bytes still count against device capacity and the peak.
    """

    def __init__(self, device: DeviceSpec):
        self.device = device
        self._buffers: dict[str, DeviceBuffer] = {}
        self._bytes_in_use = 0
        self._peak_bytes = 0
        self._alloc_count = 0
        self._free_count = 0
        self.pooling = False
        self._pool: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self._pool_bytes = 0
        self._pool_hits = 0

    # -- allocation ----------------------------------------------------------

    @staticmethod
    def _pool_key(shape: tuple[int, ...], dtype: str) -> tuple[tuple[int, ...], str]:
        return (tuple(int(x) for x in shape), np.dtype(dtype).str)

    def alloc(self, name: str, shape: tuple[int, ...], dtype: str = "int32") -> DeviceBuffer:
        if name in self._buffers:
            raise AllocationError(f"device buffer {name!r} already allocated")
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        blocks = self._pool.get(self._pool_key(shape, dtype)) if self.pooling else None
        if blocks:
            data = blocks.pop()
            data[...] = 0  # fresh allocations are zero-filled
            self._pool_bytes -= nbytes
            self._pool_hits += 1
        else:
            if self._bytes_in_use + self._pool_bytes + nbytes > self.device.memory_bytes:
                raise AllocationError(
                    f"device out of memory allocating {name!r}: need {nbytes} bytes, "
                    f"{self.available_bytes} available of {self.device.memory_bytes}"
                )
            data = np.zeros(shape, dtype=dtype)
        buf = DeviceBuffer(name=name, data=data)
        self._buffers[name] = buf
        self._bytes_in_use += nbytes
        self._peak_bytes = max(self._peak_bytes, self._bytes_in_use + self._pool_bytes)
        self._alloc_count += 1
        return buf

    def free(self, name: str) -> None:
        try:
            buf = self._buffers.pop(name)
        except KeyError:
            raise AllocationError(
                f"free of unknown or already-freed device buffer {name!r}"
            ) from None
        self._bytes_in_use -= buf.nbytes
        self._free_count += 1
        if self.pooling:
            key = self._pool_key(buf.shape, str(buf.dtype))
            self._pool.setdefault(key, []).append(buf.data)
            self._pool_bytes += buf.nbytes

    def set_pooling(self, enabled: bool) -> None:
        """Switch pooled allocation on or off (off drains the pool)."""
        self.pooling = bool(enabled)
        if not self.pooling:
            self.drain_pool()

    def drain_pool(self) -> int:
        """Release every retained block; returns the bytes released."""
        released = self._pool_bytes
        self._pool.clear()
        self._pool_bytes = 0
        return released

    def get(self, name: str) -> DeviceBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise AllocationError(f"device buffer {name!r} is not allocated") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def reset(self) -> None:
        """Free everything and zero the statistics (full device reset).

        A reset device reports fresh numbers: without the counter reset,
        back-to-back pipeline runs read the *previous* run's peak and
        alloc/free totals.  Use :meth:`reset_stats` to re-base the
        statistics while keeping live allocations.
        """
        self._buffers.clear()
        self._bytes_in_use = 0
        self.drain_pool()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the cumulative counters; the peak re-bases to current usage."""
        self._peak_bytes = self._bytes_in_use + self._pool_bytes
        self._alloc_count = 0
        self._free_count = 0
        self._pool_hits = 0

    # -- accounting --------------------------------------------------------------

    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def available_bytes(self) -> int:
        return self.device.memory_bytes - self._bytes_in_use - self._pool_bytes

    @property
    def pool_bytes(self) -> int:
        return self._pool_bytes

    @property
    def pool_hits(self) -> int:
        return self._pool_hits

    @property
    def live_buffers(self) -> tuple[str, ...]:
        return tuple(self._buffers)

    @property
    def alloc_count(self) -> int:
        return self._alloc_count

    @property
    def free_count(self) -> int:
        return self._free_count

    def assert_no_leaks(self) -> None:
        """Raise when allocations remain live (end-of-program check)."""
        if self._buffers:
            raise AllocationError(
                f"device memory leak: live buffers {sorted(self._buffers)}"
            )
