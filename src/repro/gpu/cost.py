"""Analytic cost model of the simulated GPU and host.

The model charges every device-program operation a duration:

* **transfers** — ``latency + bytes / bandwidth``, with separate effective
  H2D and D2H bandwidths (PCIe x16 Gen2 is asymmetric in practice; the
  paper's tables imply ~5.4 GB/s H2D and ~6.3 GB/s D2H);
* **kernel launches** — ``overhead + max(issue_time, memory_time)``:

  - *issue time* models the instruction pipeline: every work-item issues
    its reads, writes and arithmetic ops at an effective rate.  The paper's
    downscaler kernels are issue-bound, which is what makes the per-kernel
    times track per-item operation counts rather than raw traffic;
  - *memory time* models DRAM: the launch's **unique** bytes (re-reads of
    the same data within one kernel hit in cache) inflated by warp
    coalescing from the probed access strides.  Fragmenting one fused
    kernel into many (the SaC route after WLF) increases the *sum of
    unique bytes across launches* — the data-reuse loss the paper blames
    in Section VIII-C;

* **host compute / sequential programs** — items x ops at an effective
  scalar rate (single-core, the SaC sequential backend is single-threaded).

All free parameters live in :class:`CostParams`; the published calibration
against the paper's Tables I/II is in :mod:`repro.gpu.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.coalescing import mean_inflation
from repro.gpu.device import GTX480, I7_930, DeviceSpec, HostSpec
from repro.ir.kernel import Kernel
from repro.ir.metrics import AccessProfile
from repro.ir.program import HostWork

__all__ = ["CostParams", "KernelCostBreakdown", "CostModel"]


@dataclass(frozen=True)
class CostParams:
    """Free parameters of the cost model (all rates are *effective*)."""

    #: PCIe host-to-device bandwidth, bytes/us.
    h2d_bandwidth: float
    #: PCIe device-to-host bandwidth, bytes/us.
    d2h_bandwidth: float
    #: fixed cost per transfer call, us.
    transfer_latency_us: float
    #: fixed cost per kernel launch, us.
    launch_overhead_us: float
    #: device instruction issue rate, operations/us (across all SMs).
    issue_rate_ops_per_us: float
    #: weight of one array read in issue slots.
    read_issue_weight: float
    #: weight of one array write in issue slots.
    write_issue_weight: float
    #: weight of one arithmetic op in issue slots.
    flop_issue_weight: float
    #: fixed issue slots per work-item (index computation, predicates).
    base_issue_ops: float
    #: effective DRAM bandwidth, bytes/us.
    dram_bandwidth: float
    #: host scalar execution rate, operations/us (single core).
    host_rate_ops_per_us: float
    #: enable the coalescing inflation of memory time.
    model_coalescing: bool = True
    #: enable the memory-time term entirely (else issue-bound only).
    model_memory: bool = True

    def with_overrides(self, **kwargs) -> "CostParams":
        """A copy with the given fields replaced (for ablation benches)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class KernelCostBreakdown:
    """Per-launch cost decomposition (for reports and ablations)."""

    launch_overhead_us: float
    issue_time_us: float
    memory_time_us: float

    @property
    def total_us(self) -> float:
        return self.launch_overhead_us + max(self.issue_time_us, self.memory_time_us)

    @property
    def bound(self) -> str:
        return "issue" if self.issue_time_us >= self.memory_time_us else "memory"


class CostModel:
    """Charges durations (in microseconds) to simulated operations."""

    def __init__(
        self,
        params: CostParams,
        device: DeviceSpec = GTX480,
        host: HostSpec = I7_930,
    ):
        self.params = params
        self.device = device
        self.host = host

    # -- transfers -----------------------------------------------------------

    def h2d_time_us(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.params.transfer_latency_us + nbytes / self.params.h2d_bandwidth

    def d2h_time_us(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.params.transfer_latency_us + nbytes / self.params.d2h_bandwidth

    # -- kernels ---------------------------------------------------------------

    def kernel_cost(
        self,
        kernel: Kernel,
        profile: AccessProfile,
        unique_read_bytes: int,
        unique_write_bytes: int,
        itemsize: int = 4,
    ) -> KernelCostBreakdown:
        p = self.params
        ops_per_item = (
            p.read_issue_weight * profile.reads_per_item
            + p.write_issue_weight * profile.writes_per_item
            + p.flop_issue_weight * profile.flops_per_item
            + p.base_issue_ops
        )
        issue = profile.items * ops_per_item / p.issue_rate_ops_per_us

        memory = 0.0
        if p.model_memory:
            if p.model_coalescing:
                read_inflation = mean_inflation(
                    profile.read_strides, itemsize, self.device
                )
                write_inflation = mean_inflation(
                    profile.write_strides, itemsize, self.device
                )
            else:
                read_inflation = write_inflation = 1.0
            traffic = (
                unique_read_bytes * read_inflation
                + unique_write_bytes * write_inflation
            )
            memory = traffic / p.dram_bandwidth

        return KernelCostBreakdown(
            launch_overhead_us=p.launch_overhead_us,
            issue_time_us=issue,
            memory_time_us=memory,
        )

    # -- host ------------------------------------------------------------------

    def host_work_time_us(self, work: HostWork) -> float:
        ops = work.items * (
            work.reads_per_item + work.writes_per_item + work.flops_per_item
        )
        return ops / self.params.host_rate_ops_per_us

    def sequential_time_us(
        self, items: int, reads: int, writes: int, flops: int
    ) -> float:
        """Time of a sequential host loop over ``items`` elements."""
        if items < 0:
            raise ValueError("items must be non-negative")
        ops = items * (reads + writes + flops)
        return ops / self.params.host_rate_ops_per_us

    # -- convenience -------------------------------------------------------------

    def describe(self) -> dict[str, float | str | bool]:
        """The model's parameters as a flat dict (for EXPERIMENTS.md)."""
        out: dict[str, float | str | bool] = {"device": self.device.name}
        for k, v in vars(self.params).items():
            out[k] = v
        return out
