"""Memory-coalescing model for warp accesses.

On Fermi-class devices a warp's memory access is serviced in 128-byte
transactions.  When the 32 threads of a warp access consecutive addresses
(`stride 1` in elements), the access coalesces into a minimal number of
transactions; larger strides spread the warp over more lines.

The executor derives per-access strides by probing the kernel
(:func:`repro.ir.metrics.probe_access_profile`) and uses these helpers to
turn them into a traffic inflation factor for the cost model.
"""

from __future__ import annotations

from math import ceil

from repro.gpu.device import DeviceSpec

__all__ = ["transactions_per_warp", "access_efficiency", "mean_inflation"]


def transactions_per_warp(
    stride_elems: int, itemsize: int, device: DeviceSpec
) -> int:
    """Number of transactions one warp needs for one access step.

    ``stride_elems`` is the address delta (in elements) between adjacent
    threads; 0 means all threads touch the same element (broadcast, one
    transaction).
    """
    if itemsize <= 0:
        raise ValueError("itemsize must be positive")
    s = abs(int(stride_elems))
    if s == 0:
        return 1
    span = device.warp_size * s * itemsize
    ideal = max(1, ceil(device.warp_size * itemsize / device.transaction_bytes))
    # one transaction per distinct line touched, at most one per thread
    lines = min(device.warp_size, ceil(span / device.transaction_bytes))
    return max(ideal, lines)


def access_efficiency(stride_elems: int, itemsize: int, device: DeviceSpec) -> float:
    """Useful bytes / transferred bytes for one warp access (0 < e <= 1)."""
    useful = device.warp_size * itemsize
    moved = transactions_per_warp(stride_elems, itemsize, device) * device.transaction_bytes
    return min(1.0, useful / moved)


def mean_inflation(strides, itemsize: int, device: DeviceSpec) -> float:
    """Average traffic inflation (1/efficiency) over a set of accesses.

    Returns 1.0 for an empty stride list (no memory accesses).
    """
    strides = list(strides)
    if not strides:
        return 1.0
    total = sum(1.0 / access_efficiency(s, itemsize, device) for s in strides)
    return total / len(strides)
