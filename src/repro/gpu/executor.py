"""Execution of device programs on the simulated GPU.

The executor walks a :class:`~repro.ir.program.DeviceProgram` and, per op:

* performs the **functional** effect (allocations in the
  :class:`~repro.gpu.memory.MemoryManager`, data copies, vectorised kernel
  evaluation, host compute steps), and
* charges the **modelled** duration from the :class:`~repro.gpu.cost.CostModel`,
  recording one profiler event per op — the raw material of the paper's
  Tables I/II.

Per-kernel cost inputs (access-stride probe + unique-byte measurement) are
cached by kernel value, so repeated runs of the same program (the 300-frame
experiments) only pay for them once.  ``functional=False`` replays a program
for its timing alone, skipping data movement and kernel evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceError
from repro.gpu.cost import CostModel, KernelCostBreakdown
from repro.gpu.device import GTX480, DeviceSpec
from repro.gpu.memory import MemoryManager
from repro.gpu.profiler import Profiler
from repro.ir.evalvec import evaluate_kernel
from repro.ir.fused import FusedKernel, evaluate_fused
from repro.ir.kernel import Kernel
from repro.ir.metrics import AccessProfile, probe_access_profile, unique_access_bytes
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
    region_count,
    region_slices,
)
from repro.obs.span import current_tracer

__all__ = ["RunResult", "GPUExecutor"]


def _transfer_nbytes(op, buf) -> int:
    """Bytes a transfer moves: the region's elements if partial, else all."""
    if op.region is None:
        return buf.nbytes
    return region_count(op.region) * buf.data.dtype.itemsize


@dataclass(frozen=True)
class RunResult:
    """Outcome of one program execution."""

    program: str
    total_us: float
    outputs: dict[str, np.ndarray] = field(compare=False)
    kernel_us: float = 0.0
    h2d_us: float = 0.0
    d2h_us: float = 0.0
    host_us: float = 0.0

    @property
    def gpu_us(self) -> float:
        """Device-side time (kernels + transfers), the tables' denominator."""
        return self.kernel_us + self.h2d_us + self.d2h_us


@dataclass(frozen=True)
class _KernelCostInputs:
    profile: AccessProfile
    unique_read_bytes: int
    unique_write_bytes: int
    itemsize: int


#: process-wide cache of per-kernel probe results — kernels are immutable
#: value objects, so measurements are shared across executors
_GLOBAL_KERNEL_CACHE: dict[Kernel, "_KernelCostInputs"] = {}


class GPUExecutor:
    """Runs device programs functionally while accruing modelled time."""

    def __init__(
        self,
        cost_model: CostModel,
        device: DeviceSpec = GTX480,
        profiler: Profiler | None = None,
    ):
        self.cost = cost_model
        self.device = device
        self.memory = MemoryManager(device)
        self.profiler = profiler if profiler is not None else Profiler()
        self._kernel_cache: dict[Kernel, _KernelCostInputs] = _GLOBAL_KERNEL_CACHE

    # -- kernel cost inputs -----------------------------------------------------

    def kernel_cost_inputs(self, kernel: Kernel) -> _KernelCostInputs:
        cached = self._kernel_cache.get(kernel)
        if cached is None:
            profile = probe_access_profile(kernel)
            ur, uw = unique_access_bytes(kernel)
            itemsizes = {np.dtype(a.dtype).itemsize for a in kernel.arrays} or {4}
            cached = _KernelCostInputs(
                profile=profile,
                unique_read_bytes=ur,
                unique_write_bytes=uw,
                itemsize=max(itemsizes),
            )
            self._kernel_cache[kernel] = cached
        return cached

    def kernel_breakdown(self, kernel: Kernel) -> KernelCostBreakdown:
        """Cost decomposition of one launch (for reports/ablations).

        A :class:`~repro.ir.fused.FusedKernel` pays one launch overhead
        for the whole group while its stages' issue and memory phases run
        back to back — never slower than the unfused launches, and the
        intermediate's DRAM traffic is conservatively retained.
        """
        if isinstance(kernel, FusedKernel):
            parts = [self.kernel_breakdown(st.kernel) for st in kernel.stages]
            return KernelCostBreakdown(
                launch_overhead_us=max(p.launch_overhead_us for p in parts),
                issue_time_us=sum(p.issue_time_us for p in parts),
                memory_time_us=sum(p.memory_time_us for p in parts),
            )
        ci = self.kernel_cost_inputs(kernel)
        return self.cost.kernel_cost(
            kernel, ci.profile, ci.unique_read_bytes, ci.unique_write_bytes, ci.itemsize
        )

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        program: DeviceProgram,
        host_env: dict[str, np.ndarray] | None = None,
        functional: bool = True,
    ) -> RunResult:
        """Execute ``program`` against ``host_env``.

        ``host_env`` must bind every name in ``program.host_inputs``; the
        result's ``outputs`` contains every name in ``program.host_outputs``.
        With ``functional=False`` only time is accrued (allocations are
        still tracked so leaks/OOM remain visible).  The run is recorded
        as one ``execute`` span on the ambient tracer.
        """
        with current_tracer().span(
            f"execute:{program.name}", category="execute", functional=functional
        ) as span:
            result = self._run(program, host_env, functional)
            span.set(total_us=result.total_us)
            return result

    def _run(
        self,
        program: DeviceProgram,
        host_env: dict[str, np.ndarray] | None,
        functional: bool,
    ) -> RunResult:
        env: dict[str, np.ndarray] = dict(host_env or {})
        if program.pooled != self.memory.pooling:
            self.memory.set_pooling(program.pooled)
        if functional:
            missing = [n for n in program.host_inputs if n not in env]
            if missing:
                raise DeviceError(
                    f"program {program.name!r}: missing host inputs {missing}"
                )
        kernel_us = h2d_us = d2h_us = host_us = 0.0

        for op in program.ops:
            if isinstance(op, AllocDevice):
                self.memory.alloc(op.buffer, op.shape, op.dtype)
            elif isinstance(op, FreeDevice):
                self.memory.free(op.buffer)
            elif isinstance(op, HostToDevice):
                buf = self.memory.get(op.device)
                if functional:
                    src = env[op.host]
                    if src.shape != buf.shape:
                        raise DeviceError(
                            f"H2D {op.host}->{op.device}: host shape {src.shape} "
                            f"!= device shape {buf.shape}"
                        )
                    if op.region is None:
                        buf.data[...] = src
                    else:
                        sl = region_slices(op.region)
                        buf.data[sl] = src[sl]
                nbytes = _transfer_nbytes(op, buf)
                dur = self.cost.h2d_time_us(nbytes)
                h2d_us += dur
                name = "memcpyHtoDasync" if op.is_async else "memcpyHtoD"
                self.profiler.record(name, "h2d", dur, nbytes)
            elif isinstance(op, DeviceToHost):
                buf = self.memory.get(op.device)
                if functional:
                    if op.region is None:
                        env[op.host] = buf.data.copy()
                    else:
                        # untouched host elements keep their prior values
                        prior = env.get(op.host)
                        if prior is not None and prior.shape == buf.shape:
                            out = np.array(prior, dtype=buf.data.dtype)
                        else:
                            out = np.zeros_like(buf.data)
                        sl = region_slices(op.region)
                        out[sl] = buf.data[sl]
                        env[op.host] = out
                nbytes = _transfer_nbytes(op, buf)
                dur = self.cost.d2h_time_us(nbytes)
                d2h_us += dur
                name = "memcpyDtoHasync" if op.is_async else "memcpyDtoH"
                self.profiler.record(name, "d2h", dur, nbytes)
            elif isinstance(op, LaunchKernel):
                arrays = {}
                for param_name, buffer in op.array_args:
                    arrays[param_name] = self.memory.get(buffer).data
                if functional:
                    if isinstance(op.kernel, FusedKernel):
                        evaluate_fused(op.kernel, arrays, dict(op.scalar_args))
                    else:
                        evaluate_kernel(op.kernel, arrays, dict(op.scalar_args))
                dur = self.kernel_breakdown(op.kernel).total_us
                kernel_us += dur
                self.profiler.record(op.kernel.name, "kernel", dur)
            elif isinstance(op, HostCompute):
                if functional:
                    op.fn(env)
                dur = self.cost.host_work_time_us(op.work)
                host_us += dur
                self.profiler.record(op.name, "host", dur)
            else:
                raise DeviceError(f"executor cannot handle op {op!r}")

        outputs = {}
        if functional:
            missing_out = [n for n in program.host_outputs if n not in env]
            if missing_out:
                raise DeviceError(
                    f"program {program.name!r} finished without producing "
                    f"outputs {missing_out}"
                )
            outputs = {n: env[n] for n in program.host_outputs}
        return RunResult(
            program=program.name,
            total_us=kernel_us + h2d_us + d2h_us + host_us,
            outputs=outputs,
            kernel_us=kernel_us,
            h2d_us=h2d_us,
            d2h_us=d2h_us,
            host_us=host_us,
        )

    def run_repeated(
        self,
        program: DeviceProgram,
        host_envs,
        only_first_functional: bool = True,
    ) -> list[RunResult]:
        """Run ``program`` once per host environment.

        With ``only_first_functional`` (the default) the first run executes
        functionally (validating results) and the rest replay timing only —
        the mode the 300-frame experiments use after the outputs are
        verified once.  Pass ``False`` to execute every run functionally.
        """
        results = []
        for i, env in enumerate(host_envs):
            functional = (i == 0) or not only_first_functional
            results.append(self.run(program, env, functional=functional))
        return results
