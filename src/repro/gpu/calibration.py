"""Published calibrations of the GPU cost model.

``GTX480_CALIBRATED`` fixes the free parameters of
:class:`repro.gpu.cost.CostParams` by fitting the per-operation rows the
paper publishes in Tables I and II (kernel and transfer times of the
Gaspard2/OpenCL and SaC/CUDA downscalers on a GTX480 over PCIe x16 Gen2):

* H2D bandwidth: Table I gives 900 calls / 1391670 us for 1080x1920 int
  frames -> ~5.36 GB/s effective;
* D2H bandwidth: 900 calls / 197057 us for 480x720 int frames
  -> ~6.3 GB/s effective;
* issue rate and weights: fitted to the four published kernel-time rows
  (H/V filter for both routes), which are issue-bound on this workload;
* host rate: fitted to the sequential filter times of Figure 9.

EXPERIMENTS.md records the paper-vs-model residual for every row.
"""

from __future__ import annotations

from repro.gpu.cost import CostParams

__all__ = ["GTX480_CALIBRATED", "UNCALIBRATED"]

GTX480_CALIBRATED = CostParams(
    h2d_bandwidth=5360.0,  # bytes/us  (~5.36 GB/s effective PCIe x16 Gen2)
    d2h_bandwidth=6300.0,  # bytes/us  (~6.3 GB/s)
    transfer_latency_us=8.0,
    # per-launch fixed cost: kernel launch plus the driver synchronisation
    # between dependent kernels as seen through the async profiler on the
    # paper's CUDA 3.1 stack.  Fitted (tools/calibrate.py) jointly with the
    # two rates below to the four published kernel-time rows under the
    # ordering constraint that SaC filter kernels are slower per channel
    # than Gaspard2's; residuals are -0.3% / -3.5% / +0.3% / +0.3%
    # (see EXPERIMENTS.md).
    launch_overhead_us=72.5,
    issue_rate_ops_per_us=58310.0,  # ~58 G issue slots/s
    read_issue_weight=4.0,
    write_issue_weight=4.0,
    flop_issue_weight=1.0,
    base_issue_ops=4.0,
    dram_bandwidth=28720.0,  # bytes/us (~29 GB/s effective DRAM)
    # unique bytes already count every byte once, so warp-level transaction
    # inflation would double-count re-used lines; it stays available as an
    # ablation (bench_ablations) but is off in the calibrated model
    model_coalescing=False,
    # fitted to Figure 9's sequential horizontal-filter bar (~4.3 s / 300
    # iterations): ~2.4 G scalar ops/s on the i7-930, integer-divide heavy
    host_rate_ops_per_us=2423.0,
)

#: A structurally identical parameter set with round numbers, for tests that
#: need a cost model but must not depend on the calibration values.
UNCALIBRATED = CostParams(
    h2d_bandwidth=1000.0,
    d2h_bandwidth=1000.0,
    transfer_latency_us=10.0,
    launch_overhead_us=10.0,
    issue_rate_ops_per_us=1000.0,
    read_issue_weight=1.0,
    write_issue_weight=1.0,
    flop_issue_weight=1.0,
    base_issue_ops=0.0,
    dram_bandwidth=10000.0,
    host_rate_ops_per_us=100.0,
)
