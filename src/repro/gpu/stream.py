"""Stream-overlap analysis: what if the async transfers actually overlapped?

Both routes in the paper issue ``memcpyHtoDasync``/``memcpyDtoHasync``
(Tables I/II) but the measured totals are the *sum* of the per-operation
times — the transfers serialise against the kernels, and the paper notes
transfers eat roughly half the time.  Fermi hardware has two copy engines,
so a natural follow-up experiment is: how much of that half could
streaming hide?

:func:`overlapped_makespan` schedules a device program's operations onto
three engines (H2D copy, compute, D2H copy) respecting true data
dependences (a kernel waits for the transfers/kernels producing its
buffers; a D2H waits for the kernel writing its buffer), and returns the
resulting makespan next to the serial total.  Host steps synchronise the
device (as ``cudaMemcpy`` to the host does in the generic variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.ir.program import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)

__all__ = ["ScheduledOp", "OverlapResult", "overlapped_makespan"]


@dataclass(frozen=True)
class ScheduledOp:
    """One operation placed on the stream timeline."""

    name: str
    engine: str  # "h2d" | "compute" | "d2h" | "host"
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class OverlapResult:
    """Serial vs overlapped execution of one program run."""

    serial_us: float
    overlapped_us: float
    schedule: tuple[ScheduledOp, ...] = field(compare=False)

    @property
    def speedup(self) -> float:
        return self.serial_us / self.overlapped_us if self.overlapped_us else 1.0

    def engine_busy_us(self, engine: str) -> float:
        return sum(s.duration_us for s in self.schedule if s.engine == engine)


def overlapped_makespan(
    program: DeviceProgram, executor, frames: int = 1
) -> OverlapResult:
    """Schedule ``frames`` back-to-back runs of ``program`` with
    transfer/compute overlap.

    Within one frame the upload → kernels → download chain is strictly
    dependent, so overlap only pays off across frames (frame *t+1*'s
    upload streams while frame *t* computes) — the classic pipelining the
    paper's async transfer calls set up but its measurements serialise.

    ``executor`` supplies per-op durations (a
    :class:`~repro.gpu.executor.GPUExecutor`, whose cost model and kernel
    probes are reused; nothing is executed functionally).
    """
    cost = executor.cost
    shapes: dict[str, int] = {}
    ready: dict[str, float] = {"h2d": 0.0, "compute": 0.0, "d2h": 0.0}
    buffer_ready: dict[str, float] = {}
    host_sync = 0.0  # host timeline (issues ops in order; host steps block)
    schedule: list[ScheduledOp] = []
    serial = 0.0

    def place(engine: str, duration: float, after: float, name: str) -> float:
        start = max(ready[engine], after)
        end = start + duration
        ready[engine] = end
        schedule.append(ScheduledOp(name, engine, start, end))
        return end

    for op, frame in _frame_ops(program, frames):
        tag = f"f{frame}:"
        if isinstance(op, AllocDevice):
            shapes[op.buffer] = op.nbytes
            buffer_ready.setdefault(tag + op.buffer, host_sync)
        elif isinstance(op, FreeDevice):
            pass
        elif isinstance(op, HostToDevice):
            if op.device not in shapes:
                raise DeviceError(f"H2D into unallocated buffer {op.device!r}")
            dur = cost.h2d_time_us(shapes[op.device])
            serial += dur
            end = place("h2d", dur, host_sync, f"{tag}h2d:{op.device}")
            buffer_ready[tag + op.device] = end
        elif isinstance(op, LaunchKernel):
            dur = executor.kernel_breakdown(op.kernel).total_us
            serial += dur
            deps = max(
                (buffer_ready.get(tag + buf, 0.0) for _, buf in op.array_args),
                default=0.0,
            )
            end = place("compute", dur, max(deps, host_sync), tag + op.kernel.name)
            for param, buf in op.array_args:
                if op.kernel.array(param).intent != "in":
                    buffer_ready[tag + buf] = end
        elif isinstance(op, DeviceToHost):
            if op.device not in shapes:
                raise DeviceError(f"D2H from unallocated buffer {op.device!r}")
            dur = cost.d2h_time_us(shapes[op.device])
            serial += dur
            deps = buffer_ready.get(tag + op.device, 0.0)
            end = place("d2h", dur, max(deps, host_sync), f"{tag}d2h:{op.device}")
            # the host may consume this data: remember for host steps
            buffer_ready[f"{tag}host:{op.host}"] = end
        elif isinstance(op, HostCompute):
            dur = cost.host_work_time_us(op.work)
            serial += dur
            # a host step blocks on everything transferred to the host so far
            deps = max(
                [buffer_ready.get(f"{tag}host:{name}", 0.0) for name in op.reads]
                + [host_sync],
            )
            start = deps
            host_sync = start + dur
            schedule.append(ScheduledOp(tag + op.name, "host", start, host_sync))
        else:
            raise DeviceError(f"overlap analysis cannot handle {op!r}")

    makespan = max(
        [s.end_us for s in schedule], default=0.0
    )
    return OverlapResult(
        serial_us=serial, overlapped_us=makespan, schedule=tuple(schedule)
    )


def _frame_ops(program: DeviceProgram, frames: int):
    for frame in range(frames):
        for op in program.ops:
            yield op, frame
