"""Simulated device and host specifications.

The defaults model the paper's test system (Section VIII): an Nvidia Fermi
GTX480 (15 SMs x 32 cores at 1.4 GHz, 1.5 GB device memory, PCIe x16 Gen2)
driven by an Intel i7-930 quad core at 2.8 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "HostSpec", "GTX480", "I7_930"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU."""

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    memory_bytes: int
    warp_size: int = 32
    transaction_bytes: int = 128  # Fermi L1/L2 cache-line transactions
    max_threads_per_block: int = 1024

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("device must have positive SM/core counts")
        if self.clock_ghz <= 0:
            raise ValueError("device clock must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("device memory must be positive")

    @property
    def core_count(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def peak_gops(self) -> float:
        """Peak scalar operations per second (one op/core/cycle), in Gop/s."""
        return self.core_count * self.clock_ghz


@dataclass(frozen=True)
class HostSpec:
    """Parameters of the simulated host CPU."""

    name: str
    cores: int
    clock_ghz: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.clock_ghz <= 0:
            raise ValueError("host must have positive cores and clock")


#: The paper's GPU: Nvidia Fermi GTX480.
GTX480 = DeviceSpec(
    name="GTX480",
    sm_count=15,
    cores_per_sm=32,
    clock_ghz=1.4,
    memory_bytes=1536 * 1024 * 1024,
)

#: The paper's CPU: Intel i7-930.
I7_930 = HostSpec(name="i7-930", cores=4, clock_ghz=2.8)
