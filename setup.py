"""Setup shim: enables legacy editable installs in offline environments
(no `wheel` package available, so PEP 660 editable wheels cannot be built).
All project metadata lives in pyproject.toml."""

from setuptools import setup

setup()
