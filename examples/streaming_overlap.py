"""Extension experiment: pipelining the downscaler's async transfers.

The paper observes that data transfers consume about half of each route's
GPU time (Tables I/II), with every operation serialised.  Since both
routes already use ``memcpy*async``, the natural follow-up is to stream
frames: overlap frame *t+1*'s upload with frame *t*'s kernels on Fermi's
separate copy engines.

This example schedules the compiled SaC programs across engines for a
window of frames and prints the resulting Gantt charts:

* non-generic (fully fused by WLF): the transfers vanish behind the
  kernels — ~1.9x end-to-end;
* generic: the host-side output tiler synchronises every frame and the
  pipeline never fills — losing WLF also loses streamability.

Run:  python examples/streaming_overlap.py
"""

from repro.apps.downscaler import GENERIC, HD, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import synthetic_frame
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED, overlapped_makespan
from repro.report.gantt import render_gantt
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse

FRAMES = 12  # enough to reach steady state in the chart


def main() -> None:
    frame = synthetic_frame(HD, 0)[..., 0]
    for variant in (NONGENERIC, GENERIC):
        program = parse(downscaler_program_source(HD, variant))
        compiled = compile_function(
            program, "downscale", CompileOptions(target="cuda")
        )
        executor = GPUExecutor(CostModel(GTX480_CALIBRATED))
        executor.run(compiled.program, {"frame": frame})  # warm the probes

        result = overlapped_makespan(compiled.program, executor, frames=FRAMES)
        print(f"=== {variant} variant, {FRAMES} frames ===")
        print(render_gantt(result))
        print()


if __name__ == "__main__":
    main()
