"""A multi-stage SaC pipeline beyond the downscaler.

Chains three WITH-loop stages over an image — brightness scaling, a 2-D
4-neighbour smoothing stencil, then binary thresholding — and a ``fold``
reduction counting bright pixels.  Demonstrates:

* WITH-loop folding across *several* element-wise producers (the scale and
  threshold stages fuse into the stencil's consumers);
* the CUDA backend turning the fused WITH-loop into kernels while the
  ``fold`` reduction stays on the host (paper Section VII's eligibility);
* the same program on the sequential target, with the simulated speedup.

Run:  python examples/sac_pipeline.py
"""

import numpy as np

from repro.cpu import CPUExecutor
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.interp import Interpreter
from repro.sac.parser import parse

ROWS, COLS = 240, 320

SOURCE = f"""
int[{ROWS},{COLS}] brighten(int[{ROWS},{COLS}] img)
{{
  out = with {{
    (. <= iv <= .) : img[iv] * 3 / 2;
  }} : genarray([{ROWS},{COLS}]);
  return( out);
}}

int[{ROWS},{COLS}] smooth4(int[{ROWS},{COLS}] img)
{{
  out = with {{
    (. <= [i,j] <= .) {{
      s = img[[i, j]]
        + img[[(i + 1) % {ROWS}, j]]
        + img[[(i + {ROWS} - 1) % {ROWS}, j]]
        + img[[i, (j + 1) % {COLS}]]
        + img[[i, (j + {COLS} - 1) % {COLS}]];
    }} : s / 5;
  }} : genarray([{ROWS},{COLS}]);
  return( out);
}}

int[{ROWS},{COLS}] pipeline(int[{ROWS},{COLS}] img)
{{
  bright = brighten(img);
  smooth = smooth4(bright);
  mask = with {{
    (. <= iv <= .) {{
      v = smooth[iv];
      if (v >= 180) {{ bit = 1; }} else {{ bit = 0; }}
    }} : bit;
  }} : genarray([{ROWS},{COLS}]);
  return( mask);
}}

int count_bright(int[{ROWS},{COLS}] mask)
{{
  n = with {{
    ([0,0] <= iv <= [{ROWS - 1},{COLS - 1}]) : mask[iv];
  }} : fold(add, 0);
  return( n);
}}
"""


def main() -> None:
    program = parse(SOURCE)
    rng = np.random.default_rng(3)
    img = rng.integers(0, 200, size=(ROWS, COLS)).astype(np.int32)

    interp = Interpreter(program)
    mask_ref = interp.call("pipeline", [img])
    count_ref = interp.call("count_bright", [mask_ref])
    print(f"reference: {count_ref} bright pixels of {ROWS * COLS}")

    cuda = compile_function(program, "pipeline", CompileOptions(target="cuda"))
    print(f"CUDA: {cuda.kernel_count} kernels, {cuda.host_step_count} host steps")
    for name, reason in cuda.rejected:
        print(f"  kept on host: {name} ({reason})")

    gpu = GPUExecutor(CostModel(GTX480_CALIBRATED))
    res = gpu.run(cuda.program, {"img": img})
    assert np.array_equal(res.outputs[cuda.program.host_outputs[0]], mask_ref)

    seq = compile_function(program, "pipeline", CompileOptions(target="seq"))
    cpu = CPUExecutor(CostModel(GTX480_CALIBRATED))
    res_seq = cpu.run(seq.program, {"img": img})
    assert np.array_equal(res_seq.outputs[seq.program.host_outputs[0]], mask_ref)

    print(f"simulated GPU:        {res.total_us:9.1f} us")
    print(f"simulated sequential: {res_seq.total_us:9.1f} us")
    print(f"speedup:              {res_seq.total_us / res.total_us:9.2f}x")


if __name__ == "__main__":
    main()
