"""Building a custom ArrayOL application: tiled edge detection.

Shows the metamodel API beyond the downscaler: a one-stage application
whose repetitive task slides a 3-element horizontal window over an image
(via an overlapping input tiler) and emits the absolute central difference
— a 1-D edge detector.  The model goes through the same Gaspard2 chain as
the paper's downscaler: validation, scheduling, buffer binding, kernel
generation, OpenCL emission, simulated execution.

Run:  python examples/arrayol_edge_detect.py
"""

import numpy as np

from repro.arrayol import (
    Allocation,
    ApplicationModel,
    CompoundTask,
    ElementaryTask,
    GPU_CPU_PLATFORM,
    Link,
    PatternExpr,
    Port,
    RepetitiveTask,
    TaskInstance,
    TilerConnector,
)
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.ir import expr as ir
from repro.tilers import Tiler

ROWS, COLS = 64, 96


def edge_model() -> ApplicationModel:
    # elementary task: |pin[2] - pin[0]| for the window's centre
    pin = Port("pin", (3,), "in")
    pout = Port("pout", (1,), "out")
    diff = ir.UnOp(
        "abs",
        ir.BinOp("-", ir.Read("pin", (ir.Const(2),)), ir.Read("pin", (ir.Const(0),))),
    )
    elem = ElementaryTask(
        name="centraldiff",
        inputs=(pin,),
        outputs=(pout,),
        body=(PatternExpr(port="pout", index=0, expr=diff),),
    )

    # overlapping gather: every pixel gets the window centred on it
    # (toroidal at the edges, thanks to the tiler's modular addressing)
    in_tiler = Tiler(
        origin=(0, -1),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 1)),
        array_shape=(ROWS, COLS),
        pattern_shape=(3,),
        repetition_shape=(ROWS, COLS),
        name="window3",
    )
    out_tiler = Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 1)),
        array_shape=(ROWS, COLS),
        pattern_shape=(1,),
        repetition_shape=(ROWS, COLS),
        name="pixel",
    )
    rep = RepetitiveTask(
        name="edges",
        inputs=(Port("img", (ROWS, COLS), "in"),),
        outputs=(Port("edge", (ROWS, COLS), "out"),),
        repetition=(ROWS, COLS),
        inner=elem,
        input_tilers=(TilerConnector("img", "pin", in_tiler),),
        output_tilers=(TilerConnector("edge", "pout", out_tiler),),
    )
    top = CompoundTask(
        name="EdgeDetect",
        inputs=(Port("image", (ROWS, COLS), "in"),),
        outputs=(Port("edges_out", (ROWS, COLS), "out"),),
        instances=(TaskInstance("detect", rep),),
        links=(
            Link(src=("", "image"), dst=("detect", "img")),
            Link(src=("detect", "edge"), dst=("", "edges_out")),
        ),
    )
    return ApplicationModel(name="EdgeDetect", top=top)


def main() -> None:
    model = edge_model()
    allocation = Allocation(
        platform=GPU_CPU_PLATFORM, mapping=(("detect", "gpu"),)
    )
    chain = standard_chain()
    ctx = chain.run(GaspardContext(model=model, allocation=allocation))

    rng = np.random.default_rng(11)
    image = rng.integers(0, 256, size=(ROWS, COLS)).astype(np.int32)
    executor = GPUExecutor(CostModel(GTX480_CALIBRATED))
    result = executor.run(ctx.program, {"image": image})
    edges = result.outputs["edges_out"]

    expected = np.abs(
        np.roll(image, -1, axis=1).astype(np.int64) - np.roll(image, 1, axis=1)
    ).astype(np.int32)
    assert np.array_equal(edges, expected), "edge output mismatch"
    print("edge detection matches the NumPy reference")
    print(f"simulated time: {result.total_us:.1f} us "
          f"(kernel {result.kernel_us:.1f}, transfers "
          f"{result.h2d_us + result.d2h_us:.1f})")
    print("\n--- generated OpenCL ---")
    print(ctx.program.source("kernels.cl"))


if __name__ == "__main__":
    main()
