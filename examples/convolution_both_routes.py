"""When aggressive fusion backfires: separable convolution on both routes.

The paper's conclusion notes that "compiler-driven optimisations often lead
to benefits, [but] in the context of GPGPU programming they can equally add
overheads".  This example exhibits exactly that, on a workload where the
fusion decision flips against SaC:

* each pass of a separable K-tap stencil is a single full-coverage
  WITH-loop, so SaC's WITH-loop folding **fuses the two passes into one
  kernel** — eliminating the intermediate array but *recomputing* the
  horizontal pass K times per output (K*K reads instead of 2K);
* the ArrayOL model keeps one kernel per repetitive task with an
  intermediate buffer — more traffic and launches, but no recomputation.

For a 5-tap Gaussian the recomputation dominates: Gaspard2's two-kernel
schedule beats SaC's single fused kernel by ~2x under the calibrated
model.  (In the downscaler it was the other way around — the modarray
output tiler blocked cross-filter fusion and fragmentation hurt SaC for a
different reason.  Fusion is a trade-off, not a free lunch.)

Run:  python examples/convolution_both_routes.py
"""

import numpy as np

from repro.apps.convolution import (
    convolution_allocation,
    convolution_model,
    convolution_program_source,
    convolve,
    gaussian5,
)
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse


def main() -> None:
    config = gaussian5(1080, 1920)
    rng = np.random.default_rng(2)
    image = rng.normal(size=config.shape)
    golden = convolve(image, config)

    # SaC route: WLF fuses hpass and vpass into a single kernel
    program = parse(convolution_program_source(config))
    sac = compile_function(program, "blur", CompileOptions(target="cuda"))
    sac_ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    sac_res = sac_ex.run(sac.program, {"img": image})
    assert np.allclose(sac_res.outputs[sac.program.host_outputs[0]], golden)
    [fused] = sac.program.kernels
    print(f"SaC:      {sac.kernel_count} kernel, "
          f"{fused.reads_per_item()} reads/output (recomputed h-pass), "
          f"kernel time {sac_res.kernel_us:8.1f} us")

    # ArrayOL route: one kernel per pass, intermediate buffer in between
    ctx = GaspardContext(
        model=convolution_model(config), allocation=convolution_allocation()
    )
    standard_chain().run(ctx)
    gas_ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    gas_res = gas_ex.run(ctx.program, {"image": image})
    assert np.allclose(gas_res.outputs["blurred"], golden)
    per_pass_reads = ctx.program.kernels[0].reads_per_item()
    print(f"Gaspard2: {ctx.program.launch_count} kernels, "
          f"{per_pass_reads} reads/output per pass (+ intermediate buffer), "
          f"kernel time {gas_res.kernel_us:8.1f} us")

    ratio = sac_res.kernel_us / gas_res.kernel_us
    print(f"-> on this workload the aggressive fusion COSTS {ratio:.2f}x:")
    print("   recomputation beats the saved intermediate — the flip side of")
    print("   the downscaler result, matching the paper's conclusion that")
    print("   compiler optimisations 'can equally add overheads'.")


if __name__ == "__main__":
    main()
