"""Quickstart: compile a SaC program to CUDA and run it on the simulated GPU.

Demonstrates the whole SaC route on a small program:

1. parse SaC source (a 1-D box smoothing written with generic abstractions),
2. run the optimiser (inlining, partial evaluation, WITH-loop folding, DCE),
3. compile to a device program (transfers + one kernel per generator),
4. execute it on the simulated GTX480 and inspect results, timings and the
   generated CUDA source.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.interp import Interpreter
from repro.sac.opt import count_withloops, optimize_program
from repro.sac.parser import parse

SOURCE = """
// gather a window of 3 neighbouring elements per point (wrapping at the
// edges, like an ArrayOL tiler), then average the window.

int[*] gather3(int[64] signal)
{
  tiles = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) : signal[(rep[0] + pat[0]) % shape(signal)[0]];
      } : genarray([3], 0);
    } : tile;
  } : genarray([64]);
  return( tiles);
}

int[64] smooth(int[64] signal)
{
  tiles = gather3(signal);
  out = with {
    (. <= iv <= .) : (tiles[iv][0] + tiles[iv][1] + tiles[iv][2]) / 3;
  } : genarray([64]);
  return( out);
}
"""


def main() -> None:
    program = parse(SOURCE)

    # reference semantics
    rng = np.random.default_rng(7)
    signal = rng.integers(0, 100, size=64).astype(np.int32)
    expected = Interpreter(program).call("smooth", [signal])

    # the optimiser folds the gather into the consumer: one WITH-loop left
    optimized = optimize_program(program, entry="smooth")
    print("WITH-loops after optimisation:",
          count_withloops(optimized.function("smooth")))

    # compile to CUDA and execute on the simulated device
    compiled = compile_function(program, "smooth", CompileOptions(target="cuda"))
    print("kernels:", [k.name for k in compiled.program.kernels])

    executor = GPUExecutor(CostModel(GTX480_CALIBRATED))
    result = executor.run(compiled.program, {"signal": signal})
    out = result.outputs[compiled.program.host_outputs[0]]
    assert np.array_equal(out, expected), "compiled result != reference"
    print("result matches the reference interpreter")
    print(f"simulated time: {result.total_us:.1f} us "
          f"(kernels {result.kernel_us:.1f}, transfers "
          f"{result.h2d_us + result.d2h_us:.1f})")

    print("\n--- generated CUDA ---")
    print(compiled.program.source("kernels.cu"))


if __name__ == "__main__":
    main()
