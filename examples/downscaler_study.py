"""The paper's comparative study, end to end.

Reproduces the evaluation of Section VIII on the H.263 downscaler:

* Table I  — Gaspard2/OpenCL kernel and transfer breakdown,
* Table II — SaC/CUDA (non-generic) breakdown,
* Figure 9 — the four SaC configurations per filter,
* Figure 12 — per-operation route comparison,
* the headline claims (generic 4.5x/3x slowdown, up to ~11x GPU speedup,
  ~50% transfer share, routes within 85%).

Run:  python examples/downscaler_study.py [frames]
(the default 300 frames takes a minute or two; use e.g. 30 for a quick look)
"""

import sys

from repro.apps.downscaler import HD, DownscalerLab
from repro.report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    render_comparison,
    render_figure9,
    render_figure12,
    render_operation_table,
)


def main(frames: int = 300) -> None:
    lab = DownscalerLab(size=HD, frames=frames)

    print(f"== Table I (Gaspard2 / OpenCL route, {frames} frames) ==")
    t1 = lab.table1()
    print(render_operation_table(t1))
    print()
    print(render_comparison(t1, PAPER_TABLE1, frames=frames))
    print()

    print(f"== Table II (SaC / CUDA route, non-generic, {frames} frames) ==")
    t2 = lab.table2()
    print(render_operation_table(t2))
    print()
    print(render_comparison(t2, PAPER_TABLE2, frames=frames))
    print()

    print("== Figure 9 ==")
    print(render_figure9(lab.figure9()))

    print("== Figure 12 ==")
    print(render_figure12(lab.figure12()))

    print("== headline claims ==")
    claims = lab.headline_claims()
    paper = {
        "generic_over_nongeneric_h": "4.5x (paper)",
        "generic_over_nongeneric_v": "3x (paper)",
        "speedup_gpu_vs_seq_h": "up to ~11x (paper)",
        "transfer_share_gaspard": "0.556 (paper)",
        "transfer_share_sac": "0.482 (paper)",
        "gaspard_over_sac_total": "0.83 (paper)",
    }
    for key, value in claims.items():
        note = paper.get(key, "")
        print(f"  {key:34s} {value:8.2f}   {note}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
