"""Table I — Gaspard2/OpenCL kernel execution and data transfer times.

Regenerates the table at the paper's scale (300 HD frames, 3 channels) and
checks its structure against the published rows: 3 kernels per filter, 900
transfer calls, the per-operation ordering and the percentage breakdown.
"""

import pytest

from benchmarks.conftest import FRAMES, run_once
from repro.report import PAPER_TABLE1, compare_to_paper, render_operation_table

#: simulated times must stay within this relative band of the paper's rows
ROW_TOLERANCE = 0.25


def test_table1_regeneration(lab, benchmark):
    table = run_once(benchmark, lab.table1)
    print()
    print(render_operation_table(table))

    # structure: the paper's four rows in the paper's order
    labels = [r.operation for r in table.rows]
    assert labels == [
        "H. Filter (3 kernels)",
        "V. Filter (3 kernels)",
        "memcpyHtoDasync",
        "memcpyDtoHasync",
    ]

    # call counts: 300 frames, 900 channel transfers each way
    assert table.row("H. Filter").calls == FRAMES
    assert table.row("memcpyHtoD").calls == 3 * FRAMES
    assert table.row("memcpyDtoH").calls == 3 * FRAMES

    # every row lands near the published value
    for cmp in compare_to_paper(table, PAPER_TABLE1, frames=FRAMES):
        assert abs(cmp.delta_pct) <= 100 * ROW_TOLERANCE, cmp

    # the paper's qualitative facts: transfers dominate (~half the time),
    # H2D is the single largest operation
    pct = {r.operation: r.gpu_time_pct for r in table.rows}
    assert pct["memcpyHtoDasync"] == pytest.approx(48.74, abs=5.0)
    assert pct["memcpyHtoDasync"] == max(pct.values())
    transfer_share = pct["memcpyHtoDasync"] + pct["memcpyDtoHasync"]
    assert 0.45 <= transfer_share / 100.0 <= 0.65


def test_table1_total_close_to_paper(lab):
    table = lab.table1()
    assert table.total_us / 1e6 == pytest.approx(2.86, rel=ROW_TOLERANCE)
