"""Fleet scaling: frames/s versus device count, up to the PCIe knee.

``bench_pipeline`` measures one device; this bench shards the frame
stream over a simulated fleet (:mod:`repro.runtime.fleet`) and asks the
questions that decide whether the fleet abstraction earns its keep:

* **scaling** — on the paper's 300-frame HD workload, frames/s must
  reach >=1.7x at K=2 and >=3x at K=4 on *both* compilation routes;
  K=8 is recorded without a floor, because the shared PCIe staging
  channels saturate there on the transfer-heavy SaC route (that knee is
  the measurement, not a failure);
* **bit-exactness** — sharding is a scheduling decision, not a
  numerical one: every placement policy must serve outputs bit-exact
  against the single-device golden reference;
* **observability** — the Chrome trace of a fleet schedule must pass
  the validator with one track-group (process) per device;
* **serving capacity** — a K=2 broker must beat K=1 capacity in a
  closed-loop probe (we are before the PCIe knee at K=2).

Simulated time is deterministic, so each point runs once; results merge
into ``benchmarks/BENCH_fleet.json``.  The 300-frame HD sweeps carry the
``slow`` marker; CI's fast lane runs the CIF tests.
"""

import json
from pathlib import Path

import pytest

from benchmarks.conftest import FRAMES, run_once
from repro.apps.downscaler import CIF, HD
from repro.apps.downscaler.serving import downscaler_job
from repro.obs import (
    FLEET_PID_BASE,
    chrome_trace,
    validate_chrome_trace,
)
from repro.runtime import FramePipeline, schedule_violations
from repro.serve import ServeBroker, ServeConfig, estimate_capacity_rps

RESULTS = Path(__file__).with_name("BENCH_fleet.json")

#: the sweep's fleet sizes; 8 is past the PCIe knee for the SaC route
SWEEP_KS = (1, 2, 4, 8)
POLICIES = ("round-robin", "least-loaded", "cache-affinity")


def _record(key: str, payload: dict) -> None:
    """Merge one bench result into BENCH_fleet.json."""
    doc = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    doc[key] = payload
    RESULTS.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _run(route: str, size, frames: int, devices: int,
         placement: str = "round-robin", validate: str = "none"):
    job = downscaler_job(route, size=size)
    pipe = FramePipeline(
        devices=devices, placement=placement, validate=validate
    )
    return pipe.run(job, frames=frames)


def _sweep(route: str, size, frames: int) -> dict:
    """frames/s over the fleet-size ladder, plus the trace-group gate."""
    reports = {k: _run(route, size, frames, k) for k in SWEEP_KS}
    fps = {k: r.frames_per_second for k, r in reports.items()}
    speedups = {k: fps[k] / fps[1] for k in SWEEP_KS}
    # the knee: largest K still scaling near-linearly (>=75% efficiency)
    knee = max(k for k in SWEEP_KS if speedups[k] >= 0.75 * k)
    for k, r in reports.items():
        if k > 1:
            assert schedule_violations(r.schedule) == [], f"K={k} invalid"
    # one track-group per device in the exported trace
    probe = reports[4]
    doc = chrome_trace(schedule=probe.schedule, frame_batch=3)
    problems = validate_chrome_trace(doc)
    assert problems == [], problems
    device_pids = {
        ev["pid"] for ev in doc["traceEvents"]
        if ev.get("ph") == "X" and ev["pid"] >= FLEET_PID_BASE
    }
    assert device_pids == {FLEET_PID_BASE + k for k in range(4)}
    return {
        "frames": frames,
        "size": size.name,
        "frames_per_second": {str(k): round(v, 1) for k, v in fps.items()},
        "speedup": {str(k): round(v, 3) for k, v in speedups.items()},
        "knee_devices": knee,
        "trace_track_groups": len(device_pids),
        "migrations": {str(k): reports[k].migrations for k in SWEEP_KS},
    }


@pytest.mark.slow
@pytest.mark.parametrize("route", ("sac", "gaspard"))
def test_fleet_scaling_hd(benchmark, route):
    """The headline gate: near-linear scaling on 300 HD frames."""
    result = run_once(benchmark, lambda: _sweep(route, HD, FRAMES))
    speedup = result["speedup"]
    assert speedup["2"] >= 1.7, f"K=2 speedup {speedup['2']} < 1.7"
    assert speedup["4"] >= 3.0, f"K=4 speedup {speedup['4']} < 3.0"
    assert result["knee_devices"] >= 4
    _record(f"{route}-hd-scaling", result)


@pytest.mark.parametrize("route", ("sac", "gaspard"))
def test_fleet_scaling_cif(benchmark, route):
    """Fast lane: the same scaling shape at CIF scale."""
    result = run_once(benchmark, lambda: _sweep(route, CIF, 24))
    speedup = result["speedup"]
    assert speedup["2"] >= 1.7, f"K=2 speedup {speedup['2']} < 1.7"
    assert speedup["4"] >= 3.0, f"K=4 speedup {speedup['4']} < 3.0"
    _record(f"{route}-cif-scaling", result)


@pytest.mark.parametrize("route", ("sac", "gaspard"))
def test_fleet_bit_exact_cif(benchmark, route):
    """Sharding never changes bytes: every policy validates bit-exact.

    ``validate="all"`` runs every placed frame's functional execution on
    its placed device's executor and compares against the NumPy golden
    reference — the same certificate the single-device pipeline carries.
    """
    def check():
        job = downscaler_job(route, size=CIF)
        want = job.instances_per_frame * 6
        base = _run(route, CIF, 6, 1, validate="all")
        assert base.validated_instances == want
        out = {}
        for policy in POLICIES:
            r = _run(route, CIF, 6, 2, placement=policy, validate="all")
            assert r.validated_instances == want, policy
            assert r.devices == 2 and r.placement == policy
            out[policy] = round(r.frames_per_second, 1)
        return {"baseline_fps": round(base.frames_per_second, 1), "fleet": out}

    result = run_once(benchmark, check)
    _record(f"{route}-cif-bit-exact", result)


def test_fleet_serving_capacity_cif(benchmark):
    """Before the PCIe knee, a second device buys real broker capacity."""
    def factory(devices: int):
        return ServeBroker(
            downscaler_job("gaspard", size=CIF),
            ServeConfig(execute="none", devices=devices, max_batch=4),
        )

    def probe():
        cap1 = estimate_capacity_rps(lambda: factory(1), batch=8)
        cap2 = estimate_capacity_rps(lambda: factory(2), batch=8)
        return cap1, cap2

    cap1, cap2 = run_once(benchmark, probe)
    assert cap2 > cap1 * 1.5, f"K=2 capacity {cap2:.1f} vs K=1 {cap1:.1f}"
    _record("gaspard-cif-serving-capacity", {
        "capacity_rps_k1": round(cap1, 1),
        "capacity_rps_k2": round(cap2, 1),
        "scaling": round(cap2 / cap1, 3),
    })
