"""Ablations over the design choices DESIGN.md calls out.

* WITH-loop folding on/off — the paper's central optimisation: without it
  the tiler stages stay separate (more WITH-loops, host fallbacks,
  intermediate arrays) and the program slows down dramatically;
* wrap-region splitting on/off — splitting trades kernel count (5+7 vs
  3+4) for affine bulk kernels;
* the coalescing model on/off — how much the stride-aware memory term
  changes the simulated kernel times;
* frame-size sweep — CIF vs HD: work scales with pixel count while the
  program structure (kernel counts) is size-independent.
"""

import numpy as np
import pytest

from repro.apps.downscaler import CIF, HD, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import synthetic_frame
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.interp import Interpreter
from repro.sac.opt import OptimisationFlags, count_withloops, optimize_program
from repro.sac.parser import parse


@pytest.fixture(scope="module")
def nongeneric_source():
    return downscaler_program_source(HD, NONGENERIC)


def _run_us(program, frame) -> float:
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    return ex.run(program, {"frame": frame}).total_us


def test_ablation_wlf(nongeneric_source, benchmark):
    """Without WLF the three tiler stages stay separate WITH-loops."""
    prog = parse(nongeneric_source)
    with_wlf = benchmark(
        lambda: optimize_program(prog, entry="downscale")
    )
    without_wlf = optimize_program(
        prog, entry="downscale", flags=OptimisationFlags.no_wlf()
    )
    n_with = count_withloops(with_wlf.function("downscale"))
    n_without = count_withloops(without_wlf.function("downscale"))
    print(f"\nWITH-loops: {n_with} (folded) vs {n_without} (unfolded)")
    assert n_with == 2  # one fused loop per filter (paper Figure 8)
    assert n_without > n_with

    # both stay semantically identical (checked at CIF scale for speed)
    small = parse(downscaler_program_source(CIF, NONGENERIC))
    frame = synthetic_frame(CIF, 0)[..., 0]
    a = Interpreter(optimize_program(small, entry="downscale")).call(
        "downscale", [frame]
    )
    b = Interpreter(
        optimize_program(small, entry="downscale", flags=OptimisationFlags.no_wlf())
    ).call("downscale", [frame])
    np.testing.assert_array_equal(a, b)


def test_ablation_wrap_split(nongeneric_source, benchmark):
    """Splitting trades kernels (12 vs 7) for affine bulk address streams."""
    prog = parse(nongeneric_source)
    split = benchmark.pedantic(
        lambda: compile_function(prog, "downscale", CompileOptions(target="cuda")),
        rounds=1, iterations=1,
    )
    merged = compile_function(
        prog, "downscale", CompileOptions(target="cuda", wrap_split=False)
    )
    print(f"\nkernels: split={split.kernel_count} merged={merged.kernel_count}")
    assert split.kernel_count == 12  # 5 horizontal + 7 vertical
    assert merged.kernel_count == 7  # 3 + 4, modulo kept everywhere

    frame = synthetic_frame(HD, 0)[..., 0]
    t_split = _run_us(split.program, frame)
    t_merged = _run_us(merged.program, frame)
    print(f"simulated us/channel: split={t_split:.0f} merged={t_merged:.0f}")
    # more kernels means more launch overhead: under the calibrated model
    # the merged form is at least not slower per launch count
    assert t_split > 0 and t_merged > 0
    # functional equality
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    out_a = ex.run(split.program, {"frame": frame}).outputs
    out_b = ex.run(merged.program, {"frame": frame}).outputs
    np.testing.assert_array_equal(
        list(out_a.values())[0], list(out_b.values())[0]
    )


def test_ablation_coalescing_model(nongeneric_source):
    """The stride-aware memory inflation is an ablation knob: switching it
    on penalises the strided downscaler kernels."""
    prog = parse(nongeneric_source)
    cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
    frame = synthetic_frame(HD, 0)[..., 0]

    base = GPUExecutor(CostModel(GTX480_CALIBRATED))
    t_base = base.run(cf.program, {"frame": frame}).kernel_us
    inflated = GPUExecutor(
        CostModel(GTX480_CALIBRATED.with_overrides(model_coalescing=True))
    )
    t_inflated = inflated.run(cf.program, {"frame": frame}, functional=False).kernel_us
    print(f"\nkernel us/channel: calibrated={t_base:.0f} with-inflation={t_inflated:.0f}")
    assert t_inflated >= t_base


@pytest.mark.parametrize("size", [CIF, HD], ids=["CIF", "HD"])
def test_ablation_frame_size(size, benchmark):
    """Structure is size-invariant; time scales with the pixel count."""
    prog = parse(downscaler_program_source(size, NONGENERIC))
    cf = benchmark.pedantic(
        lambda: compile_function(prog, "downscale", CompileOptions(target="cuda")),
        rounds=1, iterations=1,
    )
    assert cf.kernel_count == 12  # 5 + 7 at every size (same wrap pattern)
    frame = synthetic_frame(size, 0)[..., 0]
    us = _run_us(cf.program, frame)
    pixels = size.rows * size.cols
    print(f"\n{size.name}: {us:.0f} us/channel for {pixels} pixels")
    if size is HD:
        assert us > 1000  # several ms at HD
