"""The paper's headline claims (Sections VIII-IX).

* "performance benefits of both approaches are comparable, varying within
  85% of the best runtimes";
* "as much as 11x speedups on GPUs compared to sequential counterparts";
* "more than half of the time is dedicated to data transfers" (Gaspard2) /
  "data transfers represent approximately 50% of the total execution time"
  (SaC);
* the non-generic filters execute several times faster than the generic
  ones on the GPU (4.5x horizontal / 3x vertical).
"""

from benchmarks.conftest import run_once


def test_headline_claims(lab, benchmark):
    claims = run_once(benchmark, lab.headline_claims)
    print()
    for k, v in claims.items():
        print(f"  {k:36s} {v:8.2f}")

    # routes comparable: total runtimes within 85% of the best
    ratio = claims["gaspard_over_sac_total"]
    best_share = min(ratio, 1.0 / ratio)
    assert best_share >= 0.75  # paper: 2.86/3.43 = 0.83

    # GPU speedups significant, in the paper's "as much as 11x" regime
    assert claims["speedup_gpu_vs_seq_h"] >= 5.0
    assert claims["speedup_gpu_vs_seq_h"] <= 16.0
    assert claims["speedup_gpu_vs_seq_v"] >= 4.0

    # transfers eat about half the GPU time on both routes
    assert 0.40 <= claims["transfer_share_gaspard"] <= 0.65
    assert 0.35 <= claims["transfer_share_sac"] <= 0.60

    # generic GPU variants are several times slower
    assert 3.0 <= claims["generic_over_nongeneric_h"] <= 7.0
    assert 2.0 <= claims["generic_over_nongeneric_v"] <= 5.0

    # sequential variants stay close
    assert 0.8 <= claims["seq_generic_over_nongeneric_h"] <= 1.4
