"""Optimiser before/after at the paper's scale (``BENCH_opt.json``).

Three program configurations per route frame the ``repro.opt`` story:

* ``naive`` — per-kernel transfer placement, unoptimised.  Each WITH-loop
  (SaC) / repetitive task (Gaspard2) brackets its launch with PCIe
  traffic: the regime behind the paper's ~50 % transfer share
  (Tables I/II).
* ``pr2`` — boundary placement, unoptimised.  The PR-2 baseline; already
  byte-minimal (zero transfer lints), so it anchors the makespan gate.
* ``optimized`` — the naive placement fed through the full ``repro.opt``
  pipeline.  Transfer elimination recovers boundary placement, fusion
  then deletes single-use intermediates (and their allocations), pooling
  caps the device footprint.

Acceptance, gated by the slow HD lane:

* every configuration is bit-exact against the NumPy reference;
* fusion eliminates at least one intermediate device buffer;
* ``optimized`` moves strictly fewer bytes than ``naive``;
* ``optimized``'s overlapped makespan beats the PR-2 baseline;
* the optimised program triggers zero TRANSFER diagnostics.

Every test merges its rows into ``benchmarks/BENCH_opt.json`` so the
optimiser's trajectory is tracked across PRs.  CI's fast lane runs the
CIF smoke only.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import FRAMES, run_once
from repro.analysis import find_transfer_waste
from repro.apps.downscaler import CIF, HD, reference
from repro.apps.downscaler.arrayol_model import (
    downscaler_allocation,
    downscaler_model,
)
from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.gpu import (
    CostModel,
    GPUExecutor,
    GTX480_CALIBRATED,
    overlapped_makespan,
)
from repro.opt import OptOptions, ProgramStats
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse

RESULTS = Path(__file__).with_name("BENCH_opt.json")

#: the three placements/pipelines every route is measured under
CONFIGS = (
    ("naive", "per_kernel", None),
    ("pr2", "boundary", None),
    ("optimized", "per_kernel", OptOptions()),
)


def _compile(route: str, size, transfers: str, opt):
    """One route under one configuration -> ``(program, OptReport|None)``."""
    if route == "sac":
        cf = compile_function(
            parse(downscaler_program_source(size, NONGENERIC)),
            "downscale",
            CompileOptions(target="cuda", transfers=transfers, opt=opt),
        )
        return cf.program, cf.opt_report
    ctx = GaspardContext(
        model=downscaler_model(size), allocation=downscaler_allocation()
    )
    standard_chain(transfers=transfers, opt=opt).run(ctx)
    return ctx.program, ctx.opt_report


def _bit_exact(route: str, program, size, ex: GPUExecutor) -> bool:
    """Run one frame and compare every output to the NumPy reference."""
    chans = channels_of(synthetic_frame(size, 0))
    if route == "sac":
        res = ex.run(program, {"frame": chans["r"]})
        want = reference.downscale_frame(chans["r"], size)
        return np.array_equal(res.outputs[program.host_outputs[0]], want)
    res = ex.run(program, {f"in_{c}": v for c, v in chans.items()})
    return all(
        np.array_equal(
            res.outputs[f"out_{c}"], reference.downscale_frame(chans[c], size)
        )
        for c in "rgb"
    )


def _measure(route: str, size, frames: int) -> dict:
    """All three configurations of one route, as BENCH rows."""
    rows = {}
    for config, transfers, opt in CONFIGS:
        program, report = _compile(route, size, transfers, opt)
        ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
        exact = _bit_exact(route, program, size, ex)
        makespan = overlapped_makespan(program, ex, frames=frames)
        stats = ProgramStats.of(program)
        row = {
            "transfers": transfers,
            "ops": stats.ops,
            "launches": stats.launches,
            "transferred_bytes": stats.transferred_bytes,
            "peak_device_bytes": stats.peak_device_bytes,
            "serial_us": round(makespan.serial_us, 3),
            "overlapped_us": round(makespan.overlapped_us, 3),
            "bit_exact": exact,
            "transfer_lints": len(find_transfer_waste(program)),
        }
        if report is not None:
            row["buffers_eliminated"] = list(report.buffers_eliminated)
            row["steps_removed"] = report.steps_removed
            row["bytes_saved"] = report.bytes_saved
            row["certified"] = report.certified
        rows[config] = row
    return rows


def _record(key: str, rows: dict) -> None:
    """Merge one route's rows into BENCH_opt.json."""
    doc = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    doc[key] = rows
    RESULTS.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _check_acceptance(rows: dict) -> None:
    naive, pr2, optimized = rows["naive"], rows["pr2"], rows["optimized"]
    assert all(r["bit_exact"] for r in rows.values())
    assert optimized["certified"]
    assert len(optimized["buffers_eliminated"]) >= 1
    assert optimized["transferred_bytes"] < naive["transferred_bytes"]
    assert optimized["overlapped_us"] < pr2["overlapped_us"]
    assert optimized["transfer_lints"] == 0


@pytest.mark.slow
def test_opt_sac_hd(benchmark):
    rows = run_once(benchmark, lambda: _measure("sac", HD, FRAMES))
    _record("sac-hd", rows)
    print(
        f"\nsac hd: bytes {rows['naive']['transferred_bytes']} (naive) -> "
        f"{rows['optimized']['transferred_bytes']} (opt), overlapped "
        f"{rows['pr2']['overlapped_us']} -> {rows['optimized']['overlapped_us']} us"
    )
    _check_acceptance(rows)


@pytest.mark.slow
def test_opt_gaspard_hd(benchmark):
    rows = run_once(benchmark, lambda: _measure("gaspard", HD, FRAMES))
    _record("gaspard-hd", rows)
    print(
        f"\ngaspard hd: bytes {rows['naive']['transferred_bytes']} (naive) -> "
        f"{rows['optimized']['transferred_bytes']} (opt), overlapped "
        f"{rows['pr2']['overlapped_us']} -> {rows['optimized']['overlapped_us']} us"
    )
    _check_acceptance(rows)


def test_opt_sac_cif_smoke(benchmark):
    rows = run_once(benchmark, lambda: _measure("sac", CIF, 12))
    _record("sac-cif-smoke", rows)
    _check_acceptance(rows)


def test_opt_gaspard_cif_smoke(benchmark):
    rows = run_once(benchmark, lambda: _measure("gaspard", CIF, 12))
    _record("gaspard-cif-smoke", rows)
    _check_acceptance(rows)
