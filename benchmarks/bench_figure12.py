"""Figure 12 — per-operation comparison of the SaC and Gaspard2 routes.

Regenerates the four bar groups (horizontal filter, vertical filter,
Host2Device, Device2Host) and checks the paper's reading: both filters run
slightly faster under Gaspard2, transfers are essentially identical (both
routes move the same frames), and Host2Device towers over everything.
"""

import pytest

from benchmarks.conftest import run_once
from repro.report import render_figure12


def test_figure12_regeneration(lab, benchmark):
    series = run_once(benchmark, lab.figure12)
    print()
    print(render_figure12(series))

    ops = dict(zip(series.operations, zip(series.sac_s, series.gaspard_s)))
    assert set(ops) == {
        "Horizontal Filter",
        "Vertical Filter",
        "Host2Device",
        "Device2Host",
    }

    # Gaspard2's fused per-task kernels beat the fragmented SaC kernels
    for op in ("Horizontal Filter", "Vertical Filter"):
        sac, gaspard = ops[op]
        assert gaspard < sac, op

    # both routes transfer the same frame data
    sac_h2d, gas_h2d = ops["Host2Device"]
    assert sac_h2d == pytest.approx(gas_h2d, rel=0.1)
    sac_d2h, gas_d2h = ops["Device2Host"]
    assert sac_d2h == pytest.approx(gas_d2h, rel=0.1)

    # Host2Device is the tallest bar of the chart (paper Figure 12)
    assert gas_h2d == max(max(series.sac_s), max(series.gaspard_s))

    # rough magnitudes from the chart (seconds over 300 frames)
    assert sac_h2d == pytest.approx(1.45, rel=0.25)
    assert ops["Horizontal Filter"][0] == pytest.approx(1.0, rel=0.35)
