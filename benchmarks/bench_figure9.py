"""Figure 9 — execution times of the four SaC downscaler configurations.

Regenerates the bar chart series and checks the orderings and ratios the
paper reports: CUDA beats sequential everywhere; the *generic* CUDA variant
is several times slower than the non-generic one (4.5x horizontal, 3x
vertical in the paper) because its output tiler runs on the host behind a
device-to-host transfer; sequential times barely differ between variants.
"""

import pytest

from benchmarks.conftest import run_once
from repro.report import render_figure9


def _by_config(rows):
    return {r.configuration: r for r in rows}


def test_figure9_regeneration(lab, benchmark):
    rows = run_once(benchmark, lab.figure9)
    print()
    print(render_figure9(rows))

    cfg = _by_config(rows)
    assert set(cfg) == {
        "SAC-Seq Generic",
        "SAC-CUDA Generic",
        "SAC-Seq Non-Generic",
        "SAC-CUDA Non-Generic",
    }

    # CUDA faster than sequential in every configuration and filter
    for variant in ("Generic", "Non-Generic"):
        seq = cfg[f"SAC-Seq {variant}"]
        cuda = cfg[f"SAC-CUDA {variant}"]
        assert cuda.hfilter_s < seq.hfilter_s
        assert cuda.vfilter_s < seq.vfilter_s

    # the headline ratios: non-generic CUDA beats generic CUDA by ~4.5x (H)
    # and ~3x (V); we accept a generous band around the published factors
    h_ratio = cfg["SAC-CUDA Generic"].hfilter_s / cfg["SAC-CUDA Non-Generic"].hfilter_s
    v_ratio = cfg["SAC-CUDA Generic"].vfilter_s / cfg["SAC-CUDA Non-Generic"].vfilter_s
    assert h_ratio == pytest.approx(4.5, rel=0.5)
    assert v_ratio == pytest.approx(3.0, rel=0.5)
    assert h_ratio > v_ratio  # the horizontal filter suffers more

    # sequential runtimes "do not vary significantly" between variants
    seq_ratio = cfg["SAC-Seq Generic"].hfilter_s / cfg["SAC-Seq Non-Generic"].hfilter_s
    assert seq_ratio == pytest.approx(1.0, abs=0.35)

    # the horizontal filter always costs more than the vertical one
    for row in rows:
        assert row.hfilter_s > row.vfilter_s


def test_figure9_magnitudes(lab):
    """The bars live in the paper's range: seconds, with the sequential
    horizontal filter the tallest at roughly 4-5 s for 300 iterations."""
    cfg = _by_config(lab.figure9())
    tallest = cfg["SAC-Seq Generic"].hfilter_s
    assert 2.5 <= tallest <= 7.5
    assert cfg["SAC-CUDA Non-Generic"].hfilter_s <= 1.0
