"""Extension experiment: stream pipelining of the async transfers.

The paper's Tables I/II serialise transfers against kernels even though
both routes issue ``memcpy*async`` — and note that transfers eat roughly
half the time.  This bench schedules the compiled programs onto Fermi's
two copy engines plus the compute engine across back-to-back frames:

* the **non-generic** SaC program pipelines: steady-state time approaches
  the busiest engine (the kernels) and the transfers are hidden almost
  entirely (~1.9x at HD under the calibrated model);
* the **generic** program cannot pipeline at all — its host output tiler
  synchronises every frame.  Losing WLF costs the streaming headroom too.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.downscaler import HD, GENERIC, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import synthetic_frame
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED, overlapped_makespan
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse

FRAMES = 300


@pytest.fixture(scope="module")
def warm():
    """Compiled programs + executors with warmed kernel probes."""
    frame = synthetic_frame(HD, 0)[..., 0]
    out = {}
    for variant in (NONGENERIC, GENERIC):
        prog = parse(downscaler_program_source(HD, variant))
        cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
        ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
        ex.run(cf.program, {"frame": frame})
        out[variant] = (cf, ex)
    return out


def test_overlap_nongeneric(warm, benchmark):
    cf, ex = warm[NONGENERIC]
    r = run_once(benchmark, lambda: overlapped_makespan(cf.program, ex, frames=FRAMES))
    print(f"\nnon-generic: serial={r.serial_us/1e6:.2f}s "
          f"pipelined={r.overlapped_us/1e6:.2f}s speedup={r.speedup:.2f}x")
    assert r.speedup > 1.5  # the transfers hide behind the kernels
    # steady state bounded by the busiest engine (compute)
    busiest = max(r.engine_busy_us(e) for e in ("h2d", "compute", "d2h"))
    assert r.overlapped_us == pytest.approx(busiest, rel=0.1)


def test_overlap_generic_blocked(warm, benchmark):
    cf, ex = warm[GENERIC]
    r = run_once(benchmark, lambda: overlapped_makespan(cf.program, ex, frames=FRAMES))
    print(f"\ngeneric: serial={r.serial_us/1e6:.2f}s "
          f"pipelined={r.overlapped_us/1e6:.2f}s speedup={r.speedup:.2f}x")
    # the host output tiler synchronises every frame: no pipelining win
    assert r.speedup == pytest.approx(1.0, abs=0.05)


def test_overlap_widens_the_variant_gap(warm):
    """With streaming, the non-generic advantage grows beyond Figure 9's
    serial ratios — fusion buys pipelinability, not just fewer ops."""
    cf_non, ex_non = warm[NONGENERIC]
    cf_gen, ex_gen = warm[GENERIC]
    r_non = overlapped_makespan(cf_non.program, ex_non, frames=FRAMES)
    r_gen = overlapped_makespan(cf_gen.program, ex_gen, frames=FRAMES)
    serial_ratio = r_gen.serial_us / r_non.serial_us
    pipelined_ratio = r_gen.overlapped_us / r_non.overlapped_us
    print(f"\ngeneric/non-generic: serial={serial_ratio:.2f}x "
          f"pipelined={pipelined_ratio:.2f}x")
    assert pipelined_ratio > serial_ratio
