"""Autotuner outcomes per (app, route, size) (``BENCH_tune.json``).

Each row records one :func:`repro.tune.tune` search: the default
configuration's modelled cost, the winner's cost and description, the
search provenance (candidates visited, distinct evaluations, certifier
rejections) and two verification bits — the winner re-executed bit-exact
with certification forced on, and a same-seed re-search reproducing the
same winner from the shared evaluation cache.

Acceptance:

* the tuned configuration is **never worse** than the default on any
  (app, route, size) — the default is in the candidate set and the
  comparison is the lexicographic modelled-cost order;
* on the slow HD lane the winner is **strictly better** (lower modelled
  makespan or fewer transferred bytes) on each route;
* every winner is re-executed bit-exactly and certified;
* the HD SaC search visits >= 500 candidates, and same-seed searches are
  deterministic.

CI's fast lane runs the CIF/convolution smokes only and uploads
``BENCH_tune.json``.
"""

import json
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.apps.downscaler import CIF, HD
from repro.runtime.cache import CompileCache
from repro.tune import make_subject, tune

RESULTS = Path(__file__).with_name("BENCH_tune.json")


def _measure(app: str, route: str, size, budget: int, seed: int = 0,
             frames: int = 3) -> dict:
    """One search plus its same-seed determinism replay, as a BENCH row."""
    subject = make_subject(app, route, size=size)
    cache = CompileCache()
    result = tune(
        subject, budget=budget, seed=seed, frames=frames, cache=cache
    )
    # same seed, same cache: every evaluation is memoised, so the replay
    # is cheap — and must land on the identical winner
    replay = tune(
        subject, budget=budget, seed=seed, frames=frames, cache=cache,
        validate=False,
    )
    deterministic = (
        replay.winner == result.winner
        and replay.winner_cost == result.winner_cost
    )
    return {
        "size": subject.size_name,
        "budget": budget,
        "seed": seed,
        "candidates": result.candidates,
        "evaluations": result.evaluations,
        "rejected": result.rejected,
        "default": result.default_cost.as_dict(),
        "winner": result.winner_cost.as_dict(),
        "winner_config": result.winner.describe(),
        "improved": result.improved,
        "validated": result.validated,
        "deterministic": deterministic,
        "record_content": result.record.content,
    }


def _record(key: str, row: dict) -> None:
    """Merge one search's row into BENCH_tune.json."""
    doc = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    doc[key] = row
    RESULTS.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _never_worse(row: dict) -> bool:
    d, w = row["default"], row["winner"]
    return (
        w["makespan_us"], w["transferred_bytes"], w["launches"]
    ) <= (
        d["makespan_us"], d["transferred_bytes"], d["launches"]
    )


def _strictly_better(row: dict) -> bool:
    d, w = row["default"], row["winner"]
    return (
        w["makespan_us"] < d["makespan_us"]
        or w["transferred_bytes"] < d["transferred_bytes"]
    )


def _check_acceptance(row: dict, strict: bool = False) -> None:
    assert row["validated"], "winner must re-execute bit-exact and certified"
    assert row["deterministic"], "same seed must reproduce the same winner"
    assert _never_worse(row), "tuned config must never be worse than default"
    if strict:
        assert _strictly_better(row), (
            "HD winner must strictly beat the default on makespan or bytes"
        )


# -- slow lane: the paper's HD frame ----------------------------------------


@pytest.mark.slow
def test_tune_downscaler_sac_hd(benchmark):
    row = run_once(benchmark, lambda: _measure("downscaler", "sac", HD, 500))
    _record("downscaler-sac-hd", row)
    print(
        f"\ntune sac hd: {row['candidates']} candidates "
        f"({row['evaluations']} evaluated), "
        f"{row['default']['makespan_us']:.0f} -> "
        f"{row['winner']['makespan_us']:.0f} us [{row['winner_config']}]"
    )
    assert row["candidates"] >= 500
    _check_acceptance(row, strict=True)


@pytest.mark.slow
def test_tune_downscaler_gaspard_hd(benchmark):
    row = run_once(
        benchmark, lambda: _measure("downscaler", "gaspard", HD, 160)
    )
    _record("downscaler-gaspard-hd", row)
    print(
        f"\ntune gaspard hd: {row['candidates']} candidates "
        f"({row['evaluations']} evaluated), "
        f"{row['default']['makespan_us']:.0f} -> "
        f"{row['winner']['makespan_us']:.0f} us [{row['winner_config']}]"
    )
    _check_acceptance(row, strict=True)


# -- fast lane: CIF + convolution smokes -------------------------------------


def test_tune_downscaler_sac_cif_smoke(benchmark):
    row = run_once(benchmark, lambda: _measure("downscaler", "sac", CIF, 60))
    _record("downscaler-sac-cif-smoke", row)
    _check_acceptance(row)


def test_tune_downscaler_gaspard_cif_smoke(benchmark):
    row = run_once(
        benchmark, lambda: _measure("downscaler", "gaspard", CIF, 60)
    )
    _record("downscaler-gaspard-cif-smoke", row)
    _check_acceptance(row)


def test_tune_convolution_sac_smoke(benchmark):
    row = run_once(benchmark, lambda: _measure("convolution", "sac", None, 40))
    _record("convolution-sac-smoke", row)
    _check_acceptance(row)


def test_tune_convolution_gaspard_smoke(benchmark):
    row = run_once(
        benchmark, lambda: _measure("convolution", "gaspard", None, 40)
    )
    _record("convolution-gaspard-smoke", row)
    _check_acceptance(row)
