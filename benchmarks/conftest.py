"""Shared fixtures for the benchmark harness.

The experiment benches regenerate the paper's artefacts at full scale
(300 frames, HD) — simulated time is deterministic, so each regeneration
runs once (``benchmark.pedantic`` with a single round); the wall time
measured is the harness/simulator itself.  A session-scoped lab amortises
compilation and per-kernel probing across benches.
"""

from __future__ import annotations

import pytest

from repro.apps.downscaler import HD, DownscalerLab

#: the paper processes 300 frames (Section VIII)
FRAMES = 300


@pytest.fixture(scope="session")
def lab() -> DownscalerLab:
    return DownscalerLab(size=HD, frames=FRAMES)


@pytest.fixture(scope="session")
def quick_lab() -> DownscalerLab:
    """A 30-frame lab for benches that only need ratios/percentages."""
    return DownscalerLab(size=HD, frames=30)


def run_once(benchmark, fn):
    """Benchmark a deterministic regeneration with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
